#!/usr/bin/env python
"""Validate a Prometheus text exposition (CI gate for ``/metrics``).

Reads an exposition from a file argument (or stdin), runs it through
the strict parser behind ``repro.obs.parse_exposition`` — which rejects
duplicate ``# TYPE`` lines, duplicate series, samples without a TYPE,
malformed lines and unknown metric types — and prints a one-line
summary.  Exits non-zero with the parse error on any violation, so a
CI step can simply::

    curl -sf localhost:8177/metrics?format=prom | python scripts/check_prom.py

Use ``--require NAME`` (repeatable) to additionally assert a metric
family is present, e.g. ``--require repro_serve_requests_total``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import ExpositionError, parse_exposition  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path", nargs="?", default="-",
        help="exposition file to validate ('-' or omitted: stdin)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless this metric family is present (repeatable)",
    )
    args = parser.parse_args(argv)

    if args.path == "-":
        text = sys.stdin.read()
    else:
        text = Path(args.path).read_text()

    try:
        parsed = parse_exposition(text)
    except ExpositionError as exc:
        print(f"check_prom: INVALID exposition: {exc}", file=sys.stderr)
        return 1

    families = parsed["types"]
    missing = [name for name in args.require if name not in families]
    if missing:
        print(
            f"check_prom: missing required families: {', '.join(missing)} "
            f"(found: {', '.join(sorted(families)) or 'none'})",
            file=sys.stderr,
        )
        return 1

    print(
        f"check_prom: OK — {len(families)} families, "
        f"{len(parsed['samples'])} series"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
