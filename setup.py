"""Setup shim.

The environment is offline and has no ``wheel`` package, so PEP 517 editable
builds (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
