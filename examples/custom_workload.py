#!/usr/bin/env python3
"""Bring your own kernel: profile and evaluate a custom workload.

Shows the extension path a NAPEL user takes for an application outside the
built-in twelve: subclass :class:`repro.workloads.Workload`, describe the
kernel's dynamic behaviour with loop templates, and the whole pipeline
(profiling, simulation, DoE, prediction) works unchanged.

The example kernel is a 5-point stencil sweep — a pattern none of the
Table 2 workloads covers.

Run:  python examples/custom_workload.py
"""


import numpy as np

from repro import NapelTrainer, SimulationCampaign, analyze_trace, get_workload
from repro.core.dataset import TrainingSet
from repro.ir import InstructionTrace, LoopTemplate, Opcode, TemplateOp, TraceBuilder
from repro.workloads import AddressSpace, DoEParameter, SizeMapping, Workload
from repro.workloads import partition_range


class Stencil5(Workload):
    """Jacobi 5-point stencil: B[i][j] = f(A[i+-1][j+-1]) over a 2-D grid."""

    name = "sten"
    description = "5-point Jacobi stencil (custom example workload)"

    _DIM = SizeMapping(alpha=1.2, beta=0.5, minimum=8)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("grid", (500, 1000, 1500, 2000, 2500), 3000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
        )

    def _generate(self, sizes, raw, rng) -> InstructionTrace:
        n = sizes["grid"]
        threads = min(sizes["threads"], n)
        space = AddressSpace()
        a = space.alloc(n * n * 8)
        b = space.alloc(n * n * 8)
        body = LoopTemplate([
            TemplateOp(Opcode.LOAD, dst=1, addr="c"),   # centre
            TemplateOp(Opcode.LOAD, dst=2, addr="n"),   # north (row above)
            TemplateOp(Opcode.LOAD, dst=3, addr="s"),   # south (row below)
            TemplateOp(Opcode.FALU, dst=4, src1=1, src2=2),
            TemplateOp(Opcode.FALU, dst=5, src1=4, src2=3),
            TemplateOp(Opcode.FMUL, dst=6, src1=5, src2=7),
            TemplateOp(Opcode.STORE, src1=6, addr="out"),
            TemplateOp(Opcode.BRANCH, src1=6),
        ])
        builder = TraceBuilder()
        for tid, (r0, r1) in enumerate(partition_range(n - 2, threads)):
            if r0 == r1:
                continue
            rows = np.arange(r0 + 1, r1 + 1, dtype=np.int64)
            i = np.repeat(rows, n - 2)
            j = np.tile(np.arange(1, n - 1, dtype=np.int64), len(rows))
            centre = a + (i * n + j) * 8
            body.emit(
                builder, len(i),
                {
                    "c": centre,
                    "n": a + ((i - 1) * n + j) * 8,
                    "s": a + ((i + 1) * n + j) * 8,
                    "out": b + (i * n + j) * 8,
                },
                tid=tid, pc_base=0,
            )
        return builder.finish()


def main() -> None:
    stencil = Stencil5()
    campaign = SimulationCampaign()

    print("== profile of the custom kernel (central config) ==")
    trace = stencil.generate(stencil.central_config())
    profile = analyze_trace(trace, workload=stencil.name)
    for feature in (
        "mix.mem_all", "ilp.total", "stride.regular_read",
        "traffic.bytes_131072", "footprint.data_lines",
    ):
        print(f"  {feature:24s} = {profile[feature]:.3f}")

    print("\n== train on two built-in apps, predict the stencil ==")
    training = TrainingSet.concat([
        campaign.run(get_workload("gemv")),
        campaign.run(get_workload("mvt")),
    ])
    trained = NapelTrainer().train(training)
    pred = trained.model.predict(profile, campaign.arch)
    actual = campaign.run_point(stencil, stencil.central_config()).result
    print(f"NAPEL:     IPC={pred.ipc:6.3f}  energy={pred.energy_j * 1e3:.4f} mJ")
    print(f"simulator: IPC={actual.ipc:6.3f}  energy={actual.energy_j * 1e3:.4f} mJ")
    err = abs(pred.ipc - actual.ipc) / actual.ipc
    print(f"IPC relative error on a brand-new kernel shape: {err:.1%}")


if __name__ == "__main__":
    main()
