#!/usr/bin/env python3
"""Early-stage NMC design-space exploration with NAPEL.

This is the paper's motivating use case (Section 1): once trained, NAPEL
evaluates *architecture* variants in milliseconds instead of re-simulating
each one.  We train on a small set of (input x architecture) simulations of
``kme`` and ``gemv``, then sweep PE count, core frequency and L1 size for
``bfs`` — an application the model has never seen — and rank the designs by
predicted energy-delay product.

Run:  python examples/design_space_exploration.py
"""

import itertools
import time

from repro import (
    NapelTrainer,
    SimulationCampaign,
    analyze_trace,
    default_nmc_config,
    get_workload,
)
from repro.core.dataset import TrainingSet
from repro.core.reporting import format_table

#: Architecture training points: a small factorial over the knobs we sweep.
TRAIN_ARCHS = [
    dict(n_pes=pes, frequency_ghz=freq, l1_lines=lines)
    for pes, freq, lines in itertools.product(
        (16, 32), (1.0, 1.5), (2, 64)
    )
]

#: The prediction sweep: a finer grid, mostly unseen configurations.
SWEEP_ARCHS = [
    dict(n_pes=pes, frequency_ghz=freq, l1_lines=lines)
    for pes, freq, lines in itertools.product(
        (16, 24, 32), (1.0, 1.25, 1.5), (2, 16, 64)
    )
]


def main() -> None:
    base = default_nmc_config()
    kme, gemv, bfs = (get_workload(n) for n in ("kme", "gemv", "bfs"))

    print(f"training: {len(TRAIN_ARCHS)} architectures x 2 workloads (CCD)")
    start = time.perf_counter()
    sets = []
    for arch_changes in TRAIN_ARCHS:
        campaign = SimulationCampaign(base.replace(**arch_changes))
        for w in (kme, gemv):
            sets.append(campaign.run(w))
    training = TrainingSet.concat(sets)
    print(
        f"collected {len(training)} rows in "
        f"{time.perf_counter() - start:.0f} s"
    )

    trained = NapelTrainer().train(training)
    print(f"train+tune: {trained.train_tune_seconds:.1f} s\n")

    # One profile of the unseen application per architecture line size is
    # enough: the profile is architecture-independent.
    profile = analyze_trace(
        bfs.generate(bfs.test_config()), workload="bfs"
    )

    start = time.perf_counter()
    rows = []
    for arch_changes in SWEEP_ARCHS:
        arch = base.replace(**arch_changes)
        pred = trained.model.predict(profile, arch)
        rows.append((pred.edp, arch_changes, pred))
    sweep_s = time.perf_counter() - start
    rows.sort(key=lambda r: r[0])

    table = [
        [
            changes["n_pes"],
            changes["frequency_ghz"],
            changes["l1_lines"],
            f"{pred.ipc:6.3f}",
            f"{pred.time_s * 1e6:8.2f}",
            f"{pred.energy_j * 1e3:8.4f}",
            f"{edp:.3e}",
        ]
        for edp, changes, pred in rows
    ]
    print(format_table(
        ["#PEs", "GHz", "L1 lines", "pred IPC", "time (us)",
         "energy (mJ)", "EDP (J*s)"],
        table,
        title=f"bfs (unseen) across {len(SWEEP_ARCHS)} NMC designs "
              f"(predicted in {sweep_s * 1e3:.0f} ms, best first)",
    ))
    best = rows[0][1]
    print(f"\nbest predicted design for bfs: {best}")


if __name__ == "__main__":
    main()
