#!/usr/bin/env python3
"""Pareto-front exploration of the NMC design space.

Combines the pieces a real design iteration uses:

1. train NAPEL across several architectures of two workloads,
2. sweep a 72-point architecture grid for an unseen third workload with
   :func:`repro.core.explore` (one batched model pass),
3. extract the time/energy Pareto front,
4. validate the predicted-best design with one cycle-level simulation and
   print its full statistics report.

Run:  python examples/pareto_exploration.py
"""

import time

from repro import (
    NapelTrainer,
    NMCSimulator,
    SimulationCampaign,
    analyze_trace,
    default_nmc_config,
    get_workload,
)
from repro.core import explore, format_exploration, grid_space, pareto_front
from repro.core.dataset import TrainingSet
from repro.nmcsim import format_stats

TRAIN_KNOBS = {"n_pes": (16, 32), "frequency_ghz": (1.0, 1.5), "l1_lines": (2, 32)}
SWEEP_KNOBS = {
    "n_pes": (8, 16, 32, 64),
    "frequency_ghz": (0.8, 1.25, 1.75),
    "l1_lines": (2, 8, 32, 128),
    "pe_type": ("inorder",),
}


def main() -> None:
    base = default_nmc_config()
    syrk, gesu, mvt = (get_workload(n) for n in ("syrk", "gesu", "mvt"))

    train_archs = grid_space(TRAIN_KNOBS, base=base)
    print(f"training on {len(train_archs)} architectures x 2 workloads ...")
    start = time.perf_counter()
    sets = []
    for arch in train_archs:
        campaign = SimulationCampaign(arch)
        for w in (syrk, gesu):
            sets.append(campaign.run(w))
    training = TrainingSet.concat(sets)
    trained = NapelTrainer().train(training)
    print(
        f"{len(training)} rows, {time.perf_counter() - start:.0f} s total\n"
    )

    profile = analyze_trace(
        mvt.generate(mvt.test_config()), workload="mvt"
    )
    sweep = grid_space(SWEEP_KNOBS, base=base)
    start = time.perf_counter()
    points = explore(trained.model, profile, sweep)
    sweep_ms = (time.perf_counter() - start) * 1e3
    print(format_exploration(points, top=10))
    front = pareto_front(points)
    print(
        f"\n{len(front)} Pareto-optimal designs out of {len(points)} "
        f"(swept in {sweep_ms:.0f} ms)"
    )

    best = min(points, key=lambda p: p.edp)
    print(f"\nvalidating the best design {best.changes} in the simulator:")
    result = NMCSimulator(best.arch).run(
        mvt.generate(mvt.test_config()), workload="mvt"
    )
    print(format_stats(result, best.arch))
    err = abs(best.prediction.edp - result.edp) / result.edp
    print(f"\npredicted vs simulated EDP error: {err:.1%}")


if __name__ == "__main__":
    main()
