#!/usr/bin/env python3
"""Predicting a previously-unseen application (paper Section 3.3).

NAPEL's headline capability: after training on *other* applications'
simulation data, it predicts the performance and energy of an application
it has never seen.  We train on three linear-algebra kernels and predict
``mvt``, then report the per-configuration relative errors over mvt's
whole CCD — the same protocol as the paper's leave-one-application-out
evaluation.

Run:  python examples/unseen_application.py
"""

from repro import NapelTrainer, SimulationCampaign, get_workload
from repro.core.dataset import TrainingSet
from repro.core.reporting import format_table
from repro.ml import mean_relative_error

TRAIN_APPS = ("atax", "gemv", "gesu")
TEST_APP = "mvt"


def main() -> None:
    campaign = SimulationCampaign()

    print(f"training on: {', '.join(TRAIN_APPS)} (CCD campaigns)")
    training = TrainingSet.concat(
        campaign.run(get_workload(name)) for name in TRAIN_APPS
    )
    trained = NapelTrainer().train(training)
    print(
        f"{len(training)} rows, train+tune "
        f"{trained.train_tune_seconds:.1f} s\n"
    )

    mvt = get_workload(TEST_APP)
    print(f"evaluating every CCD configuration of unseen app {TEST_APP!r}:")
    test_set = campaign.run(mvt)
    rows = []
    ipc_true, ipc_pred = [], []
    for row in test_set:
        pred = trained.model.predict(row.profile, campaign.arch)
        actual = row.result
        err = abs(pred.ipc - actual.ipc) / actual.ipc
        ipc_true.append(actual.ipc)
        ipc_pred.append(pred.ipc)
        rows.append([
            ", ".join(f"{k}={v:g}" for k, v in row.parameters.items()),
            f"{actual.ipc:6.3f}",
            f"{pred.ipc:6.3f}",
            f"{err:6.1%}",
        ])
    print(format_table(
        ["configuration", "sim IPC", "NAPEL IPC", "rel err"], rows
    ))
    mre = mean_relative_error(ipc_true, ipc_pred)
    print(f"\nmvt performance MRE (unseen application): {mre:.1%}")


if __name__ == "__main__":
    main()
