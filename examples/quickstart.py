#!/usr/bin/env python3
"""Quickstart: train NAPEL on one application and predict an unseen input.

Walks the paper's full pipeline on ``atax``:

1. central composite design picks 11 input configurations (Section 2.4),
2. each is profiled (phase 1) and simulated on the Table 3 NMC system
   (phase 2),
3. a tuned random forest is trained (phase 3),
4. the model predicts IPC/time/energy for the previously-unseen *test*
   input, which we then verify against the cycle-level simulator.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    NapelTrainer,
    SimulationCampaign,
    analyze_trace,
    get_workload,
)


def main() -> None:
    atax = get_workload("atax")
    campaign = SimulationCampaign()  # the paper's Table 3 NMC system

    print("== Phase 1+2: DoE simulation campaign (CCD) ==")
    start = time.perf_counter()
    training = campaign.run(atax)
    print(
        f"simulated {len(training)} DoE configurations "
        f"in {time.perf_counter() - start:.1f} s"
    )

    print("\n== Phase 3: train + tune the random forests ==")
    trained = NapelTrainer().train(training)
    print(f"train+tune took {trained.train_tune_seconds:.1f} s")
    print(f"best IPC hyper-parameters:    {trained.ipc_tuning.best_params}")
    print(f"best energy hyper-parameters: {trained.energy_tuning.best_params}")

    print("\n== Prediction for the unseen test input (Table 2) ==")
    test_config = atax.test_config()
    trace = atax.generate(test_config)
    profile = analyze_trace(trace, workload="atax", parameters=test_config)
    start = time.perf_counter()
    pred = trained.model.predict(profile, campaign.arch)
    pred_s = time.perf_counter() - start
    print(f"config: {test_config}")
    print(
        f"NAPEL:     IPC={pred.ipc:6.3f}  time={pred.time_s * 1e6:8.2f} us  "
        f"energy={pred.energy_j * 1e3:7.4f} mJ   ({pred_s * 1e3:.1f} ms)"
    )

    start = time.perf_counter()
    actual = campaign.run_point(atax, test_config).result
    sim_s = time.perf_counter() - start
    print(
        f"simulator: IPC={actual.ipc:6.3f}  time={actual.time_s * 1e6:8.2f} us  "
        f"energy={actual.energy_j * 1e3:7.4f} mJ   ({sim_s:.1f} s)"
    )
    err = abs(pred.ipc - actual.ipc) / actual.ipc
    print(f"\nIPC relative error: {err:.1%}")
    if sim_s > 0 and pred_s > 0:
        print(f"prediction speedup over simulation: {sim_s / pred_s:.0f}x")


if __name__ == "__main__":
    main()
