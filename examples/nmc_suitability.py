#!/usr/bin/env python3
"""NMC-suitability analysis (the paper's Section 3.4 use case, Figure 7).

For a handful of workloads, compares the energy-delay product of

* executing on the POWER9-class host (host model), against
* executing on the NMC system — both as *predicted* by a NAPEL model that
  has never seen the application, and as *simulated* ("Actual").

An application with EDP reduction > 1 is a good NMC offload candidate.

Run:  python examples/nmc_suitability.py  [app ...]
"""

import sys

from repro import SimulationCampaign, analyze_suitability, get_workload
from repro.core.reporting import format_table

#: One NMC-friendly irregular app and one host-friendly streaming app per
#: paper category, to keep the example quick (~2 min); pass workload names
#: on the command line to analyze others.
DEFAULT_APPS = ("bfs", "kme", "gemv", "mvt")


def main() -> None:
    names = sys.argv[1:] or DEFAULT_APPS
    workloads = [get_workload(n) for n in names]
    campaign = SimulationCampaign()

    print(f"running CCD campaigns for {', '.join(names)} ...")
    training = campaign.run_all(workloads)
    print(f"{len(training)} training rows collected\n")

    results = analyze_suitability(
        workloads, campaign, training_set=training
    )
    rows = []
    for r in results:
        verdict = "NMC-suitable" if r.suitable_actual else "host wins"
        agree = "yes" if r.suitable_pred == r.suitable_actual else "NO"
        rows.append([
            r.workload,
            f"{r.host_edp:.3e}",
            f"{r.edp_reduction_actual:6.2f}",
            f"{r.edp_reduction_pred:6.2f}",
            f"{r.edp_mre:6.1%}",
            verdict,
            agree,
        ])
    print(format_table(
        ["app", "host EDP (J*s)", "EDP red (sim)", "EDP red (NAPEL)",
         "EDP MRE", "verdict", "NAPEL agrees"],
        rows,
        title="NMC-suitability analysis (cf. paper Figure 7)",
    ))


if __name__ == "__main__":
    main()
