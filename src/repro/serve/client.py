"""A small keep-alive client for the prediction server.

Built on :mod:`http.client` (stdlib, synchronous) — exactly what the
e2e tests, the serve benchmark and the CI smoke job need: one persistent
connection per client thread, JSON in/out, and structured errors that
carry the server's parsed error document.
"""

from __future__ import annotations

import http.client
import json

from ..errors import ReproError


class ServeClientError(ReproError):
    """A non-2xx server response, with the parsed error document."""

    def __init__(self, status: int, body: dict | None) -> None:
        body = body if isinstance(body, dict) else {}
        message = body.get("message") or f"server returned HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = body.get("error", "unknown")
        self.body = body


class ServeClient:
    """One keep-alive connection to a :class:`PredictionServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8177,
        *, timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: The X-Request-Id the server echoed on the last response.
        self.last_request_id: str | None = None
        self._last_status = 0
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> dict:
        """One round trip; retries once on a dropped keep-alive socket."""
        raw = self.request_raw(method, path, payload, headers=headers)
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {"message": raw.decode("utf-8", "replace")}
        if self._last_status >= 400:
            raise ServeClientError(self._last_status, doc)
        return doc

    def request_raw(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> bytes:
        """One round trip returning the raw body (no JSON decoding).

        Records the response status in ``_last_status`` and the echoed
        request id in :attr:`last_request_id`; non-2xx is *not* raised
        here — :meth:`request` layers the error contract on top.
        """
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None
        )
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=body, headers=send_headers
                )
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        self._last_status = response.status
        self.last_request_id = response.getheader("X-Request-Id")
        return raw

    # ------------------------------------------------------------ endpoints

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_prom(self) -> str:
        """``GET /metrics`` as Prometheus text exposition 0.0.4."""
        raw = self.request_raw(
            "GET", "/metrics?format=prom",
            headers={"Accept": "text/plain"},
        )
        if self._last_status >= 400:
            raise ServeClientError(self._last_status, None)
        return raw.decode("utf-8")

    def debug_requests(self) -> dict:
        return self.request("GET", "/debug/requests")

    def models(self) -> dict:
        return self.request("GET", "/models")

    def reload_(self) -> dict:
        return self.request("POST", "/-/reload")

    def predict(
        self,
        rows: list,
        *,
        model: str | None = None,
        align: bool = False,
        columns: list[str] | None = None,
        meta: list | None = None,
        request_id: str | None = None,
    ) -> dict:
        """``POST /predict`` with the documented request shape.

        ``request_id`` propagates as the X-Request-Id header; the id
        the server actually used (propagated or minted) is available as
        :attr:`last_request_id` afterwards.
        """
        payload: dict = {"rows": rows}
        if model is not None:
            payload["model"] = model
        if align:
            payload["align"] = True
        if columns is not None:
            payload["columns"] = columns
        if meta is not None:
            payload["meta"] = meta
        headers = (
            {"X-Request-Id": request_id} if request_id else None
        )
        return self.request("POST", "/predict", payload, headers=headers)
