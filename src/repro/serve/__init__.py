"""Prediction-as-a-service: the ``repro serve`` HTTP server.

The paper's headline claim is that a trained NAPEL model *replaces*
simulation (~256x faster per prediction) — which only pays off when
prediction is deployable as a long-lived concurrent service instead of
a fork-load-predict-exit CLI call.  This package is that service, built
entirely on the stdlib (asyncio; no ``http.server``, no dependencies):

* :mod:`registry` — a name-keyed registry of preloaded, verified v2
  model artifacts (mirroring the memory-backend registry pattern), with
  warm-standby hot reload: fresh artifacts load and verify in the
  background and swap in atomically while in-flight requests finish on
  the old models;
* :mod:`protocol` — the JSON request/response codec: incoming feature
  rows are validated against the artifact's embedded
  :class:`~repro.schema.FeatureSchema` (structured 422 naming the
  missing/extra/moved columns, or ``align=true`` projection by name);
* :mod:`batcher` — microbatching: concurrent ``POST /predict`` requests
  accumulate for a small window and are answered by *one* vectorized
  ``predict_labels`` matrix call, fanned back out per request;
* :mod:`server` — the asyncio HTTP/1.1 server (``/predict``,
  ``/healthz``, ``/metrics``, ``/models``), graceful shutdown that
  drains in-flight requests, per-request metrics through
  :mod:`repro.obs`;
* :mod:`client` — a minimal blocking client for tests, benchmarks and
  scripts.

See ``docs/API.md`` ("Serving") and ``README.md`` for the quickstart.
"""

from .batcher import MicroBatcher
from .client import ServeClient, ServeClientError
from .protocol import ProtocolError, error_body
from .registry import ModelRegistry, ServedModel, parse_model_specs
from .server import PredictionServer, ServerThread

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "PredictionServer",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServedModel",
    "ServerThread",
    "error_body",
    "parse_model_specs",
]
