"""The server's name-keyed model registry with warm-standby reload.

Mirrors the memory-backend registry pattern (:mod:`repro.backends`): a
flat name -> descriptor mapping, loud errors on unknown or duplicate
names, and an atomic-swap mutation discipline.  Every artifact is
*preloaded and verified* (:func:`repro.core.serialization.preload_model`)
before it becomes visible, so a corrupt or schema-drifted file is a
startup/reload error, never a mid-request surprise.

Hot reload is warm-standby: ``reload_all`` loads and verifies fresh
copies of *every* artifact first, and only then swaps the mapping in one
assignment.  Requests that resolved a model before the swap keep their
reference and finish on the old generation; a failed reload leaves the
serving set untouched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from ..core.predictor import NapelModel
from ..core.serialization import PreloadedModel, preload_model
from ..errors import ConfigError
from ..obs import get_logger, metrics

log = get_logger("repro.serve.registry")


def parse_model_specs(specs: Iterable[str]) -> dict[str, str]:
    """``NAME=PATH`` CLI arguments -> an ordered name->path mapping.

    A bare ``PATH`` (no ``=``) is registered as ``default``.  Duplicate
    names are a configuration error — silently shadowing a model behind
    one name is exactly the ambiguity a registry exists to prevent.
    """
    out: dict[str, str] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "default", spec
        name = name.strip()
        path = path.strip()
        if not name or not path:
            raise ConfigError(
                f"--model expects NAME=PATH (or a bare PATH), got {spec!r}"
            )
        if name in out:
            raise ConfigError(
                f"model name {name!r} given twice (for {out[name]!r} and "
                f"{path!r}); every served model needs a unique name"
            )
        out[name] = path
    if not out:
        raise ConfigError("at least one --model NAME=PATH is required")
    return out


@dataclass(frozen=True)
class ServedModel:
    """One loaded artifact as served: model + provenance + generation."""

    name: str
    preloaded: PreloadedModel
    generation: int

    @property
    def model(self) -> NapelModel:
        return self.preloaded.model

    def summary(self) -> dict:
        data = self.preloaded.summary()
        data["name"] = self.name
        data["generation"] = self.generation
        return data


class ModelRegistry:
    """Name-keyed registry of served models with atomic-swap reload."""

    def __init__(self, specs: Mapping[str, str | Path]) -> None:
        if not specs:
            raise ConfigError("the model registry needs at least one model")
        self._specs: dict[str, Path] = {
            name: Path(path) for name, path in specs.items()
        }
        self._lock = threading.Lock()
        self._models: dict[str, ServedModel] = {}
        self._generation = 0
        self.reloads = 0
        self.last_reload_unix: float | None = None

    # ------------------------------------------------------------- loading

    def _load_generation(self, generation: int) -> dict[str, ServedModel]:
        loaded: dict[str, ServedModel] = {}
        for name, path in self._specs.items():
            entry = ServedModel(
                name=name,
                preloaded=preload_model(path),
                generation=generation,
            )
            for message in entry.preloaded.warnings:
                log.warning(
                    "model %r load warning", name,
                    extra={"ctx": {"model": name, "warning": message}},
                )
            log.info(
                "model loaded", extra={"ctx": entry.summary()},
            )
            loaded[name] = entry
        return loaded

    def load_all(self) -> dict[str, ServedModel]:
        """Preload + verify every configured artifact (startup path)."""
        with self._lock:
            generation = self._generation + 1
            loaded = self._load_generation(generation)
            self._models = loaded
            self._generation = generation
            metrics().set_gauge("serve.generation", generation)
            return dict(loaded)

    def reload_all(self) -> dict[str, ServedModel]:
        """Warm-standby reload: verify everything fresh, then swap.

        The old generation keeps serving until the *entire* new one has
        loaded and verified; any failure (missing file, corrupt pickle,
        failed verification) propagates to the caller and leaves the
        serving set exactly as it was.
        """
        with self._lock:
            generation = self._generation + 1
            loaded = self._load_generation(generation)
            self._models = loaded
            self._generation = generation
            self.reloads += 1
            self.last_reload_unix = time.time()
            metrics().set_gauge("serve.generation", generation)
            return dict(loaded)

    # -------------------------------------------------------------- lookup

    def get(self, name: str | None) -> ServedModel:
        """Resolve a request's model; ``None`` works iff one is served."""
        models = self._models
        if name is None:
            if len(models) == 1:
                return next(iter(models.values()))
            raise KeyError(
                "request names no model and the server holds "
                f"{len(models)}; pass \"model\" (one of: "
                f"{', '.join(models)})"
            )
        try:
            return models[name]
        except KeyError:
            known = ", ".join(models) or "(none)"
            raise KeyError(
                f"unknown model {name!r}; served models: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._models)

    @property
    def generation(self) -> int:
        return self._generation

    def summary(self) -> dict:
        """JSON-ready state for /healthz and the server manifest."""
        return {
            "generation": self._generation,
            "reloads": self.reloads,
            "last_reload_unix": self.last_reload_unix,
            "models": {
                name: entry.summary()
                for name, entry in self._models.items()
            },
        }
