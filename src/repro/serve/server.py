"""The asyncio HTTP/1.1 prediction server behind ``repro serve``.

Stdlib-only: hand-rolled HTTP on :func:`asyncio.start_server` streams
(no ``http.server``, whose thread-per-connection model defeats
microbatching).  Endpoints:

* ``POST /predict`` — single or batched rows; validated, aligned,
  microbatched (:mod:`repro.serve.batcher`), answered with label and
  derived predictions (:mod:`repro.serve.protocol`);
* ``GET /healthz`` — liveness + the model registry summary;
* ``GET /metrics`` — the process :class:`~repro.obs.MetricsRegistry`
  snapshot (``serve.*`` counters/timers included);
* ``GET /models`` — the registry summary alone;
* ``POST /-/reload`` — warm-standby reload (same path SIGHUP triggers).

Operational contract:

* **hot reload** never drops a request: new artifacts load and verify in
  a worker thread while the old generation keeps serving, then swap in
  atomically (requests already resolved keep their model reference);
* **graceful shutdown** stops accepting, flushes open microbatch
  buckets, waits for in-flight requests to complete, then closes idle
  keep-alive connections;
* every request is counted and timed through :mod:`repro.obs`, and a
  server manifest (RunManifest fields) is available for ``--manifest``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Mapping

from ..errors import ReproError
from ..obs import get_logger, metrics
from .batcher import MicroBatcher
from .protocol import (
    ProtocolError,
    build_matrix,
    decode_predict_request,
    error_body,
    predictions_to_json,
    schema_mismatch_to_error,
)
from ..errors import SchemaMismatchError
from .registry import ModelRegistry

log = get_logger("repro.serve")

#: Hard request-size limits — a prediction service should not be a
#: memory amplifier.
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 16 * 1024
MAX_ROWS_PER_REQUEST = 65536

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class PredictionServer:
    """One serving process: registry + batcher + HTTP front-end."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 8177,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 4096,
        drain_timeout_s: float = 10.0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.batch_window_ms = float(batch_window_ms)
        self.batcher = MicroBatcher(
            window_s=batch_window_ms / 1e3, max_rows=max_batch_rows
        )
        self.drain_timeout_s = drain_timeout_s
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._done = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._inflight = 0
        self._conns: set[asyncio.StreamWriter] = set()
        self._reload_lock = asyncio.Lock()
        self.stats = {
            "requests": 0, "rows": 0, "errors": 0, "reloads": 0,
        }

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Preload + verify every model, then bind the listener."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.load_all)
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            raise ReproError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "serving", extra={"ctx": {
                "host": self.host, "port": self.port,
                "models": list(self.registry.names()),
                "batch_window_ms": self.batch_window_ms,
            }},
        )

    async def reload(self) -> dict:
        """Warm-standby reload of every artifact (SIGHUP / POST path)."""
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            t0 = time.perf_counter()
            await loop.run_in_executor(None, self.registry.reload_all)
            elapsed = time.perf_counter() - t0
            self.stats["reloads"] += 1
            metrics().inc("serve.reloads")
            summary = self.registry.summary()
            log.info(
                "models reloaded", extra={"ctx": {
                    "generation": summary["generation"],
                    "seconds": round(elapsed, 3),
                }},
            )
            return summary

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, close connections."""
        if self._closing:
            await self._done.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout_s
        while self._inflight > 0 and loop.time() < deadline:
            await self.batcher.drain()
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                continue
        await self.batcher.drain()
        for writer in list(self._conns):
            writer.close()
        log.info("server stopped", extra={"ctx": dict(self.stats)})
        self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    async def run(self, *, install_signals: bool = True,
                  reload_on_sighup: bool = False) -> None:
        """Start and serve until SIGTERM/SIGINT (the CLI entry)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            if reload_on_sighup:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: asyncio.ensure_future(self.reload()),
                )
        await self.wait_done()

    def manifest_fields(self) -> dict:
        """Server fields for the run manifest (``--manifest``)."""
        return {
            "serve": {
                "host": self.host,
                "port": self.port,
                "batch_window_ms": self.batch_window_ms,
                "uptime_seconds": round(
                    time.time() - self.started_at, 3
                ),
                **self.stats,
            },
            "registry": self.registry.summary(),
        }

    # ----------------------------------------------------------- HTTP layer

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self._closing
                status, payload = await self._dispatch(
                    method, path, body
                )
                await self._write_response(
                    writer, status, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        """One HTTP/1.1 request -> (method, path, headers, body).

        The whole header section is read with a single ``readuntil``
        (one event-loop hop) rather than a readline loop — at high
        request rates the per-request loop work, not the model, bounds
        throughput.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean close (or mid-request disconnect)
        except asyncio.LimitOverrunError:
            await self._write_response(
                writer, 413,
                error_body(413, "headers_too_large",
                           "header section too large"),
                False,
            )
            return None
        except (ConnectionError, OSError):
            return None
        if len(head) > MAX_HEADER_BYTES:
            await self._write_response(
                writer, 413,
                error_body(413, "headers_too_large",
                           "header section too large"),
                False,
            )
            return None
        request_line, _, header_block = (
            head[:-4].decode("latin-1").partition("\r\n")
        )
        parts = request_line.split()
        if len(parts) != 3:
            await self._write_response(
                writer, 400,
                error_body(400, "bad_request", "malformed request line"),
                False,
            )
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            await self._write_response(
                writer, 400,
                error_body(400, "bad_request",
                           "chunked request bodies are not supported; "
                           "send Content-Length"),
                False,
            )
            return None
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._write_response(
                writer, 413,
                error_body(413, "body_too_large",
                           f"body must be 0..{MAX_BODY_BYTES} bytes"),
                False,
            )
            return None
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _write_response(
        self, writer, status: int, payload: bytes, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # ------------------------------------------------------------- routing

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        self.stats["requests"] += 1
        metrics().inc("serve.requests")
        self._inflight += 1
        self._idle.clear()
        try:
            with metrics().timer("serve.request"):
                return await self._route(method, path, body)
        except ProtocolError as exc:
            self.stats["errors"] += 1
            metrics().inc("serve.errors")
            return exc.status, error_body(
                exc.status, exc.code, str(exc), exc.details
            )
        except Exception as exc:  # noqa: BLE001 - request boundary
            self.stats["errors"] += 1
            metrics().inc("serve.errors")
            log.error(
                "request failed", extra={"ctx": {
                    "path": path,
                    "exception": type(exc).__name__,
                    "message": str(exc),
                }},
            )
            return 500, error_body(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        if path == "/predict":
            if method != "POST":
                raise ProtocolError(
                    405, "method_not_allowed", "POST /predict"
                )
            return await self._handle_predict(body)
        if path == "/healthz":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /healthz"
                )
            return 200, self._json(self._healthz())
        if path == "/metrics":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /metrics"
                )
            return 200, self._json({
                "uptime_seconds": round(
                    time.time() - self.started_at, 3
                ),
                "metrics": metrics().snapshot(),
            })
        if path == "/models":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /models"
                )
            return 200, self._json(self.registry.summary())
        if path == "/-/reload":
            if method != "POST":
                raise ProtocolError(
                    405, "method_not_allowed", "POST /-/reload"
                )
            summary = await self.reload()
            return 200, self._json(summary)
        raise ProtocolError(
            404, "not_found",
            f"no route {path!r} (have: /predict, /healthz, /metrics, "
            "/models, /-/reload)",
        )

    @staticmethod
    def _json(doc: dict) -> bytes:
        return (json.dumps(doc) + "\n").encode("utf-8")

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "inflight": self._inflight,
            "pending_batch_rows": self.batcher.pending_rows(),
            "batch_window_ms": self.batch_window_ms,
            **self.registry.summary(),
        }

    async def _handle_predict(self, body: bytes) -> tuple[int, bytes]:
        payload = decode_predict_request(
            body, max_rows=MAX_ROWS_PER_REQUEST
        )
        try:
            served = self.registry.get(payload.get("model"))
        except KeyError as exc:
            raise ProtocolError(
                404, "unknown_model", str(exc).strip('"')
            ) from None
        try:
            X = build_matrix(payload, served.model)
        except SchemaMismatchError as exc:
            raise schema_mismatch_to_error(exc) from exc
        n = X.shape[0]
        self.stats["rows"] += n
        metrics().inc("serve.rows", n)
        ipc, epi, batched_rows = await self.batcher.submit(served, X)
        try:
            predictions = predictions_to_json(
                served.model, X, ipc, epi, payload.get("meta")
            )
        except SchemaMismatchError as exc:
            raise schema_mismatch_to_error(exc) from exc
        return 200, self._json({
            "model": served.name,
            "generation": served.generation,
            "schema_hash": served.preloaded.schema_hash,
            "batched_rows": batched_rows,
            "predictions": predictions,
        })


class ServerThread:
    """A server on a background thread (tests, benchmarks, notebooks).

    Runs its own event loop; ``start()`` blocks until the ephemeral port
    is bound (or raises the startup error), ``reload()``/``stop()``
    marshal into the loop thread-safely.  Usable as a context manager.
    """

    def __init__(
        self,
        specs: Mapping[str, str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 4096,
    ) -> None:
        self._specs = dict(specs)
        self._kwargs = {
            "host": host,
            "port": port,
            "batch_window_ms": batch_window_ms,
            "max_batch_rows": max_batch_rows,
        }
        self.server: PredictionServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    # ------------------------------------------------------------- control

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=120)
        if self._error is not None:
            raise self._error
        if self.server is None:
            raise ReproError("serve thread failed to start")
        return self

    def reload(self, timeout: float = 120.0) -> dict:
        return self._call(self.server.reload(), timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self.server is None or self._loop is None:
            return
        try:
            self._call(self.server.shutdown(), timeout)
        except RuntimeError:
            pass  # loop already gone
        self._thread.join(timeout=timeout)

    def _call(self, coro, timeout: float):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------- internal

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        registry = ModelRegistry(self._specs)
        self.server = PredictionServer(registry, **self._kwargs)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._started.set()
        await self.server.wait_done()
