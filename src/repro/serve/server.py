"""The asyncio HTTP/1.1 prediction server behind ``repro serve``.

Stdlib-only: hand-rolled HTTP on :func:`asyncio.start_server` streams
(no ``http.server``, whose thread-per-connection model defeats
microbatching).  Endpoints:

* ``POST /predict`` — single or batched rows; validated, aligned,
  microbatched (:mod:`repro.serve.batcher`), answered with label and
  derived predictions (:mod:`repro.serve.protocol`);
* ``GET /healthz`` — liveness + the model registry summary;
* ``GET /metrics`` — content negotiated: the deterministic key-ordered
  JSON :class:`~repro.obs.MetricsRegistry` snapshot by default, or
  Prometheus text exposition 0.0.4 under ``Accept: text/plain`` /
  ``?format=prom`` — per-model × route × status request counters,
  latency histograms, batch-size/queue gauges, reload generation;
* ``GET /debug/requests`` — a bounded in-memory ring of the most recent
  request records (id, model, rows, latency, status, generation);
* ``GET /models`` — the registry summary alone;
* ``POST /-/reload`` — warm-standby reload (same path SIGHUP triggers).

Every request carries an **X-Request-Id**: taken from the client's
header when present (propagation), generated otherwise, echoed on the
response, recorded in the access log / debug ring / trace span, and —
when microbatched — linked to the ``serve.predict_batch`` span that
answered it.  Requests slower than ``--slow-request-ms`` attach as
exemplars to their latency-histogram bucket and emit a structured warn
line.  Under ``--trace`` the buffer rotates to numbered files once it
reaches ``--trace-rotate-events`` events, so long-serving processes
never drop spans.

Operational contract:

* **hot reload** never drops a request: new artifacts load and verify in
  a worker thread while the old generation keeps serving, then swap in
  atomically (requests already resolved keep their model reference);
* **graceful shutdown** stops accepting, flushes open microbatch
  buckets, waits for in-flight requests to complete, then closes idle
  keep-alive connections;
* every request is counted and timed through :mod:`repro.obs`, and a
  server manifest (RunManifest fields) is available for ``--manifest``.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import threading
import time
import uuid
from collections import deque
from typing import Mapping

from ..errors import ReproError
from ..obs import METRICS_SCHEMA, get_logger, metrics, tracer
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render_prometheus
from .batcher import MicroBatcher
from .protocol import (
    ProtocolError,
    build_matrix,
    decode_predict_request,
    error_body,
    predictions_to_json,
    schema_mismatch_to_error,
)
from ..errors import SchemaMismatchError
from .registry import ModelRegistry

log = get_logger("repro.serve")
#: One line per finished request (4xx/5xx included) — JSON under
#: ``--log-json``, human-readable under ``-v``.
access_log = get_logger("repro.serve.access")

#: Hard request-size limits — a prediction service should not be a
#: memory amplifier.
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 16 * 1024
MAX_ROWS_PER_REQUEST = 65536

#: Client-supplied request ids must be short and printable; anything
#: else is replaced with a generated id rather than trusted into logs.
_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: How many finished requests ``GET /debug/requests`` retains.
DEBUG_RING_SIZE = 256


def new_request_id() -> str:
    return uuid.uuid4().hex[:16]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class PredictionServer:
    """One serving process: registry + batcher + HTTP front-end."""

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 8177,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 4096,
        drain_timeout_s: float = 10.0,
        slow_request_ms: float = 0.0,
        instrument: bool = True,
        debug_ring: int = DEBUG_RING_SIZE,
        trace_rotate_events: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.batch_window_ms = float(batch_window_ms)
        self.batcher = MicroBatcher(
            window_s=batch_window_ms / 1e3,
            max_rows=max_batch_rows,
            instrument=instrument,
        )
        self.drain_timeout_s = drain_timeout_s
        #: Threshold (ms) above which a finished request is "slow":
        #: histogram exemplar + structured warn line.  0 disables.
        self.slow_request_ms = float(slow_request_ms)
        #: ``False`` strips labeled metrics, histograms, the debug ring,
        #: access logs and request spans — the benchmark's baseline for
        #: measuring instrumentation overhead.  The PR 8 aggregate
        #: counters/timers always stay on.
        self.instrument = instrument
        #: Rotate the trace buffer to a numbered file once it holds this
        #: many events (0 = never; the CLI writes one file at exit).
        self.trace_rotate_events = int(trace_rotate_events)
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._done = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._inflight = 0
        self._conns: set[asyncio.StreamWriter] = set()
        self._reload_lock = asyncio.Lock()
        self._recent: deque[dict] = deque(maxlen=max(1, int(debug_ring)))
        self._rotating = False
        self.stats = {
            "requests": 0, "rows": 0, "errors": 0, "reloads": 0,
            "slow_requests": 0, "trace_rotations": 0,
        }

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Preload + verify every model, then bind the listener."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.load_all)
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as exc:
            raise ReproError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "serving", extra={"ctx": {
                "host": self.host, "port": self.port,
                "models": list(self.registry.names()),
                "batch_window_ms": self.batch_window_ms,
            }},
        )

    async def reload(self) -> dict:
        """Warm-standby reload of every artifact (SIGHUP / POST path)."""
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            t0 = time.perf_counter()
            await loop.run_in_executor(None, self.registry.reload_all)
            elapsed = time.perf_counter() - t0
            self.stats["reloads"] += 1
            metrics().inc("serve.reloads")
            summary = self.registry.summary()
            log.info(
                "models reloaded", extra={"ctx": {
                    "generation": summary["generation"],
                    "seconds": round(elapsed, 3),
                }},
            )
            return summary

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, close connections."""
        if self._closing:
            await self._done.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout_s
        while self._inflight > 0 and loop.time() < deadline:
            await self.batcher.drain()
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                continue
        await self.batcher.drain()
        for writer in list(self._conns):
            writer.close()
        log.info("server stopped", extra={"ctx": dict(self.stats)})
        self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    async def run(self, *, install_signals: bool = True,
                  reload_on_sighup: bool = False) -> None:
        """Start and serve until SIGTERM/SIGINT (the CLI entry)."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    sig,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
            if reload_on_sighup:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: asyncio.ensure_future(self.reload()),
                )
        await self.wait_done()

    def manifest_fields(self) -> dict:
        """Server fields for the run manifest (``--manifest``)."""
        return {
            "serve": {
                "host": self.host,
                "port": self.port,
                "batch_window_ms": self.batch_window_ms,
                "uptime_seconds": round(
                    time.time() - self.started_at, 3
                ),
                **self.stats,
            },
            "registry": self.registry.summary(),
        }

    # ----------------------------------------------------------- HTTP layer

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, query, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                ) and not self._closing
                info = {
                    "request_id": self._request_id(headers),
                    "content_type": "application/json",
                }
                status, payload = await self._dispatch(
                    method, path, query, headers, body, info
                )
                await self._write_response(
                    writer, status, payload, keep_alive,
                    content_type=info["content_type"],
                    request_id=info["request_id"],
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader, writer):
        """One HTTP/1.1 request -> (method, path, headers, body).

        The whole header section is read with a single ``readuntil``
        (one event-loop hop) rather than a readline loop — at high
        request rates the per-request loop work, not the model, bounds
        throughput.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean close (or mid-request disconnect)
        except asyncio.LimitOverrunError:
            await self._write_response(
                writer, 413,
                error_body(413, "headers_too_large",
                           "header section too large"),
                False,
            )
            return None
        except (ConnectionError, OSError):
            return None
        if len(head) > MAX_HEADER_BYTES:
            await self._write_response(
                writer, 413,
                error_body(413, "headers_too_large",
                           "header section too large"),
                False,
            )
            return None
        request_line, _, header_block = (
            head[:-4].decode("latin-1").partition("\r\n")
        )
        parts = request_line.split()
        if len(parts) != 3:
            await self._write_response(
                writer, 400,
                error_body(400, "bad_request", "malformed request line"),
                False,
            )
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in header_block.split("\r\n"):
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            await self._write_response(
                writer, 400,
                error_body(400, "bad_request",
                           "chunked request bodies are not supported; "
                           "send Content-Length"),
                False,
            )
            return None
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._write_response(
                writer, 413,
                error_body(413, "body_too_large",
                           f"body must be 0..{MAX_BODY_BYTES} bytes"),
                False,
            )
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), path, query, headers, body

    @staticmethod
    def _request_id(headers: Mapping[str, str]) -> str:
        """Propagate the client's X-Request-Id, or mint one."""
        supplied = headers.get("x-request-id", "").strip()
        if supplied and _REQUEST_ID_OK.match(supplied):
            return supplied
        return new_request_id()

    async def _write_response(
        self,
        writer,
        status: int,
        payload: bytes,
        keep_alive: bool,
        *,
        content_type: str = "application/json",
        request_id: str | None = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        request_id_line = (
            f"X-Request-Id: {request_id}\r\n" if request_id else ""
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{request_id_line}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # ------------------------------------------------------------- routing

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        headers: Mapping[str, str],
        body: bytes,
        info: dict,
    ) -> tuple[int, bytes]:
        self.stats["requests"] += 1
        metrics().inc("serve.requests")
        self._inflight += 1
        self._idle.clear()
        info.setdefault("model", None)
        info.setdefault("rows", 0)
        info.setdefault("batch_id", None)
        start = time.monotonic()
        status = 500
        try:
            with metrics().timer("serve.request"):
                status, payload = await self._route(
                    method, path, query, headers, body, info
                )
            return status, payload
        except ProtocolError as exc:
            status = exc.status
            self.stats["errors"] += 1
            metrics().inc("serve.errors")
            return exc.status, error_body(
                exc.status, exc.code, str(exc), exc.details,
                request_id=info["request_id"],
            )
        except Exception as exc:  # noqa: BLE001 - request boundary
            self.stats["errors"] += 1
            metrics().inc("serve.errors")
            log.error(
                "request failed", extra={"ctx": {
                    "path": path,
                    "request_id": info["request_id"],
                    "exception": type(exc).__name__,
                    "message": str(exc),
                }},
            )
            return 500, error_body(
                500, "internal_error", f"{type(exc).__name__}: {exc}",
                request_id=info["request_id"],
            )
        finally:
            self._observe_request(method, path, status, start, info)
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _observe_request(
        self,
        method: str,
        path: str,
        status: int,
        start_monotonic: float,
        info: dict,
    ) -> None:
        """Per-request telemetry: labels, histogram, ring, log, span."""
        if not self.instrument:
            return
        elapsed_s = time.monotonic() - start_monotonic
        model = info.get("model") or "-"
        labels = {"model": model, "route": path, "status": status}
        metrics().inc("serve.requests", labels=labels)
        latency_ms = elapsed_s * 1e3
        slow = (
            self.slow_request_ms > 0
            and latency_ms >= self.slow_request_ms
        )
        exemplar = None
        if slow:
            self.stats["slow_requests"] += 1
            exemplar = {
                "request_id": info["request_id"],
                "ts": time.time(),
            }
        metrics().observe(
            "serve.request.latency_s",
            elapsed_s,
            {"model": model, "route": path},
            exemplar=exemplar,
        )
        metrics().set_gauge("serve.inflight", self._inflight)
        record = {
            "request_id": info["request_id"],
            "method": method,
            "route": path,
            "model": info.get("model"),
            "rows": info.get("rows", 0),
            "batch_id": info.get("batch_id"),
            "status": status,
            "latency_ms": round(latency_ms, 3),
            "generation": self.registry.generation,
            "unix_time": round(time.time(), 3),
        }
        self._recent.append(record)
        access_log.info(
            "%s %s %s %.3fms", method, path, status, latency_ms,
            extra={"ctx": record},
        )
        if slow:
            log.warning(
                "slow request", extra={"ctx": {
                    **record,
                    "threshold_ms": self.slow_request_ms,
                }},
            )
        t = tracer()
        if t.enabled:
            t.complete(
                "serve.request",
                t.to_ts_us(start_monotonic),
                elapsed_s * 1e6,
                cat="serve",
                args={
                    k: record[k]
                    for k in ("request_id", "route", "model", "rows",
                              "batch_id", "status")
                },
            )
            if (
                self.trace_rotate_events > 0
                and t.event_count >= self.trace_rotate_events
                and not self._rotating
            ):
                self._rotating = True
                asyncio.ensure_future(self._rotate_trace(t))

    async def _rotate_trace(self, t) -> None:
        """Flush the trace buffer to the next numbered rotation file.

        The JSON dump runs on a worker thread so a large buffer never
        stalls the event loop; ``_rotating`` keeps rotations serialized.
        """
        base = t.path
        if base is None:
            self._rotating = False
            return
        seq = self.stats["trace_rotations"] + 1
        target = base.with_name(f"{base.stem}.{seq:04d}{base.suffix}")
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, t.rotate, target)
            self.stats["trace_rotations"] = seq
            log.info(
                "trace rotated", extra={"ctx": {
                    "path": str(target), "sequence": seq,
                }},
            )
        except Exception as exc:  # noqa: BLE001 - keep serving
            log.error(
                "trace rotation failed", extra={"ctx": {
                    "path": str(target), "error": str(exc),
                }},
            )
        finally:
            self._rotating = False

    async def _route(
        self,
        method: str,
        path: str,
        query: str,
        headers: Mapping[str, str],
        body: bytes,
        info: dict,
    ) -> tuple[int, bytes]:
        if path == "/predict":
            if method != "POST":
                raise ProtocolError(
                    405, "method_not_allowed", "POST /predict"
                )
            return await self._handle_predict(body, info)
        if path == "/healthz":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /healthz"
                )
            return 200, self._json(self._healthz())
        if path == "/metrics":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /metrics"
                )
            if self._wants_prom(query, headers):
                info["content_type"] = PROM_CONTENT_TYPE
                text = render_prometheus(metrics().snapshot())
                return 200, text.encode("utf-8")
            return 200, self._json({
                "schema": METRICS_SCHEMA,
                "uptime_seconds": round(
                    time.time() - self.started_at, 3
                ),
                "metrics": metrics().snapshot(),
            })
        if path == "/debug/requests":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /debug/requests"
                )
            recent = list(self._recent)
            recent.reverse()  # newest first
            return 200, self._json({
                "capacity": self._recent.maxlen,
                "count": len(recent),
                "requests": recent,
            })
        if path == "/models":
            if method != "GET":
                raise ProtocolError(
                    405, "method_not_allowed", "GET /models"
                )
            return 200, self._json(self.registry.summary())
        if path == "/-/reload":
            if method != "POST":
                raise ProtocolError(
                    405, "method_not_allowed", "POST /-/reload"
                )
            summary = await self.reload()
            return 200, self._json(summary)
        raise ProtocolError(
            404, "not_found",
            f"no route {path!r} (have: /predict, /healthz, /metrics, "
            "/debug/requests, /models, /-/reload)",
        )

    @staticmethod
    def _wants_prom(query: str, headers: Mapping[str, str]) -> bool:
        """Prometheus text when asked via ?format=prom or Accept."""
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "format":
                return value in ("prom", "prometheus", "openmetrics")
        accept = headers.get("accept", "")
        return "text/plain" in accept or "openmetrics" in accept

    @staticmethod
    def _json(doc: dict) -> bytes:
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "inflight": self._inflight,
            "pending_batch_rows": self.batcher.pending_rows(),
            "batch_window_ms": self.batch_window_ms,
            "instrument": self.instrument,
            "slow_request_ms": self.slow_request_ms,
            **self.registry.summary(),
        }

    async def _handle_predict(
        self, body: bytes, info: dict
    ) -> tuple[int, bytes]:
        payload = decode_predict_request(
            body, max_rows=MAX_ROWS_PER_REQUEST
        )
        try:
            served = self.registry.get(payload.get("model"))
        except KeyError as exc:
            raise ProtocolError(
                404, "unknown_model", str(exc).strip('"')
            ) from None
        info["model"] = served.name
        try:
            X = build_matrix(payload, served.model)
        except SchemaMismatchError as exc:
            raise schema_mismatch_to_error(exc) from exc
        n = X.shape[0]
        info["rows"] = n
        self.stats["rows"] += n
        metrics().inc("serve.rows", n)
        ipc, epi, batched_rows, batch_id = await self.batcher.submit(
            served, X, info["request_id"]
        )
        info["batch_id"] = batch_id
        try:
            predictions = predictions_to_json(
                served.model, X, ipc, epi, payload.get("meta")
            )
        except SchemaMismatchError as exc:
            raise schema_mismatch_to_error(exc) from exc
        return 200, self._json({
            "model": served.name,
            "generation": served.generation,
            "schema_hash": served.preloaded.schema_hash,
            "batched_rows": batched_rows,
            "predictions": predictions,
        })


class ServerThread:
    """A server on a background thread (tests, benchmarks, notebooks).

    Runs its own event loop; ``start()`` blocks until the ephemeral port
    is bound (or raises the startup error), ``reload()``/``stop()``
    marshal into the loop thread-safely.  Usable as a context manager.
    """

    def __init__(
        self,
        specs: Mapping[str, str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_ms: float = 2.0,
        max_batch_rows: int = 4096,
        slow_request_ms: float = 0.0,
        instrument: bool = True,
        trace_rotate_events: int = 0,
    ) -> None:
        self._specs = dict(specs)
        self._kwargs = {
            "host": host,
            "port": port,
            "batch_window_ms": batch_window_ms,
            "max_batch_rows": max_batch_rows,
            "slow_request_ms": slow_request_ms,
            "instrument": instrument,
            "trace_rotate_events": trace_rotate_events,
        }
        self.server: PredictionServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    # ------------------------------------------------------------- control

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=120)
        if self._error is not None:
            raise self._error
        if self.server is None:
            raise ReproError("serve thread failed to start")
        return self

    def reload(self, timeout: float = 120.0) -> dict:
        return self._call(self.server.reload(), timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self.server is None or self._loop is None:
            return
        try:
            self._call(self.server.shutdown(), timeout)
        except RuntimeError:
            pass  # loop already gone
        self._thread.join(timeout=timeout)

    def _call(self, coro, timeout: float):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------- internal

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
        finally:
            self._started.set()

    async def _main(self) -> None:
        registry = ModelRegistry(self._specs)
        self.server = PredictionServer(registry, **self._kwargs)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._started.set()
        await self.server.wait_done()
