"""Microbatching: many concurrent requests, one vectorized model call.

A random forest answers a 64-row matrix in barely more time than a
1-row vector — per-call overhead (per-tree dispatch, clamping, prior
offsets) dominates at small batch sizes.  Under concurrency the batcher
therefore *accumulates*: the first row to arrive for a model opens a
bucket and starts a timer (``window_s``); rows arriving within the
window join the bucket; when the timer fires (or the bucket hits
``max_rows``) all rows go through **one** ``predict_labels`` call and
the label slices fan back out to the awaiting requests.

Buckets are keyed by (model name, generation): a hot reload mid-window
opens a fresh bucket for the new generation while the old one finishes
on the model object its requests resolved — no request ever mixes
generations.  With ``window_s == 0`` the batcher degrades to a direct
per-request call (the "single" path the serve benchmark compares
against).

The model call runs in a worker thread (``run_in_executor``), keeping
the event loop free to parse, batch and answer health checks while
NumPy crunches — the forest's heavy lifting releases the GIL.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics
from .registry import ServedModel


@dataclass
class _Bucket:
    """Rows accumulating for one (model, generation) pair."""

    served: ServedModel
    items: list[tuple[np.ndarray, asyncio.Future]] = field(
        default_factory=list
    )
    rows: int = 0
    timer: asyncio.Task | None = None


def predict_matrix(
    served: ServedModel, X: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One timed, width-checked matrix call on pre-aligned rows."""
    with metrics().timer("serve.predict"):
        return served.model.predict_labels(X)


class MicroBatcher:
    """Accumulate concurrent predict calls into vectorized batches."""

    def __init__(
        self,
        *,
        window_s: float = 0.002,
        max_rows: int = 4096,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        self.window_s = float(window_s)
        self.max_rows = int(max_rows)
        self._buckets: dict[tuple[str, int], _Bucket] = {}

    # ------------------------------------------------------------- public

    def pending_rows(self) -> int:
        """Rows currently waiting in open buckets (drain visibility)."""
        return sum(b.rows for b in self._buckets.values())

    async def submit(
        self, served: ServedModel, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Rows (model layout) -> (ipc_per_pe, epi, batch_row_count).

        ``batch_row_count`` is the size of the matrix call that answered
        these rows — observability for how much coalescing actually
        happened (the response reports it as ``batched_rows``).
        """
        loop = asyncio.get_running_loop()
        if self.window_s == 0.0:
            ipc, epi = await loop.run_in_executor(
                None, predict_matrix, served, X
            )
            metrics().inc("serve.batches")
            return ipc, epi, X.shape[0]
        key = (served.name, served.generation)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(served=served)
            self._buckets[key] = bucket
            bucket.timer = asyncio.create_task(
                self._flush_after_window(key)
            )
        future: asyncio.Future = loop.create_future()
        bucket.items.append((X, future))
        bucket.rows += X.shape[0]
        if bucket.rows >= self.max_rows:
            self._detach(key, bucket)
            await self._flush(bucket)
        return await future

    async def drain(self) -> None:
        """Flush every open bucket now (graceful-shutdown path)."""
        while self._buckets:
            key = next(iter(self._buckets))
            bucket = self._buckets[key]
            self._detach(key, bucket)
            await self._flush(bucket)

    # ------------------------------------------------------------ internal

    def _detach(self, key: tuple[str, int], bucket: _Bucket) -> None:
        """Close the bucket to new rows and cancel its window timer."""
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
        if bucket.timer is not None and not bucket.timer.done():
            bucket.timer.cancel()

    async def _flush_after_window(self, key: tuple[str, int]) -> None:
        await asyncio.sleep(self.window_s)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        del self._buckets[key]
        await self._flush(bucket)

    async def _flush(self, bucket: _Bucket) -> None:
        if not bucket.items:
            return
        loop = asyncio.get_running_loop()
        matrices = [X for X, _ in bucket.items]
        batch = (
            matrices[0] if len(matrices) == 1 else np.vstack(matrices)
        )
        total = batch.shape[0]
        metrics().inc("serve.batches")
        metrics().inc("serve.batched_rows", total)
        try:
            ipc, epi = await loop.run_in_executor(
                None, predict_matrix, bucket.served, batch
            )
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, future in bucket.items:
                if not future.done():
                    future.set_exception(exc)
            return
        offset = 0
        for X, future in bucket.items:
            n = X.shape[0]
            if not future.done():
                future.set_result(
                    (ipc[offset:offset + n], epi[offset:offset + n],
                     total)
                )
            offset += n
