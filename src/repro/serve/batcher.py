"""Microbatching: many concurrent requests, one vectorized model call.

A random forest answers a 64-row matrix in barely more time than a
1-row vector — per-call overhead (per-tree dispatch, clamping, prior
offsets) dominates at small batch sizes.  Under concurrency the batcher
therefore *accumulates*: the first row to arrive for a model opens a
bucket and starts a timer (``window_s``); rows arriving within the
window join the bucket; when the timer fires (or the bucket hits
``max_rows``) all rows go through **one** ``predict_labels`` call and
the label slices fan back out to the awaiting requests.

Buckets are keyed by (model name, generation): a hot reload mid-window
opens a fresh bucket for the new generation while the old one finishes
on the model object its requests resolved — no request ever mixes
generations.  With ``window_s == 0`` the batcher degrades to a direct
per-request call (the "single" path the serve benchmark compares
against).

Every flush carries a **batch id**: requests learn which batch answered
them (``submit`` returns it, the server echoes it into access logs and
``/debug/requests``), and under ``--trace`` the batcher emits one
``serve.predict_batch`` span whose args list the coalesced request ids
— the parent->batch link that connects one vectorized model call to all
the requests it served.  ``instrument=False`` strips the per-batch
histogram/gauge/trace work (the benchmark's overhead baseline) while
keeping the PR 8 counters.

The model call runs in a worker thread (``run_in_executor``), keeping
the event loop free to parse, batch and answer health checks while
NumPy crunches — the forest's heavy lifting releases the GIL.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
from dataclasses import dataclass, field

import numpy as np

from ..obs import DEFAULT_SIZE_BOUNDS, metrics, tracer
from .registry import ServedModel


@dataclass
class _Bucket:
    """Rows accumulating for one (model, generation) pair."""

    served: ServedModel
    batch_id: str
    items: list[tuple[np.ndarray, asyncio.Future, str | None]] = field(
        default_factory=list
    )
    rows: int = 0
    timer: asyncio.Task | None = None


def predict_matrix(
    served: ServedModel, X: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One timed, width-checked matrix call on pre-aligned rows."""
    with metrics().timer("serve.predict"):
        return served.model.predict_labels(X)


class MicroBatcher:
    """Accumulate concurrent predict calls into vectorized batches."""

    def __init__(
        self,
        *,
        window_s: float = 0.002,
        max_rows: int = 4096,
        instrument: bool = True,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        self.window_s = float(window_s)
        self.max_rows = int(max_rows)
        self.instrument = instrument
        self._buckets: dict[tuple[str, int], _Bucket] = {}
        self._batch_seq = itertools.count(1)

    # ------------------------------------------------------------- public

    def pending_rows(self) -> int:
        """Rows currently waiting in open buckets (drain visibility)."""
        return sum(b.rows for b in self._buckets.values())

    def _next_batch_id(self) -> str:
        return f"b{os.getpid()}-{next(self._batch_seq)}"

    async def submit(
        self,
        served: ServedModel,
        X: np.ndarray,
        request_id: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int, str]:
        """Rows (model layout) -> (ipc_per_pe, epi, batch_rows, batch_id).

        ``batch_rows`` is the size of the matrix call that answered
        these rows — observability for how much coalescing actually
        happened (the response reports it as ``batched_rows``).
        ``batch_id`` names that call; the ``serve.predict_batch`` trace
        span with the same id lists every coalesced ``request_id``.
        """
        loop = asyncio.get_running_loop()
        if self.window_s == 0.0:
            batch_id = self._next_batch_id()
            span = self._batch_span(
                served, batch_id,
                [request_id] if request_id is not None else [],
                X.shape[0],
            )
            with span:
                ipc, epi = await loop.run_in_executor(
                    None, predict_matrix, served, X
                )
            metrics().inc("serve.batches")
            self._observe_batch(served, X.shape[0])
            return ipc, epi, X.shape[0], batch_id
        key = (served.name, served.generation)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(
                served=served, batch_id=self._next_batch_id()
            )
            self._buckets[key] = bucket
            bucket.timer = asyncio.create_task(
                self._flush_after_window(key)
            )
        future: asyncio.Future = loop.create_future()
        bucket.items.append((X, future, request_id))
        bucket.rows += X.shape[0]
        if self.instrument:
            metrics().set_gauge("serve.queue_rows", self.pending_rows())
        if bucket.rows >= self.max_rows:
            self._detach(key, bucket)
            await self._flush(bucket)
        return await future

    async def drain(self) -> None:
        """Flush every open bucket now (graceful-shutdown path)."""
        while self._buckets:
            key = next(iter(self._buckets))
            bucket = self._buckets[key]
            self._detach(key, bucket)
            await self._flush(bucket)

    # ------------------------------------------------------------ internal

    def _batch_span(
        self,
        served: ServedModel,
        batch_id: str,
        request_ids: list,
        rows: int,
    ):
        """The ``serve.predict_batch`` trace span linking batch->requests."""
        if not self.instrument:
            return contextlib.nullcontext()
        return tracer().span(
            "serve.predict_batch",
            cat="serve",
            batch_id=batch_id,
            model=served.name,
            generation=served.generation,
            rows=rows,
            request_ids=[r for r in request_ids if r is not None],
        )

    def _observe_batch(self, served: ServedModel, rows: int) -> None:
        if not self.instrument:
            return
        metrics().observe(
            "serve.batch.rows",
            rows,
            {"model": served.name},
            bounds=DEFAULT_SIZE_BOUNDS,
        )
        metrics().set_gauge("serve.queue_rows", self.pending_rows())

    def _detach(self, key: tuple[str, int], bucket: _Bucket) -> None:
        """Close the bucket to new rows and cancel its window timer."""
        if self._buckets.get(key) is bucket:
            del self._buckets[key]
        if bucket.timer is not None and not bucket.timer.done():
            bucket.timer.cancel()

    async def _flush_after_window(self, key: tuple[str, int]) -> None:
        await asyncio.sleep(self.window_s)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        del self._buckets[key]
        await self._flush(bucket)

    async def _flush(self, bucket: _Bucket) -> None:
        if not bucket.items:
            return
        loop = asyncio.get_running_loop()
        matrices = [X for X, _, _ in bucket.items]
        batch = (
            matrices[0] if len(matrices) == 1 else np.vstack(matrices)
        )
        total = batch.shape[0]
        metrics().inc("serve.batches")
        metrics().inc("serve.batched_rows", total)
        self._observe_batch(bucket.served, total)
        span = self._batch_span(
            bucket.served,
            bucket.batch_id,
            [rid for _, _, rid in bucket.items],
            total,
        )
        try:
            with span:
                ipc, epi = await loop.run_in_executor(
                    None, predict_matrix, bucket.served, batch
                )
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, future, _ in bucket.items:
                if not future.done():
                    future.set_exception(exc)
            return
        offset = 0
        for X, future, _ in bucket.items:
            n = X.shape[0]
            if not future.done():
                future.set_result(
                    (ipc[offset:offset + n], epi[offset:offset + n],
                     total, bucket.batch_id)
                )
            offset += n
