"""JSON request/response codec for the prediction server.

One request shape, three row spellings:

.. code-block:: json

    {
      "model": "default",            // optional when one model is served
      "align": false,                // opt in to by-name projection
      "columns": ["profile.f0", ...],// names the positional row layout
      "rows": [[...], [...]],        // positional rows, or
                                     // [{"feature": value, ...}, ...]
      "meta": [{"workload": "atax", "instructions": 123}, ...]  // optional
    }

Rows are validated against the served model's embedded
:class:`~repro.schema.FeatureSchema` — the PR 2 drift machinery.  A
mismatch is a structured **422** naming the missing/extra/moved columns;
``align=true`` opts in to projecting a reordered/superset layout into
the training layout by name (refused if it would erase a live
``arch.backend.*`` one-hot).  Name-keyed (dict) rows are inherently
order-free, so they are assembled directly in model order: missing
features are always a 422, extra keys are a 422 unless ``align``.

``meta`` is per-row sidecar data: when ``instructions`` is present the
response carries the paper's derived quantities (aggregate IPC, time,
energy, EDP) computed by the exact CLI code path
(:meth:`~repro.core.predictor.NapelModel.derive_prediction`), making a
served prediction bit-identical to ``repro predict``.
"""

from __future__ import annotations

import json
from functools import lru_cache

import numpy as np

from ..core.predictor import NapelModel
from ..errors import ReproError, SchemaMismatchError
from ..schema import FeatureBlock, FeatureSchema


class ProtocolError(ReproError):
    """An HTTP-mappable request error (status + machine-readable code)."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        details: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.details = dict(details or {})


def error_body(
    status: int,
    code: str,
    message: str,
    details: dict | None = None,
    *,
    request_id: str | None = None,
) -> bytes:
    """The canonical JSON error document."""
    doc = {"error": code, "status": status, "message": message}
    if request_id is not None:
        doc["request_id"] = request_id
    if details:
        doc.update(details)
    return (json.dumps(doc) + "\n").encode("utf-8")


def schema_mismatch_to_error(exc: SchemaMismatchError) -> ProtocolError:
    """A predict-path schema failure as a structured 422."""
    return ProtocolError(
        422,
        "schema_mismatch",
        str(exc),
        details={
            "missing": list(exc.missing),
            "extra": list(exc.extra),
            "moved": list(exc.moved),
        },
    )


@lru_cache(maxsize=128)
def schema_for_columns(columns: tuple[str, ...]) -> FeatureSchema:
    """A single-block schema describing a request's positional layout.

    Cached per column tuple: a steady client sends the same layout on
    every request, and the schema (and the model-side alignment memo
    keyed on its content hash) should be built exactly once.
    """
    try:
        return FeatureSchema(
            [FeatureBlock(name="request", features=columns)]
        )
    except ReproError as exc:
        raise ProtocolError(
            422, "bad_columns", f"invalid \"columns\": {exc}"
        ) from exc


def decode_predict_request(raw: bytes, *, max_rows: int) -> dict:
    """Parse and structurally validate a ``POST /predict`` body."""
    try:
        payload = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            400, "bad_json", f"request body is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            400, "bad_request", "request body must be a JSON object"
        )
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ProtocolError(
            400, "bad_request",
            "\"rows\" must be a non-empty list of feature rows",
        )
    if len(rows) > max_rows:
        raise ProtocolError(
            413, "too_many_rows",
            f"request carries {len(rows)} rows; the server accepts at "
            f"most {max_rows} per request",
        )
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise ProtocolError(
            400, "bad_request", "\"model\" must be a string model name"
        )
    align = payload.get("align", False)
    if not isinstance(align, bool):
        raise ProtocolError(
            400, "bad_request", "\"align\" must be a boolean"
        )
    columns = payload.get("columns")
    if columns is not None and (
        not isinstance(columns, list)
        or not all(isinstance(c, str) for c in columns)
    ):
        raise ProtocolError(
            400, "bad_request",
            "\"columns\" must be a list of feature-name strings",
        )
    meta = payload.get("meta")
    if meta is not None:
        if not isinstance(meta, list) or len(meta) != len(rows):
            raise ProtocolError(
                400, "bad_request",
                "\"meta\" must be a list with one entry per row",
            )
        if not all(m is None or isinstance(m, dict) for m in meta):
            raise ProtocolError(
                400, "bad_request",
                "every \"meta\" entry must be an object or null",
            )
    return payload


def _matrix_from_lists(
    rows: list, columns: list | None
) -> tuple[np.ndarray, FeatureSchema | None]:
    widths = {len(r) if isinstance(r, list) else -1 for r in rows}
    if -1 in widths or len(widths) != 1:
        raise ProtocolError(
            400, "bad_request",
            "positional rows must all be equal-length lists of numbers",
        )
    try:
        X = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            400, "bad_request", f"rows contain non-numeric values: {exc}"
        ) from exc
    source = None
    if columns is not None:
        if len(columns) != X.shape[1]:
            raise ProtocolError(
                422, "schema_mismatch",
                f"\"columns\" names {len(columns)} features but rows "
                f"have {X.shape[1]} values",
            )
        source = schema_for_columns(tuple(columns))
    return X, source


def _matrix_from_dicts(
    rows: list, schema: FeatureSchema, align: bool
) -> np.ndarray:
    """Name-keyed rows assembled directly in the model's layout."""
    names = schema.names
    name_set = set(names)
    X = np.empty((len(rows), len(names)), dtype=np.float64)
    for i, row in enumerate(rows):
        missing = [n for n in names if n not in row]
        if missing:
            raise ProtocolError(
                422, "schema_mismatch",
                f"row {i} lacks {len(missing)} feature(s) the model "
                "was trained on",
                details={"missing": missing[:32], "extra": [], "moved": []},
            )
        extra = sorted(k for k in row if k not in name_set)
        if extra and not align:
            raise ProtocolError(
                422, "schema_mismatch",
                f"row {i} carries {len(extra)} feature(s) unknown "
                "to the model; pass align=true to drop them by name",
                details={"missing": [], "extra": extra[:32], "moved": []},
            )
        # align=true may drop unknown columns — but never a *live*
        # backend one-hot: that row's device identity would be erased
        # and the model would predict with stale all-zero one-hots.
        hot_backends = [
            k for k in extra
            if k.startswith("arch.backend.") and float(row[k] or 0.0)
        ]
        if hot_backends:
            raise ProtocolError(
                422, "schema_mismatch",
                f"row {i} selects memory backend(s) this model was not "
                f"trained on ({', '.join(hot_backends)}); aligning would "
                "silently zero the backend one-hot — retrain the model",
                details={"missing": [], "extra": hot_backends,
                         "moved": []},
            )
        try:
            X[i] = [float(row[n]) for n in names]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                400, "bad_request",
                f"row {i} contains non-numeric values: {exc}",
            ) from exc
    return X


def build_matrix(
    payload: dict, model: NapelModel
) -> np.ndarray:
    """A validated request -> rows aligned to the model's layout.

    All schema work happens here, once per request — never per row, and
    (thanks to the model's alignment memo) resolved per *layout* only on
    first sighting.  The returned matrix is in the model's training
    layout, so the batcher can concatenate it with other requests' rows
    and run one width-checked ``predict_labels`` call.
    """
    rows = payload["rows"]
    align = bool(payload.get("align", False))
    dict_rows = isinstance(rows[0], dict)
    if any(isinstance(r, dict) != dict_rows for r in rows):
        raise ProtocolError(
            400, "bad_request",
            "rows must be all positional lists or all name-keyed objects",
        )
    if dict_rows:
        return _matrix_from_dicts(rows, model.schema, align)
    X, source = _matrix_from_lists(rows, payload.get("columns"))
    try:
        return model.align_features(X, schema=source, align=align)
    except SchemaMismatchError as exc:
        raise schema_mismatch_to_error(exc) from exc


def predictions_to_json(
    model: NapelModel,
    X_aligned: np.ndarray,
    ipc_per_pe: np.ndarray,
    epi: np.ndarray,
    meta: list | None,
) -> list[dict]:
    """Per-row response documents, with derived quantities when possible.

    Label outputs (per-PE IPC, energy/instruction) are always present.
    When a row's meta carries ``instructions``, the thread count, PE
    count and frequency are read back from the row's own feature columns
    and the full paper formulas run through
    :meth:`NapelModel.derive_prediction` — the same code path as
    ``repro predict``, hence bit-identical derived fields.
    """
    schema = model.schema
    try:
        threads_col = schema.index("app.threads")
        pes_col = schema.index("arch.n_pes")
        freq_col = schema.index("arch.frequency_ghz")
    except SchemaMismatchError:
        threads_col = None  # subset-trained model: labels only
    out: list[dict] = []
    for i in range(X_aligned.shape[0]):
        doc: dict = {
            "ipc_per_pe": float(ipc_per_pe[i]),
            "energy_per_instruction_j": float(epi[i]),
        }
        m = meta[i] if meta is not None else None
        instructions = (m or {}).get("instructions")
        if instructions is not None and threads_col is not None:
            try:
                instructions = int(instructions)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    400, "bad_request",
                    f"meta[{i}].instructions must be an integer",
                ) from exc
            if instructions <= 0:
                raise ProtocolError(
                    400, "bad_request",
                    f"meta[{i}].instructions must be positive",
                )
            pred = model.derive_prediction(
                workload=str((m or {}).get("workload", "")),
                instructions=instructions,
                threads=int(X_aligned[i, threads_col]),
                n_pes=int(X_aligned[i, pes_col]),
                frequency_ghz=float(X_aligned[i, freq_col]),
                ipc_per_pe=float(ipc_per_pe[i]),
                energy_per_instruction_j=float(epi[i]),
            )
            doc.update(
                workload=pred.workload,
                ipc=pred.ipc,
                pes_used=pred.pes_used,
                instructions=pred.instructions,
                time_s=pred.time_s,
                energy_j=pred.energy_j,
                edp=pred.edp,
            )
        out.append(doc)
    return out
