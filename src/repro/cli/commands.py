"""Implementations of the CLI subcommands."""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from ..backends import backend_summaries, get_backend
from ..config import NMCConfig, default_nmc_config
from ..core import (
    CampaignCache,
    NapelTrainer,
    SimulationCampaign,
    analyze_backend_suitability,
    analyze_suitability,
    format_backend_suitability,
    load_model,
    save_model,
)
from ..core.dataset import TrainingSet
from ..core.reporting import format_table
from ..errors import ReproError, WorkloadError
from ..ml import mean_relative_error, r2_score
from ..nmcsim import (
    jit_status,
    simulation_batch_summary,
    simulation_memo_summary,
)
from ..obs import (
    config_hash,
    load_trace,
    merge_traces,
    summarize_serve_requests,
    summarize_trace,
    validate_trace,
)
from ..profiler import analyze_trace
from ..schema import active_schema
from ..workloads import Workload, all_workloads, get_workload


# --------------------------------------------------------------- helpers

def _parse_config(workload: Workload, args: argparse.Namespace) -> dict:
    """Workload input configuration from --param/--test-input flags."""
    if args.test_input:
        config = workload.test_config()
    else:
        config = workload.central_config()
    for item in args.param:
        if "=" not in item:
            raise WorkloadError(
                f"--param expects NAME=VALUE, got {item!r}"
            )
        name, _, value = item.partition("=")
        try:
            config[name.strip()] = float(value)
        except ValueError:
            raise WorkloadError(
                f"--param {name}: {value!r} is not a number"
            ) from None
    return workload.validate_config(config)


def _parse_arch(args: argparse.Namespace) -> NMCConfig:
    """NMC architecture from --backend/--pes/--freq/--l1-lines/... flags.

    The base configuration is the named backend's descriptor
    (``--backend``, default hmc — the pre-backend defaults exactly); the
    per-run knobs override on top.  Values are taken as given and
    validated by :class:`NMCConfig` (``replace`` validates): an invalid
    combination like ``--l1-lines 1 --l1-ways 2`` is a loud configuration
    error, never a silent rewrite.
    """
    changes: dict = {}
    if getattr(args, "pes", None):
        changes["n_pes"] = args.pes
    if getattr(args, "freq", None):
        changes["frequency_ghz"] = args.freq
    if getattr(args, "l1_lines", None):
        changes["l1_lines"] = args.l1_lines
    if getattr(args, "l1_ways", None):
        changes["l1_ways"] = args.l1_ways
    if getattr(args, "vaults", None):
        changes["n_vaults"] = args.vaults
    backend = getattr(args, "backend", None) or "hmc"
    if isinstance(backend, list):  # repeatable flags pick their own arch
        backend = backend[0]
    return NMCConfig.from_backend(backend).replace(**changes)


def _campaign(args: argparse.Namespace, arch: NMCConfig | None = None):
    cache = CampaignCache(args.cache) if getattr(args, "cache", None) else None
    return SimulationCampaign(
        arch or default_nmc_config(),
        cache=cache,
        scale=getattr(args, "scale", 1.0),
        jobs=getattr(args, "jobs", None),
        engine=getattr(args, "engine", None),
        batch=False if getattr(args, "no_batch", False) else None,
        memo_dir=getattr(args, "memo_dir", None),
    )


def _manifest_update(args: argparse.Namespace, **fields) -> None:
    """Record fields into the run manifest (no-op outside ``main``)."""
    manifest = getattr(args, "_run_manifest", None)
    if manifest is not None:
        manifest.update(**fields)


def _cache_summary(cache: CampaignCache) -> dict:
    return {
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_ratio": round(cache.hit_ratio, 6),
        "entries": len(cache),
    }


def _model_fit_summary(trained, training: TrainingSet) -> dict:
    """In-sample accuracy of a freshly-trained model (manifest record).

    These are *training-set* MRE/R² — an upper bound on quality, cheap to
    compute and useful as a corruption canary (a near-zero R² on data the
    model just saw means the artifact is broken).
    """
    ipc_pred, epi_pred = trained.model.predict_labels(
        training.X(), schema=training.schema
    )
    ipc_true = training.y_ipc_per_pe()
    epi_true = training.y_energy_per_instruction()
    return {
        "name": trained.model_name,
        "n_training_rows": trained.n_training_rows,
        "train_tune_seconds": round(trained.train_tune_seconds, 6),
        "ipc_mre": round(mean_relative_error(ipc_true, ipc_pred), 6),
        "ipc_r2": round(r2_score(ipc_true, ipc_pred), 6),
        "energy_mre": round(mean_relative_error(epi_true, epi_pred), 6),
        "energy_r2": round(r2_score(epi_true, epi_pred), 6),
    }


# -------------------------------------------------------------- commands

def cmd_backends(args: argparse.Namespace) -> None:
    """List registered memory backends, or show one in detail."""
    if getattr(args, "name", None):
        descriptor = get_backend(args.name)
        if getattr(args, "json", False):
            print(json.dumps(descriptor.to_json_dict(), indent=2))
            return
        rows = [[k, f"{v}"] for k, v in descriptor.summary().items()]
        t = descriptor.timing
        e = descriptor.energy
        rows += [
            ["t_rcd/t_cl/t_rp (ns)",
             f"{t.t_rcd_ns:g} / {t.t_cl_ns:g} / {t.t_rp_ns:g}"],
            ["t_ras/t_bl (ns)", f"{t.t_ras_ns:g} / {t.t_bl_ns:g}"],
            ["write extra (ns)", f"{t.t_wr_extra_ns:g}"],
            ["activate / rw energy (pJ, pJ/bit)",
             f"{e.dram_activate_pj:g} / {e.dram_rw_pj_per_bit:g}"],
            ["write extra energy (pJ/bit)",
             f"{e.dram_wr_extra_pj_per_bit:g}"],
            ["link", f"{descriptor.link.width_bits} bits x "
                     f"{descriptor.link.gbps:g} Gbps"],
        ]
        print(format_table(
            ["field", "value"], rows,
            title=f"backend descriptor: {descriptor.name}",
        ))
        return
    summaries = backend_summaries()
    if getattr(args, "json", False):
        print(json.dumps(summaries, indent=2))
        return
    rows = [
        [
            s["name"],
            s["family"],
            s["topology"],
            f"{s['capacity_gib']:g}",
            s["row_policy"],
            f"{s['link_gbytes_per_s']:g}",
            f"{s['rw_asymmetry']:g}",
            s["description"],
        ]
        for s in summaries
    ]
    print(format_table(
        ["name", "family", "vaults x layers x banks", "GiB",
         "row policy", "link GB/s", "R/W asym", "description"],
        rows,
        title="registered memory backends (`--backend NAME` to use one)",
    ))


def cmd_workloads(args: argparse.Namespace) -> None:
    rows = []
    for w in all_workloads():
        for i, p in enumerate(w.parameters):
            rows.append([
                w.name if i == 0 else "",
                w.description if i == 0 else "",
                p.name,
                ", ".join(f"{lv:g}" for lv in p.levels),
                f"{p.test:g}",
            ])
    print(format_table(
        ["name", "description", "parameter", "levels (min..max)", "test"],
        rows,
        title="Available workloads (paper Table 2)",
    ))


def cmd_profile(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload)
    config = _parse_config(workload, args)
    start = time.perf_counter()
    trace = workload.generate(config, scale=args.scale)
    profile = analyze_trace(
        trace, workload=workload.name, parameters=config
    )
    elapsed = time.perf_counter() - start
    print(f"workload: {workload.name}  config: {config}")
    print(
        f"trace: {len(trace):,} instructions, "
        f"{trace.memory_op_count:,} memory ops, "
        f"{trace.thread_count} threads  ({elapsed:.2f} s)"
    )
    items = sorted(
        profile.as_dict().items(), key=lambda kv: abs(kv[1]), reverse=True
    )[: args.top]
    print(format_table(
        ["feature", "value"],
        [[name, f"{value:.6g}"] for name, value in items],
        title=f"top {args.top} profile features (of 395)",
    ))


def cmd_simulate(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload)
    config = _parse_config(workload, args)
    arch = _parse_arch(args)
    trace = workload.generate(config, scale=args.scale)
    start = time.perf_counter()
    from ..nmcsim import NMCSimulator

    simulator = NMCSimulator(arch, engine=getattr(args, "engine", None))
    result = simulator.run(trace, workload=workload.name)
    elapsed = time.perf_counter() - start
    print(f"workload: {workload.name}  config: {config}")
    print(f"architecture: {arch.n_pes} PEs @ {arch.frequency_ghz} GHz, "
          f"L1 {arch.l1_bytes} B, {arch.n_vaults} vaults  "
          f"(engine: {simulator.engine})")
    print(format_table(
        ["metric", "value"],
        [
            ["instructions", f"{result.instructions:,}"],
            ["cycles", f"{result.cycles:,}"],
            ["IPC", f"{result.ipc:.4f}"],
            ["time", f"{result.time_s * 1e6:.2f} us"],
            ["energy", f"{result.energy_j * 1e3:.4f} mJ"],
            ["EDP", f"{result.edp:.4e} J*s"],
            ["L1 miss ratio", f"{result.cache.miss_ratio:.1%}"],
            ["DRAM accesses", f"{result.dram.accesses:,}"],
            ["simulation wall-clock", f"{elapsed:.2f} s"],
        ],
        title="simulation result",
    ))


def cmd_campaign(args: argparse.Namespace) -> None:
    workload = get_workload(args.workload)
    campaign = _campaign(args, _parse_arch(args))
    start = time.perf_counter()
    training = campaign.run(workload)
    campaign.cache.save()
    elapsed = time.perf_counter() - start
    _manifest_update(
        args,
        workloads=[workload.name],
        n_points=len(training),
        scale=args.scale,
        backend=campaign.arch.backend,
        arch_config_hash=config_hash(campaign.arch),
        schema_hash=active_schema().content_hash,
        cache=_cache_summary(campaign.cache),
        doe_run_seconds=campaign.doe_run_seconds,
        jobs=campaign.jobs,
        sim_engine=campaign.engine,
        sim_memo=simulation_memo_summary(),
        sim_batch=simulation_batch_summary(),
        sim_jit=jit_status(),
    )
    rows = [
        [
            ", ".join(f"{k}={v:g}" for k, v in row.parameters.items()),
            f"{row.result.ipc:.4f}",
            f"{row.result.energy_j * 1e3:.4f}",
        ]
        for row in training
    ]
    print(format_table(
        ["configuration", "IPC", "energy (mJ)"],
        rows,
        title=f"CCD campaign for {workload.name}: {len(training)} "
              f"configurations in {elapsed:.1f} s",
    ))


def cmd_train(args: argparse.Namespace) -> None:
    backends = getattr(args, "backend", None) or ["hmc"]
    cache = (
        CampaignCache(args.cache) if getattr(args, "cache", None)
        else CampaignCache()
    )
    campaigns = [
        SimulationCampaign(
            NMCConfig.from_backend(name),
            cache=cache,
            scale=getattr(args, "scale", 1.0),
            jobs=getattr(args, "jobs", None),
            engine=getattr(args, "engine", None),
        )
        for name in backends
    ]
    campaign = campaigns[0]
    sets = []
    for name in args.apps:
        workload = get_workload(name)
        for c in campaigns:
            print(
                f"running CCD campaign for {name} "
                f"on {c.arch.backend} ..."
            )
            sets.append(c.run(workload))
    campaign.cache.save()
    training = TrainingSet.concat(sets)
    trainer = NapelTrainer(
        model=args.model,
        n_estimators=args.trees,
        tune=not args.no_tune,
        jobs=args.jobs,
    )
    trained = trainer.train(training)
    save_model(trained.model, args.output)
    _manifest_update(
        args,
        workloads=list(args.apps),
        n_points=len(training),
        scale=args.scale,
        backends=list(backends),
        arch_config_hash=config_hash(campaign.arch),
        schema_hash=trained.model.schema.content_hash,
        cache=_cache_summary(campaign.cache),
        model=_model_fit_summary(trained, training),
        output=str(args.output),
        jobs=campaign.jobs,
        sim_engine=campaign.engine,
        sim_memo=simulation_memo_summary(),
        sim_batch=simulation_batch_summary(),
        sim_jit=jit_status(),
    )
    print(
        f"trained {args.model} on {len(training)} rows "
        f"({trained.train_tune_seconds:.1f} s); model saved to {args.output}"
    )
    if trained.ipc_tuning is not None:
        print(f"IPC hyper-parameters:    {trained.ipc_tuning.best_params}")
        print(f"energy hyper-parameters: {trained.energy_tuning.best_params}")


def cmd_predict(args: argparse.Namespace) -> None:
    # Each stage is timed separately: "prediction wall-clock" must mean
    # the model inference alone, not model deserialization or trace
    # profiling, or CLI-vs-served latency comparisons are meaningless
    # (the server pays the load cost once at startup, the CLI pays it
    # every invocation).
    t0 = time.perf_counter()
    model = load_model(args.model_file)
    load_s = time.perf_counter() - t0
    workload = get_workload(args.workload)
    config = _parse_config(workload, args)
    arch = _parse_arch(args)
    t1 = time.perf_counter()
    trace = workload.generate(config, scale=args.scale)
    profile = analyze_trace(
        trace, workload=workload.name, parameters=config
    )
    profile_s = time.perf_counter() - t1
    t2 = time.perf_counter()
    pred = model.predict(profile, arch)
    predict_s = time.perf_counter() - t2
    _manifest_update(
        args,
        workloads=[workload.name],
        backend=arch.backend,
        model_file=str(args.model_file),
        schema_hash=model.schema.content_hash,
        arch_config_hash=config_hash(arch),
        timing={
            "load_seconds": round(load_s, 6),
            "profile_seconds": round(profile_s, 6),
            "predict_seconds": round(predict_s, 6),
        },
    )
    print(format_table(
        ["metric", "value"],
        [
            ["IPC (aggregate)", f"{pred.ipc:.4f}"],
            ["IPC (per PE)", f"{pred.ipc_per_pe:.4f}"],
            ["PEs used", pred.pes_used],
            ["time", f"{pred.time_s * 1e6:.2f} us"],
            ["energy", f"{pred.energy_j * 1e3:.4f} mJ"],
            ["EDP", f"{pred.edp:.4e} J*s"],
            ["model load wall-clock", f"{load_s * 1e3:.1f} ms"],
            ["trace+profile wall-clock", f"{profile_s * 1e3:.1f} ms"],
            ["prediction wall-clock", f"{predict_s * 1e3:.1f} ms"],
        ],
        title=f"NAPEL prediction: {workload.name} {config}",
    ))


def cmd_serve(args: argparse.Namespace) -> None:
    """Serve model predictions over HTTP until SIGTERM/SIGINT.

    Startup preloads and verifies every ``--model NAME=PATH`` artifact
    (a bad file is an exit-2 configuration error, not a runtime 500),
    prints the serving table, then runs the asyncio server until a
    termination signal triggers the graceful drain.  With ``--reload``,
    SIGHUP hot-swaps freshly-loaded artifacts under live traffic.
    """
    import asyncio
    import signal

    from ..serve import ModelRegistry, PredictionServer, parse_model_specs

    specs = parse_model_specs(args.model)
    registry = ModelRegistry(specs)
    server = PredictionServer(
        registry,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch_rows=args.max_batch_rows,
        slow_request_ms=getattr(args, "slow_request_ms", 0.0),
        instrument=not getattr(args, "no_instrument", False),
        # Rotation is a no-op unless tracing is actually active
        # (--trace or $REPRO_TRACE), so the flag passes unconditionally.
        trace_rotate_events=getattr(args, "trace_rotate_events", 0),
    )

    async def _serve() -> None:
        await server.start()
        rows = [
            [
                entry.name,
                str(entry.preloaded.path),
                entry.preloaded.schema_hash[:16],
                f"{entry.preloaded.n_features}",
                f"{entry.preloaded.load_seconds * 1e3:.1f} ms",
                f"{len(entry.preloaded.warnings)}",
            ]
            for entry in (
                registry.get(name) for name in registry.names()
            )
        ]
        print(format_table(
            ["model", "artifact", "schema hash", "features",
             "load", "warnings"],
            rows,
            title=f"repro serve: listening on "
                  f"http://{server.host}:{server.port} "
                  f"(batch window {server.batch_window_ms:g} ms)",
        ), flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
        if args.reload:
            loop.add_signal_handler(
                signal.SIGHUP,
                lambda: asyncio.ensure_future(server.reload()),
            )
        await server.wait_done()

    asyncio.run(_serve())
    _manifest_update(args, **server.manifest_fields())
    print(
        f"served {server.stats['requests']} request(s), "
        f"{server.stats['rows']} row(s), "
        f"{server.stats['reloads']} reload(s)"
    )


def cmd_schema(args: argparse.Namespace) -> None:
    """Print (or diff) the active model-input feature schema."""
    schema = active_schema()
    if getattr(args, "json", False):
        print(json.dumps(schema.to_json_dict(), indent=2))
        return
    if getattr(args, "diff", None):
        model = load_model(args.diff)
        diff = model.schema.diff(schema)
        print(f"model schema:   {model.schema.content_hash[:16]} "
              f"({len(model.schema)} features, v{model.schema.version})")
        print(f"runtime schema: {schema.content_hash[:16]} "
              f"({len(schema)} features, v{schema.version})")
        print(diff.describe())
        return
    if getattr(args, "names", False):
        for i, name in enumerate(schema.names):
            print(f"{i:4d}  {name}")
        return
    rows = [
        [b.name, len(b), b.dtype, b.description]
        for b in schema.blocks
    ]
    print(format_table(
        ["block", "features", "dtype", "description"],
        rows,
        title=f"active feature schema: {len(schema)} features, "
              f"v{schema.version}, hash {schema.content_hash[:16]}",
    ))


def cmd_trace(args: argparse.Namespace) -> None:
    """Validate, merge or summarize ``--trace`` output files.

    Every input is schema-checked first (a malformed file raises
    :class:`~repro.errors.TracingError`, so the CLI exits 2); the default
    action is a top-N table of span names ranked by self time.
    """
    docs = []
    for path in args.files:
        doc = load_trace(path)
        n_events = validate_trace(doc, source=str(path))
        docs.append(doc)
        if args.validate:
            print(f"{path}: OK ({n_events} events)")
    if args.validate:
        return
    if len(docs) > 1:
        merged = merge_traces(docs, sources=[str(p) for p in args.files])
    else:
        merged = docs[0]
    if getattr(args, "merge", None):
        out = Path(args.merge)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged) + "\n", encoding="utf-8")
        print(f"merged {len(docs)} trace(s) into {out}")
        return
    rows = [
        [
            s["name"],
            f"{s['count']:,}",
            f"{s['total_us'] / 1e3:,.3f}",
            f"{s['self_us'] / 1e3:,.3f}",
        ]
        for s in summarize_trace(merged, top=args.top)
    ]
    if not rows:
        print("no duration (ph=X) events in the trace")
        return
    print(format_table(
        ["span", "count", "total (ms)", "self (ms)"],
        rows,
        title=f"top {args.top} spans by self time "
              f"({len(args.files)} file(s))",
    ))
    if getattr(args, "serve", False):
        summary = summarize_serve_requests(merged)
        if not summary["requests"]:
            print("no serve.request spans in the trace")
            return
        print(format_table(
            ["model", "route", "status", "count", "total (ms)",
             "max (ms)"],
            [
                [
                    g["model"], g["route"], g["status"],
                    f"{g['count']:,}",
                    f"{g['total_us'] / 1e3:,.3f}",
                    f"{g['max_us'] / 1e3:,.3f}",
                ]
                for g in summary["groups"]
            ],
            title=(
                f"serve requests: {summary['requests']} across "
                f"{summary['batches']} batch(es)"
                + (
                    f", {summary['mean_requests_per_batch']} "
                    "request(s)/batch"
                    if summary["mean_requests_per_batch"] is not None
                    else ""
                )
                + (
                    f"; {summary['unlinked_requests']} UNLINKED"
                    if summary["unlinked_requests"] else ""
                )
            ),
        ))


def cmd_suitability(args: argparse.Namespace) -> None:
    workloads = [get_workload(name) for name in args.apps]
    if len(workloads) < 2:
        raise ReproError(
            "suitability needs at least two workloads (the NAPEL model is "
            "trained on the other applications)"
        )
    backends = getattr(args, "backend", None) or ["hmc"]
    if len(backends) > 1:
        _suitability_by_backend(args, workloads, backends)
        return
    campaign = _campaign(args, NMCConfig.from_backend(backends[0]))
    print(f"running CCD campaigns for {', '.join(args.apps)} ...")
    training = campaign.run_all(workloads)
    campaign.cache.save()
    results = analyze_suitability(workloads, campaign, training_set=training)
    _manifest_update(
        args,
        workloads=list(args.apps),
        n_points=len(training),
        scale=args.scale,
        backend=campaign.arch.backend,
        arch_config_hash=config_hash(campaign.arch),
        schema_hash=active_schema().content_hash,
        cache=_cache_summary(campaign.cache),
        model={
            "edp_mre": {
                r.workload: round(r.edp_mre, 6) for r in results
            },
            "mean_edp_mre": round(
                sum(r.edp_mre for r in results) / len(results), 6
            ),
        },
        jobs=campaign.jobs,
        sim_engine=campaign.engine,
        sim_memo=simulation_memo_summary(),
        sim_batch=simulation_batch_summary(),
        sim_jit=jit_status(),
    )
    rows = [
        [
            r.workload,
            f"{r.edp_reduction_actual:8.2f}",
            f"{r.edp_reduction_pred:8.2f}",
            "NMC-suitable" if r.suitable_actual else "host wins",
            f"{r.edp_mre:6.1%}",
        ]
        for r in results
    ]
    print(format_table(
        ["app", "EDP red (sim)", "EDP red (NAPEL)", "verdict", "EDP MRE"],
        rows,
        title="NMC-suitability analysis (cf. paper Figure 7)",
    ))


def _suitability_by_backend(
    args: argparse.Namespace, workloads: list[Workload], backends: list[str]
) -> None:
    """Multi-backend suitability: rank backends per kernel by EDP."""
    cache = (
        CampaignCache(args.cache) if getattr(args, "cache", None)
        else CampaignCache()
    )
    print(
        f"running CCD campaigns for {', '.join(args.apps)} on "
        f"{', '.join(backends)} ..."
    )
    results = analyze_backend_suitability(
        workloads,
        backends,
        cache=cache,
        scale=getattr(args, "scale", 1.0),
        jobs=getattr(args, "jobs", None),
        engine=getattr(args, "engine", None),
    )
    cache.save()
    best = {
        r.workload: r.backend for r in results if r.rank == 1
    }
    _manifest_update(
        args,
        workloads=list(args.apps),
        backends=list(backends),
        scale=args.scale,
        schema_hash=active_schema().content_hash,
        cache=_cache_summary(cache),
        best_backend=best,
        sim_memo=simulation_memo_summary(),
        sim_batch=simulation_batch_summary(),
        sim_jit=jit_status(),
    )
    print(format_backend_suitability(results))
