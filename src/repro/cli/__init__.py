"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the pipeline stages:

* ``profile``     — phase 1: profile a workload configuration
* ``simulate``    — phase 2: simulate a configuration on the NMC system
* ``campaign``    — run a workload's CCD campaign
* ``train``       — phases 1-3: train a NAPEL model, save it to disk
* ``predict``     — load a model, predict a workload configuration
* ``suitability`` — the Section 3.4 EDP analysis
* ``workloads``   — list the available workloads and their parameters
"""

from .main import build_parser, main

__all__ = ["main", "build_parser"]
