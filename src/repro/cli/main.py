"""Argument parsing and dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .. import __version__
from ..errors import ReproError
from . import commands


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "NAPEL reproduction: near-memory-computing performance and "
            "energy prediction via ensemble learning (DAC 2019)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared workload/config arguments -----------------------------------
    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", help="workload name (see `workloads`)")
        p.add_argument(
            "--param", "-p", action="append", default=[],
            metavar="NAME=VALUE",
            help="input parameter (repeatable); defaults to central levels",
        )
        p.add_argument(
            "--test-input", action="store_true",
            help="use the paper's Table 2 test input",
        )
        p.add_argument(
            "--scale", type=float, default=1.0,
            help="extra trace shrink factor (default 1.0)",
        )

    def add_arch_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--pes", type=int, help="number of NMC PEs")
        p.add_argument("--freq", type=float, help="PE frequency (GHz)")
        p.add_argument("--l1-lines", type=int, help="L1 lines per PE")
        p.add_argument("--vaults", type=int, help="DRAM vaults")

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", "-j", type=int, default=None, metavar="N",
            help="worker processes (default: $REPRO_JOBS or serial; "
                 "0 = all CPUs; results are identical at any job count)",
        )

    p = sub.add_parser("workloads", help="list workloads and parameters")
    p.set_defaults(func=commands.cmd_workloads)

    p = sub.add_parser("profile", help="phase 1: profile a configuration")
    add_workload_args(p)
    p.add_argument(
        "--top", type=int, default=20,
        help="show the N most informative features (default 20)",
    )
    p.set_defaults(func=commands.cmd_profile)

    p = sub.add_parser("simulate", help="phase 2: simulate on the NMC system")
    add_workload_args(p)
    add_arch_args(p)
    p.set_defaults(func=commands.cmd_simulate)

    p = sub.add_parser("campaign", help="run a workload's CCD campaign")
    add_workload_args(p)
    add_arch_args(p)
    p.add_argument("--cache", help="campaign cache file (JSON)")
    add_jobs_arg(p)
    p.set_defaults(func=commands.cmd_campaign)

    p = sub.add_parser("train", help="train a NAPEL model and save it")
    p.add_argument(
        "apps", nargs="+", help="workloads whose CCD campaigns form the "
        "training set",
    )
    p.add_argument("--output", "-o", required=True, help="model file path")
    p.add_argument("--cache", help="campaign cache file (JSON)")
    p.add_argument(
        "--model", choices=("rf", "ann", "tree"), default="rf",
        help="learner (default: rf, the paper's choice)",
    )
    p.add_argument("--trees", type=int, default=60, help="forest size")
    p.add_argument(
        "--no-tune", action="store_true", help="skip hyper-parameter tuning"
    )
    p.add_argument(
        "--scale", type=float, default=1.0, help="trace shrink factor"
    )
    add_jobs_arg(p)
    p.set_defaults(func=commands.cmd_train)

    p = sub.add_parser("predict", help="predict with a saved model")
    add_workload_args(p)
    add_arch_args(p)
    p.add_argument("--model-file", "-m", required=True, help="model file")
    p.set_defaults(func=commands.cmd_predict)

    p = sub.add_parser(
        "schema",
        help="print or diff the active model-input feature schema",
    )
    p.add_argument(
        "--names", action="store_true",
        help="list every feature name with its column index",
    )
    p.add_argument(
        "--json", action="store_true",
        help="dump the schema as JSON (the model-artifact header format)",
    )
    p.add_argument(
        "--diff", metavar="MODEL_FILE",
        help="diff a saved model's training schema against the runtime one",
    )
    p.set_defaults(func=commands.cmd_schema)

    p = sub.add_parser(
        "suitability", help="EDP-based NMC-suitability analysis (Sec. 3.4)"
    )
    p.add_argument("apps", nargs="+", help="workloads to analyze")
    p.add_argument("--cache", help="campaign cache file (JSON)")
    p.add_argument(
        "--scale", type=float, default=1.0, help="trace shrink factor"
    )
    add_jobs_arg(p)
    p.set_defaults(func=commands.cmd_suitability)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
