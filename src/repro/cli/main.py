"""Argument parsing and dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from typing import Sequence

from .. import __version__
from ..backends import backend_names
from ..errors import ReproError
from ..obs import RunManifest, configure_logging, get_logger, metrics
from ..obs.trace import (
    TRACE_ENV_VAR,
    TRACE_EPOCH_ENV_VAR,
    TRACE_HW_ENV_VAR,
    activate_tracing,
    reset_tracing,
    tracer,
)
from . import commands

log = get_logger("repro")

#: Environment variable forcing full tracebacks on unexpected errors.
DEBUG_ENV_VAR = "REPRO_DEBUG"

#: Exit code for SIGINT, per POSIX convention (128 + SIGINT).
EXIT_INTERRUPTED = 130


def _add_global_flags(p: argparse.ArgumentParser, *, root: bool) -> None:
    """Logging/observability flags, accepted both before and after the
    subcommand.

    The subparser copies default to ``argparse.SUPPRESS`` so a flag given
    only at the root position is not clobbered by the subparser's
    defaults when the namespaces merge.
    """
    suppress = {} if root else {"default": argparse.SUPPRESS}
    p.add_argument(
        "--verbose", "-v", action="count",
        help="log progress to stderr (-v info, -vv debug)",
        **({"default": 0} if root else {"default": argparse.SUPPRESS}),
    )
    p.add_argument(
        "--quiet", "-q", action="store_true",
        help="errors only on stderr", **suppress,
    )
    p.add_argument(
        "--log-json", metavar="FILE",
        help="append JSON-lines structured logs (full detail) to FILE",
        **({"default": None} if root else {"default": argparse.SUPPRESS}),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "NAPEL reproduction: near-memory-computing performance and "
            "energy prediction via ensemble learning (DAC 2019)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    _add_global_flags(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared workload/config arguments -----------------------------------
    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", help="workload name (see `workloads`)")
        p.add_argument(
            "--param", "-p", action="append", default=[],
            metavar="NAME=VALUE",
            help="input parameter (repeatable); defaults to central levels",
        )
        p.add_argument(
            "--test-input", action="store_true",
            help="use the paper's Table 2 test input",
        )
        p.add_argument(
            "--scale", type=float, default=1.0,
            help="extra trace shrink factor (default 1.0)",
        )

    def add_backend_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend", choices=backend_names(), default="hmc",
            help="memory backend descriptor (default: hmc, the paper's "
                 "Table 3 device; see `repro backends`)",
        )

    def add_arch_args(p: argparse.ArgumentParser) -> None:
        add_backend_arg(p)
        p.add_argument("--pes", type=int, help="number of NMC PEs")
        p.add_argument("--freq", type=float, help="PE frequency (GHz)")
        p.add_argument("--l1-lines", type=int, help="L1 lines per PE")
        p.add_argument(
            "--l1-ways", type=int,
            help="L1 associativity (any value dividing --l1-lines; "
                 "default 2)",
        )
        p.add_argument("--vaults", type=int, help="DRAM vaults")

    def add_engine_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine", choices=("fast", "reference"), default=None,
            help="simulation engine (default: $REPRO_SIM_ENGINE or fast); "
                 "fast = vectorized two-phase, reference = per-access "
                 "event loop; results are identical either way",
        )

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", "-j", type=int, default=None, metavar="N",
            help="worker processes (default: $REPRO_JOBS or serial; "
                 "0 = all CPUs; results are identical at any job count)",
        )

    def add_batch_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--no-batch", action="store_true",
            help="simulate campaign points one at a time instead of "
                 "batching every point's contention replay into one "
                 "kernel call (default: batched, or $REPRO_SIM_BATCH=0; "
                 "results are identical either way)",
        )
        p.add_argument(
            "--memo-dir", metavar="DIR",
            help="persist the simulator's phase-A geometry products "
                 "(packed event bundles + cache stats) as content-hash-"
                 "keyed entries under DIR, shared across processes and "
                 "runs (default: $REPRO_SIM_MEMO_DIR, or no persistence)",
        )

    def add_manifest_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--manifest", metavar="PATH",
            help="write a JSON run manifest (args, config/schema hashes, "
                 "per-phase wall times, cache hit ratio, exit code) to PATH",
        )

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="PATH",
            help="write a Chrome-trace/Perfetto event timeline (JSON) of "
                 f"this run to PATH (${TRACE_ENV_VAR} also activates it); "
                 "written even on failure, one lane per worker",
        )
        p.add_argument(
            "--trace-hw", action="store_true",
            help="also record the simulated NMC hardware timeline "
                 "(per-PE busy/stall, vault occupancy, cache counters) on "
                 "the simulated clock; needs --trace (or "
                 f"${TRACE_ENV_VAR}) to have somewhere to go",
        )

    def new_command(name: str, **kwargs) -> argparse.ArgumentParser:
        p = sub.add_parser(name, **kwargs)
        _add_global_flags(p, root=False)
        return p

    p = new_command("workloads", help="list workloads and parameters")
    p.set_defaults(func=commands.cmd_workloads)

    p = new_command(
        "backends", help="list registered memory backend descriptors"
    )
    p.add_argument(
        "name", nargs="?", default=None,
        help="show one backend's full descriptor (timing, energy, link)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="dump the descriptor(s) as JSON",
    )
    p.set_defaults(func=commands.cmd_backends)

    p = new_command("profile", help="phase 1: profile a configuration")
    add_workload_args(p)
    p.add_argument(
        "--top", type=int, default=20,
        help="show the N most informative features (default 20)",
    )
    p.set_defaults(func=commands.cmd_profile)

    p = new_command("simulate", help="phase 2: simulate on the NMC system")
    add_workload_args(p)
    add_arch_args(p)
    add_engine_arg(p)
    add_trace_args(p)
    p.set_defaults(func=commands.cmd_simulate)

    p = new_command("campaign", help="run a workload's CCD campaign")
    add_workload_args(p)
    add_arch_args(p)
    p.add_argument("--cache", help="campaign cache file (JSON)")
    add_engine_arg(p)
    add_jobs_arg(p)
    add_batch_args(p)
    add_manifest_arg(p)
    add_trace_args(p)
    p.set_defaults(func=commands.cmd_campaign)

    p = new_command("train", help="train a NAPEL model and save it")
    p.add_argument(
        "apps", nargs="+", help="workloads whose CCD campaigns form the "
        "training set",
    )
    p.add_argument("--output", "-o", required=True, help="model file path")
    p.add_argument(
        "--backend", choices=backend_names(), action="append",
        default=None, metavar="NAME",
        help="memory backend(s) for the training campaigns (repeatable; "
             "default: hmc; several backends produce one multi-backend "
             "model — the arch.backend.* one-hot keeps them apart)",
    )
    p.add_argument("--cache", help="campaign cache file (JSON)")
    p.add_argument(
        "--model", choices=("rf", "ann", "tree"), default="rf",
        help="learner (default: rf, the paper's choice)",
    )
    p.add_argument("--trees", type=int, default=60, help="forest size")
    p.add_argument(
        "--no-tune", action="store_true", help="skip hyper-parameter tuning"
    )
    p.add_argument(
        "--scale", type=float, default=1.0, help="trace shrink factor"
    )
    add_engine_arg(p)
    add_jobs_arg(p)
    add_batch_args(p)
    add_manifest_arg(p)
    add_trace_args(p)
    p.set_defaults(func=commands.cmd_train)

    p = new_command("predict", help="predict with a saved model")
    add_workload_args(p)
    add_arch_args(p)
    p.add_argument("--model-file", "-m", required=True, help="model file")
    add_manifest_arg(p)
    add_trace_args(p)
    p.set_defaults(func=commands.cmd_predict)

    p = new_command(
        "serve",
        help="serve predictions over HTTP (long-lived, batched)",
    )
    p.add_argument(
        "--model", action="append", required=True, metavar="NAME=PATH",
        help="load a v2 model artifact under NAME (repeatable; a bare "
             "PATH is registered as 'default')",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8177,
        help="TCP port (default 8177; 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="microbatching window: concurrent /predict requests arriving "
             "within this many ms are answered by one vectorized model "
             "call (0 disables batching; default 2.0)",
    )
    p.add_argument(
        "--max-batch-rows", type=int, default=4096,
        help="flush a microbatch early once it holds this many rows",
    )
    p.add_argument(
        "--reload", action="store_true",
        help="reload the model artifacts from disk on SIGHUP (warm "
             "standby: the new models load and verify in the background "
             "while in-flight requests finish on the old ones)",
    )
    p.add_argument(
        "--slow-request-ms", type=float, default=0.0,
        help="requests slower than this many ms attach an exemplar to "
             "their latency-histogram bucket and log a structured "
             "warning (0 disables; default 0)",
    )
    p.add_argument(
        "--no-instrument", action="store_true",
        help="disable per-request observability (labeled metrics, "
             "latency histograms, access log, /debug/requests ring, "
             "request trace spans); aggregate serve.* counters stay on",
    )
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record request/batch spans into a Chrome-trace file "
             "(rotates to PATH-derived numbered files while serving; "
             "the remainder is written to PATH at shutdown)",
    )
    p.add_argument(
        "--trace-rotate-events", type=int, default=500_000,
        help="with --trace: flush the buffer to the next numbered "
             "rotation file once it holds this many events "
             "(default 500000; 0 never rotates)",
    )
    add_manifest_arg(p)
    p.set_defaults(func=commands.cmd_serve)

    p = new_command(
        "schema",
        help="print or diff the active model-input feature schema",
    )
    p.add_argument(
        "--names", action="store_true",
        help="list every feature name with its column index",
    )
    p.add_argument(
        "--json", action="store_true",
        help="dump the schema as JSON (the model-artifact header format)",
    )
    p.add_argument(
        "--diff", metavar="MODEL_FILE",
        help="diff a saved model's training schema against the runtime one",
    )
    p.set_defaults(func=commands.cmd_schema)

    p = new_command(
        "suitability", help="EDP-based NMC-suitability analysis (Sec. 3.4)"
    )
    p.add_argument("apps", nargs="+", help="workloads to analyze")
    p.add_argument(
        "--backend", choices=backend_names(), action="append",
        default=None, metavar="NAME",
        help="memory backend(s) to analyze (repeatable; default: hmc; "
             "with several, backends are ranked per kernel by EDP "
             "reduction)",
    )
    p.add_argument("--cache", help="campaign cache file (JSON)")
    p.add_argument(
        "--scale", type=float, default=1.0, help="trace shrink factor"
    )
    add_engine_arg(p)
    add_jobs_arg(p)
    add_batch_args(p)
    add_manifest_arg(p)
    add_trace_args(p)
    p.set_defaults(func=commands.cmd_suitability)

    p = new_command(
        "trace", help="inspect Chrome-trace files written with --trace"
    )
    p.add_argument("files", nargs="+", help="trace JSON file(s)")
    p.add_argument(
        "--top", type=int, default=15,
        help="rows in the self-time summary (default 15)",
    )
    p.add_argument(
        "--validate", action="store_true",
        help="only check the files against the trace-event schema "
             "(malformed file -> exit 2)",
    )
    p.add_argument(
        "--merge", metavar="OUT",
        help="merge the input files into OUT (one pid block per file) "
             "instead of summarizing",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="also summarize serve request/batch spans: per "
             "model x route x status latency totals, requests per "
             "microbatch, and batch-link consistency",
    )
    p.set_defaults(func=commands.cmd_trace)

    return parser


def _debug_enabled(verbosity: int) -> bool:
    return verbosity > 0 or bool(os.environ.get(DEBUG_ENV_VAR, "").strip())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Error contract (fail loud, no raw tracebacks by default):

    * expected framework errors (:class:`ReproError`) -> one line, exit 2;
    * SIGINT mid-run -> one line, exit 130;
    * anything else -> one-line exception summary, exit 1 (full traceback
      with ``--verbose`` or ``REPRO_DEBUG=1``).

    When the subcommand accepts ``--manifest PATH``, the manifest is
    written even on failure, with the exit code recorded.  The same holds
    for ``--trace PATH``: a run that dies mid-campaign still leaves the
    events it recorded on disk (with the exit path visible as truncated
    spans).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    verbosity = -1 if getattr(args, "quiet", False) else args.verbose
    configure_logging(verbosity, json_path=args.log_json)
    manifest = RunManifest(
        args.command or "",
        list(argv) if argv is not None else sys.argv[1:],
    )
    args._run_manifest = manifest
    # Event tracing: --trace PATH or $REPRO_TRACE activates; the `trace`
    # subcommand never self-activates (it *inspects* trace files, and
    # tracing its own run could clobber the file being inspected).
    trace_path: str | None = None
    prior_trace_env: dict[str, str | None] = {}
    if args.command != "trace":
        trace_path = getattr(args, "trace", None) or (
            os.environ.get(TRACE_ENV_VAR, "").strip() or None
        )
    if trace_path:
        trace_hw = bool(getattr(args, "trace_hw", False)) or bool(
            os.environ.get(TRACE_HW_ENV_VAR, "").strip()
        )
        prior_trace_env = {
            var: os.environ.get(var)
            for var in (TRACE_ENV_VAR, TRACE_HW_ENV_VAR, TRACE_EPOCH_ENV_VAR)
        }
        activate_tracing(trace_path, hw=trace_hw)
    code = 0
    try:
        args.func(args)
    except ReproError as exc:
        if _debug_enabled(verbosity):
            traceback.print_exc()
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = EXIT_INTERRUPTED
    except Exception as exc:  # noqa: BLE001 - the CLI's last line of defence
        if _debug_enabled(verbosity):
            traceback.print_exc()
        log.error(
            "unexpected error",
            extra={"ctx": {
                "exception": type(exc).__name__, "message": str(exc),
            }},
        )
        print(
            f"unexpected error: {type(exc).__name__}: {exc} "
            f"(re-run with --verbose or {DEBUG_ENV_VAR}=1 for the "
            "full traceback)",
            file=sys.stderr,
        )
        code = 1
    finally:
        if trace_path:
            tr = tracer()
            try:
                tr.write(trace_path)
                manifest.record_trace(
                    trace_path,
                    events=tr.event_count,
                    dropped=tr.dropped,
                    hw_dropped=tr.hw_dropped,
                )
            except OSError as exc:
                print(
                    f"error: could not write trace {trace_path}: {exc}",
                    file=sys.stderr,
                )
                code = code or 1
            reset_tracing()
            for var, value in prior_trace_env.items():
                if value is not None:
                    os.environ[var] = value
        manifest_path = getattr(args, "manifest", None)
        if manifest_path:
            try:
                manifest.finish(code, registry=metrics())
                manifest.write(manifest_path)
            except OSError as exc:
                print(
                    f"error: could not write manifest {manifest_path}: "
                    f"{exc}",
                    file=sys.stderr,
                )
                code = code or 1
    return code
