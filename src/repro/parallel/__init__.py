"""Parallel execution engine for campaigns, LOOCV and ensemble training.

Every expensive stage of the reproduction — DoE simulation campaigns,
leave-one-application-out retraining, bootstrap-tree fitting and
hyper-parameter grid search — is an embarrassingly parallel loop over
independent jobs.  This subpackage provides the one abstraction they all
share: :func:`map_jobs`, an ordered, deterministic, exception-annotating
map over a job list, backed either by the calling process
(:class:`SerialExecutor`) or by a pool of worker processes
(:class:`ProcessExecutor`).

Determinism is a hard guarantee: callers pre-compute any random state
(per-job seeds, bootstrap samples) *before* dispatch, workers are pure
functions of their job payload, and results are merged back in job order
— so a parallel run produces bit-identical output to a serial one.
"""

from .executor import (
    ParallelError,
    ProcessExecutor,
    SerialExecutor,
    derive_seeds,
    in_worker,
    map_jobs,
    process_pool_available,
    resolve_jobs,
)

__all__ = [
    "ParallelError",
    "ProcessExecutor",
    "SerialExecutor",
    "derive_seeds",
    "in_worker",
    "map_jobs",
    "process_pool_available",
    "resolve_jobs",
]
