"""Executor abstraction: ordered map over independent jobs.

:func:`map_jobs` is the single entry point.  It resolves the requested
worker count (explicit argument > ``REPRO_JOBS`` environment variable >
serial), picks :class:`SerialExecutor` or :class:`ProcessExecutor`, and
returns results in job order.  Worker-side exceptions are captured with
their traceback and re-raised in the caller as :class:`ParallelError`
carrying the job index and repr, so a failure deep inside a pool points
at the job that caused it.

The process backend degrades gracefully: it falls back to serial when
only one job (or one worker) is requested, when the interpreter is
already inside a pool worker (no nested pools), or when the platform
cannot start worker processes at all (missing ``fork``/semaphores, e.g.
restricted sandboxes) — emitting a warning rather than failing.
"""

from __future__ import annotations

import os
import traceback
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..errors import ParallelError
from ..obs import get_logger, metrics, tracer
from ..obs.trace import HW_PID as _HW_PID

log = get_logger("repro.parallel")

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Set in pool workers so nested ``map_jobs`` calls stay serial.
_IN_WORKER = False


def in_worker() -> bool:
    """True when running inside a :class:`ProcessExecutor` pool worker."""
    return _IN_WORKER


def _mark_worker(worker_init: Callable[[], None] | None = None) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    log.debug(
        "pool worker started", extra={"ctx": {"pid": os.getpid()}}
    )
    if worker_init is not None:
        # Caller-supplied per-worker setup (must be picklable, e.g. a
        # functools.partial): adopts parent-process configuration that
        # does not travel through fork/spawn, like the simulator's
        # persistent memo-store directory.
        worker_init()


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit value > ``REPRO_JOBS`` env > 1.

    ``jobs=0`` / ``REPRO_JOBS=0`` means "all CPUs".  Values are clamped
    to >= 1; a malformed environment value falls back to serial with a
    warning instead of raising.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            warnings.warn(
                f"ignoring non-integer {JOBS_ENV_VAR}={raw!r}; running serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def derive_seeds(base_seed: int | None, n: int) -> list[int]:
    """``n`` independent, order-stable seeds derived from ``base_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the i-th seed
    depends only on ``(base_seed, i)`` — never on which worker draws it
    or in which order jobs finish.
    """
    if n < 0:
        raise ParallelError("cannot derive a negative number of seeds")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def _call_job(payload):
    """Pool-side shim: run one job, capturing any exception with context.

    Besides the job's result (or failure triple), ships the *delta* of
    the worker's observability state accumulated while running this job:
    the metrics-registry diff (so the parent's merged counters/timers
    match a serial run's counts exactly) and, when tracing is active, the
    trace events the job recorded (so the parent can remap them onto a
    per-worker timeline lane).
    """
    index, fn, job = payload
    before = metrics().snapshot()
    t = tracer()
    trace_mark = t.mark() if t.enabled else 0
    try:
        result = fn(job)
        ok, out = True, result
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        ok, out = False, (
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        )
    events = t.events_since(trace_mark) if t.enabled else []
    return index, ok, out, metrics().diff(before), events


def _raise_failure(index: int, job, failure) -> None:
    exc_name, exc_msg, tb = failure
    log.error(
        "pool job failed",
        extra={"ctx": {
            "job_index": index,
            "exception": exc_name,
            "message": exc_msg,
        }},
    )
    raise ParallelError(
        f"job {index} ({job!r}) failed with {exc_name}: {exc_msg}\n{tb}"
    )


class SerialExecutor:
    """Runs jobs one after another in the calling process.

    Exceptions propagate unchanged: in-process the original traceback is
    intact, so wrapping would only obscure it.  Only pool workers (whose
    tracebacks die with the worker) wrap failures in
    :class:`ParallelError`.
    """

    jobs_n = 1

    def map_jobs(
        self, fn: Callable[[T], R], jobs: Sequence[T], *, chunk: int | None = None
    ) -> list[R]:
        return [fn(job) for job in jobs]


def process_pool_available() -> bool:
    """Whether this platform can actually start pool worker processes.

    Checked lazily and cached: some sandboxes expose ``multiprocessing``
    but fail at semaphore or process creation time.
    """
    global _POOL_AVAILABLE
    if _POOL_AVAILABLE is None:
        try:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(
                max_workers=1, mp_context=_mp_context()
            ) as pool:
                _POOL_AVAILABLE = pool.submit(int, 1).result(timeout=60) == 1
        except BaseException:  # noqa: BLE001 - any failure means "no pool"
            _POOL_AVAILABLE = False
    return _POOL_AVAILABLE


_POOL_AVAILABLE: bool | None = None


def _mp_context():
    """Prefer fork (cheap, inherits loaded modules); fall back to spawn."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(method)


class ProcessExecutor:
    """``concurrent.futures.ProcessPoolExecutor``-backed job map.

    Results come back in job order regardless of completion order.
    Falls back to :class:`SerialExecutor` (with a warning where that is
    surprising) whenever a pool cannot or should not be used.
    """

    def __init__(
        self,
        jobs_n: int,
        *,
        chunk: int | None = None,
        worker_init: Callable[[], None] | None = None,
    ) -> None:
        if jobs_n < 1:
            raise ParallelError("jobs_n must be >= 1")
        self.jobs_n = jobs_n
        self.chunk = chunk
        self.worker_init = worker_init

    def map_jobs(
        self, fn: Callable[[T], R], jobs: Sequence[T], *, chunk: int | None = None
    ) -> list[R]:
        jobs = list(jobs)
        if self.jobs_n <= 1 or len(jobs) <= 1 or in_worker():
            return SerialExecutor().map_jobs(fn, jobs)
        if not process_pool_available():
            warnings.warn(
                "worker processes are unavailable on this platform; "
                "running jobs serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().map_jobs(fn, jobs)
        import concurrent.futures

        workers = min(self.jobs_n, len(jobs))
        chunk = chunk or self.chunk
        if chunk is None:
            # A few chunks per worker balances dispatch overhead against
            # stragglers from uneven job cost.
            chunk = max(1, len(jobs) // (workers * 4))
        payloads = [(i, fn, job) for i, job in enumerate(jobs)]
        log.debug(
            "pool dispatch",
            extra={"ctx": {
                "jobs": len(jobs), "workers": workers, "chunk": chunk,
            }},
        )
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=_mp_context(),
                initializer=_mark_worker,
                initargs=(self.worker_init,),
            ) as pool:
                raw = list(pool.map(_call_job, payloads, chunksize=chunk))
        except ParallelError:
            raise
        except (OSError, RuntimeError, ImportError) as exc:
            warnings.warn(
                f"process pool failed ({exc}); re-running jobs serially",
                RuntimeWarning,
                stacklevel=2,
            )
            log.warning(
                "process pool failed; re-running jobs serially",
                extra={"ctx": {"error": repr(exc)}},
            )
            return SerialExecutor().map_jobs(fn, jobs)
        out: list[R] = [None] * len(jobs)  # type: ignore[list-item]
        # Merge every worker's metrics delta and trace events (including
        # failed jobs': the work they did before dying still happened)
        # before raising.  Each distinct worker pid gets a stable lane in
        # job-index order, so the trace shows one timeline per worker.
        lanes: dict[int, int] = {}
        for _index, _ok, _result, delta, events in raw:
            metrics().merge_snapshot(delta)
            if events:
                worker_pid = next(
                    (
                        e["pid"] for e in events
                        if isinstance(e.get("pid"), int)
                        and e["pid"] < _HW_PID
                    ),
                    None,
                )
                lane = None
                if worker_pid is not None:
                    lane = lanes.setdefault(worker_pid, len(lanes) + 1)
                tracer().adopt(events, lane=lane)
        for index, ok, result, _delta, _events in raw:
            if not ok:
                _raise_failure(index, jobs[index], result)
            out[index] = result
        log.debug(
            "pool drained", extra={"ctx": {"jobs": len(jobs)}}
        )
        return out


def get_executor(
    jobs: int | None = None,
    *,
    chunk: int | None = None,
    worker_init: Callable[[], None] | None = None,
) -> SerialExecutor | ProcessExecutor:
    """Executor for the resolved job count (serial when it is 1).

    ``worker_init`` (picklable, zero-argument) runs once in every pool
    worker before any job; serial execution skips it — the caller's own
    process state already applies.
    """
    jobs_n = resolve_jobs(jobs)
    if jobs_n <= 1:
        return SerialExecutor()
    return ProcessExecutor(jobs_n, chunk=chunk, worker_init=worker_init)


def map_jobs(
    fn: Callable[[T], R],
    jobs: Iterable[T],
    *,
    jobs_n: int | None = None,
    chunk: int | None = None,
    worker_init: Callable[[], None] | None = None,
) -> list[R]:
    """Apply ``fn`` to every job, in parallel when ``jobs_n`` allows it.

    The one-call API used by all hot loops: results are returned in job
    order, pool-worker exceptions re-raise as :class:`ParallelError` with
    the failing job's index and repr (serial runs propagate the original
    exception with its intact traceback), and ``jobs_n=None`` consults
    the ``REPRO_JOBS`` environment variable (absent -> serial).
    ``worker_init`` is per-worker setup for pool runs (see
    :func:`get_executor`).
    """
    return get_executor(
        jobs_n, chunk=chunk, worker_init=worker_init
    ).map_jobs(fn, list(jobs))
