"""The name-keyed backend registry and the four shipped descriptors.

``hmc`` reproduces the pre-registry defaults bit for bit (it *is* the
Table 3 device); ``hbm2``, ``ddr4-channel`` and ``nand-nmc`` span the
wide-interposer, commodity-channel and high-capacity/asymmetric corners
of the near-memory design space.  Registering a new backend extends the
``arch`` feature block (one extra one-hot column), so the active feature
schema is reset on every registry mutation — stale model artifacts and
campaign caches then fail loudly via the schema-hash machinery instead
of mispredicting silently.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..config import GIB, DRAMTiming, NMCEnergyParams
from .descriptor import BackendDescriptor, LinkParams

_REGISTRY: dict[str, BackendDescriptor] = {}


def _refresh_schema() -> None:
    # The arch feature block carries one one-hot column per registered
    # backend; any registry change invalidates the assembled schema.
    from .. import schema

    schema._reset_active_schema()


def register_backend(
    descriptor: BackendDescriptor, *, replace: bool = False
) -> BackendDescriptor:
    """Register one backend descriptor under its name.

    Re-registering an identical descriptor is a no-op; a *different*
    descriptor under an existing name raises :class:`ConfigError` unless
    ``replace=True`` (descriptor identity feeds caches and memos, so a
    silent swap would poison them).
    """
    descriptor.validate()
    existing = _REGISTRY.get(descriptor.name)
    if existing is not None and not replace:
        if existing == descriptor:
            return descriptor
        raise ConfigError(
            f"memory backend {descriptor.name!r} is already registered "
            "with different parameters; pass replace=True to override"
        )
    _REGISTRY[descriptor.name] = descriptor
    _refresh_schema()
    return descriptor


def get_backend(name: str) -> BackendDescriptor:
    """Look up a registered backend; unknown names raise ConfigError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names()) or "(none)"
        raise ConfigError(
            f"unknown memory backend {name!r}; registered backends: {known}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order.

    Registration order is the canonical column order of the
    ``arch.backend.*`` one-hot features — stable across processes
    because the shipped descriptors register at import time, in source
    order, before any user registration can run.
    """
    return tuple(_REGISTRY)


def backend_summaries() -> list[dict]:
    """CLI/manifest-ready summaries of every registered backend."""
    return [d.summary() for d in _REGISTRY.values()]


def _unregister_backend(name: str) -> None:
    """Remove a registered backend (test hook; resets the schema)."""
    _REGISTRY.pop(name, None)
    _refresh_schema()


# ------------------------------------------------------ shipped backends

#: Hybrid Memory Cube class 3D stack — the paper's Table 3 device and
#: the default everywhere.  Field values are exactly the pre-registry
#: ``NMCConfig``/``DRAMTiming``/``NMCEnergyParams`` defaults, which is
#: what keeps ``--backend hmc`` bit-identical to the old behaviour.
HMC = register_backend(BackendDescriptor(
    name="hmc",
    description="HMC-class 3D-stacked DRAM, 32 vaults, SerDes links",
    family="3d-stacked",
    n_vaults=32,
    n_layers=8,
    banks_per_vault=16,
    row_buffer_bytes=256,
    dram_bytes=4 * GIB,
    closed_row=True,
    timing=DRAMTiming(),
    energy=NMCEnergyParams(),
    link=LinkParams(),
))

#: HBM2-class 2.5D stack: wider, slower-clocked interposer interface
#: (no SerDes), larger rows, fewer independent channels than HMC vaults.
HBM2 = register_backend(BackendDescriptor(
    name="hbm2",
    description="HBM2-class stack on interposer: wide slow links, no SerDes",
    family="2.5d-stacked",
    n_vaults=16,            # pseudo-channels
    n_layers=4,
    banks_per_vault=16,
    row_buffer_bytes=1024,
    dram_bytes=8 * GIB,
    closed_row=True,
    timing=DRAMTiming(
        t_rcd_ns=14.0,
        t_cl_ns=14.0,
        t_rp_ns=14.0,
        t_ras_ns=33.0,
        t_bl_ns=3.2,        # 64 B burst over the wide legacy-mode bus
        hop_ns=3.2,
        row_linger_ns=25.0,
    ),
    energy=NMCEnergyParams(
        dram_activate_pj=1400.0,     # 1 KiB row
        dram_rw_pj_per_bit=3.9,
        link_pj_per_bit=0.6,         # short interposer wires, no SerDes
        dram_static_w=1.100,
    ),
    link=LinkParams(
        width_bits=1024,
        gbps=2.0,
        serdes=False,
        packet_overhead=0.02,
        setup_latency_s=2.0e-7,
    ),
))

#: Commodity DDR4 channels: few independent channels, big open rows,
#: an open-page controller (modelled as a long row-linger window).
DDR4_CHANNEL = register_backend(BackendDescriptor(
    name="ddr4-channel",
    description="DDR4-2400 memory channels: few channels, open-row policy",
    family="planar-dram",
    n_vaults=4,             # channels
    n_layers=1,
    banks_per_vault=16,
    row_buffer_bytes=8192,
    dram_bytes=16 * GIB,
    closed_row=False,
    timing=DRAMTiming(
        t_rcd_ns=14.16,
        t_cl_ns=14.16,
        t_rp_ns=14.16,
        t_ras_ns=32.0,
        t_bl_ns=13.3,       # 64 B over one 64-bit DDR4-2400 channel
        hop_ns=6.4,
        row_linger_ns=1000.0,   # open-page: rows stay open ~1 us
    ),
    energy=NMCEnergyParams(
        dram_activate_pj=2500.0,     # 8 KiB row
        dram_rw_pj_per_bit=4.6,
        link_pj_per_bit=6.0,         # board-level DDR I/O
        dram_static_w=2.500,
    ),
    link=LinkParams(
        width_bits=64,
        gbps=2.4,
        serdes=False,
        packet_overhead=0.05,
        setup_latency_s=5.0e-7,
    ),
))

#: NAND-flash-like NMC device: huge capacity, page-buffer "rows",
#: microsecond reads and strongly asymmetric (program) writes.
NAND_NMC = register_backend(BackendDescriptor(
    name="nand-nmc",
    description=(
        "NAND-flash-class NMC: high capacity, us-scale reads, "
        "asymmetric program writes"
    ),
    family="nand-flash",
    n_vaults=8,             # channels
    n_layers=1,
    banks_per_vault=4,      # dies (planes) per channel
    row_buffer_bytes=16384,
    dram_bytes=64 * GIB,
    closed_row=False,
    timing=DRAMTiming(
        t_rcd_ns=3000.0,    # tR: array -> page buffer
        t_cl_ns=100.0,
        t_rp_ns=50.0,
        t_ras_ns=3000.0,
        t_bl_ns=50.0,
        hop_ns=10.0,
        row_linger_ns=10000.0,  # the page buffer acts as a long-lived row
        t_wr_extra_ns=30000.0,  # SLC-mode program penalty on writes
    ),
    energy=NMCEnergyParams(
        dram_activate_pj=30000.0,    # 16 KiB page sense
        dram_rw_pj_per_bit=8.0,
        dram_wr_extra_pj_per_bit=40.0,   # program >> read energy
        link_pj_per_bit=2.0,
        dram_static_w=0.200,
    ),
    link=LinkParams(
        width_bits=8,
        gbps=12.0,
        serdes=True,
        packet_overhead=0.12,
        setup_latency_s=2.0e-6,
    ),
))
