"""Memory backend descriptors and registry (``repro.backends``).

Device identity — topology, DRAM timing, energy constants and the
off-chip link — lives here as frozen, name-keyed
:class:`BackendDescriptor` instances instead of constants baked into
:class:`~repro.config.NMCConfig`.  Four backends ship:

========== =============================================================
``hmc``          HMC-class 3D stack (Table 3 defaults; bit-identical to
                 the pre-registry simulator)
``hbm2``         HBM2-class stack: wide slow interposer links, no SerDes
``ddr4-channel`` commodity DDR4 channels, open-row policy
``nand-nmc``     NAND-flash-like: high capacity/latency, asymmetric
                 read/write
========== =============================================================

Select one with ``NMCConfig.from_backend(name)``, the campaign/train/
suitability ``--backend`` flag, or the ``backend=`` knob of the DSE
spaces; list them with ``repro backends``.
"""

from .descriptor import FAMILIES, BackendDescriptor, LinkParams
from .registry import (
    DDR4_CHANNEL,
    HBM2,
    HMC,
    NAND_NMC,
    backend_names,
    backend_summaries,
    get_backend,
    register_backend,
)

__all__ = [
    "FAMILIES",
    "BackendDescriptor",
    "LinkParams",
    "HMC",
    "HBM2",
    "DDR4_CHANNEL",
    "NAND_NMC",
    "backend_names",
    "backend_summaries",
    "get_backend",
    "register_backend",
]
