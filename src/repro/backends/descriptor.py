"""Backend descriptors: the declarative identity of one memory device.

A :class:`BackendDescriptor` bundles everything that makes a near-memory
device *that device* — topology (vaults/layers/banks for a 3D stack,
channels/ranks for planar parts), :class:`~repro.config.DRAMTiming`,
:class:`~repro.config.NMCEnergyParams` and the off-chip
:class:`LinkParams` — while the compute side (PE count, clock, cache
geometry) stays on :class:`~repro.config.NMCConfig` where DoE sweeps
live.  Descriptors are frozen: a registered backend never mutates, so
campaign caches and simulation memos may key on its name.

The split follows the dataclass-config idiom of NandMachine-style
simulators: one schema module defines the per-device parameter
dataclasses, a registry maps names to concrete instances, and the rest
of the system consumes descriptor fields instead of device constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from ..config import DRAMTiming, NMCEnergyParams
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..config import NMCConfig

#: Device families a descriptor may declare (feeds docs and reports, not
#: simulation semantics — those flow entirely through the field values).
FAMILIES = ("3d-stacked", "2.5d-stacked", "planar-dram", "nand-flash")


@dataclass(frozen=True)
class LinkParams:
    """Off-chip host<->device link model of one backend.

    ``width_bits`` x ``gbps`` gives the raw one-direction bandwidth;
    ``packet_overhead`` is the fraction lost to protocol framing and
    ``setup_latency_s`` the one-time offload round trip.  ``serdes``
    records whether the link crosses a serializer (HMC-style packetised
    lanes) or a wide parallel interface (HBM interposer, DDR bus) — it
    feeds the arch feature block and reports, not timing.
    """

    width_bits: int = 16
    gbps: float = 15.0
    serdes: bool = True
    packet_overhead: float = 0.10
    setup_latency_s: float = 1.0e-6

    @property
    def gbytes_per_s(self) -> float:
        """Raw one-direction link bandwidth (GB/s)."""
        return self.width_bits * self.gbps / 8.0

    def validate(self) -> None:
        if self.width_bits < 1 or self.gbps <= 0:
            raise ConfigError("link width and lane speed must be positive")
        if not 0.0 <= self.packet_overhead < 1.0:
            raise ConfigError("link packet_overhead must be in [0, 1)")
        if self.setup_latency_s < 0:
            raise ConfigError("link setup_latency_s must be >= 0")


@dataclass(frozen=True)
class BackendDescriptor:
    """One registered memory backend: topology + timing + energy + link.

    ``n_vaults`` is the unit of bank-level parallelism the address hash
    interleaves over — vaults for a 3D stack, (pseudo-)channels for HBM,
    DDR or NAND parts; ``n_layers`` is 1 for planar devices.
    """

    name: str
    description: str
    family: str = "3d-stacked"
    n_vaults: int = 32
    n_layers: int = 8
    banks_per_vault: int = 16
    row_buffer_bytes: int = 256
    dram_bytes: int = 4 * 1024**3
    closed_row: bool = True
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    energy: NMCEnergyParams = field(default_factory=NMCEnergyParams)
    link: LinkParams = field(default_factory=LinkParams)

    @property
    def rw_asymmetry(self) -> float:
        """Extra write latency relative to a closed-row read access.

        0 for symmetric devices (DRAM-class); > 0 when writes pay a
        program penalty (``DRAMTiming.t_wr_extra_ns``, NAND-class).
        """
        return self.timing.t_wr_extra_ns / self.timing.closed_row_access_ns()

    def validate(self) -> None:
        """Descriptor self-consistency (checked at registration)."""
        if not self.name:
            raise ConfigError("backend descriptor needs a non-empty name")
        if self.family not in FAMILIES:
            raise ConfigError(
                f"backend {self.name!r} family must be one of "
                f"{', '.join(FAMILIES)}"
            )
        if self.n_vaults < 1 or self.n_layers < 1 or self.banks_per_vault < 1:
            raise ConfigError(
                f"backend {self.name!r}: topology fields must be >= 1"
            )
        if self.row_buffer_bytes < 1 or (
            self.row_buffer_bytes & (self.row_buffer_bytes - 1)
        ):
            raise ConfigError(
                f"backend {self.name!r}: row_buffer_bytes must be a "
                "positive power of two"
            )
        if self.dram_bytes < self.n_vaults * self.row_buffer_bytes:
            raise ConfigError(
                f"backend {self.name!r}: dram_bytes too small for the "
                "vault/channel organisation"
            )
        self.timing.validate()
        self.energy.validate()
        self.link.validate()

    def validate_config(self, config: "NMCConfig") -> None:
        """Device-level validation of a config built on this backend.

        The per-descriptor home of the DRAM-organisation rules that used
        to live in ``NMCConfig.validate`` — a backend may constrain the
        device fields beyond the generic checks by subclassing.
        """
        if (
            config.n_vaults < 1
            or config.n_layers < 1
            or config.banks_per_vault < 1
        ):
            raise ConfigError("DRAM organisation fields must be >= 1")
        if config.dram_bytes < config.n_vaults * config.row_buffer_bytes:
            raise ConfigError("dram_bytes too small for vault organisation")
        if config.link_width_bits < 1 or config.link_gbps <= 0:
            raise ConfigError("link parameters must be positive")
        config.timing.validate()
        config.energy.validate()

    def to_config(self, **overrides: object) -> "NMCConfig":
        """Build an :class:`~repro.config.NMCConfig` on this backend.

        Device fields default to the descriptor's values; compute-side
        fields keep the ``NMCConfig`` defaults.  Any field may be
        overridden (that is what DoE sweeps over a backend do).
        """
        from ..config import NMCConfig

        base: dict[str, object] = dict(
            backend=self.name,
            n_vaults=self.n_vaults,
            n_layers=self.n_layers,
            banks_per_vault=self.banks_per_vault,
            row_buffer_bytes=self.row_buffer_bytes,
            dram_bytes=self.dram_bytes,
            closed_row=self.closed_row,
            link_width_bits=self.link.width_bits,
            link_gbps=self.link.gbps,
            timing=self.timing,
            energy=self.energy,
        )
        base.update(overrides)
        cfg = NMCConfig(**base)  # type: ignore[arg-type]
        cfg.validate()
        return cfg

    def summary(self) -> dict:
        """Manifest/CLI-ready description of this backend."""
        return {
            "name": self.name,
            "description": self.description,
            "family": self.family,
            "topology": (
                f"{self.n_vaults}x{self.n_layers}x{self.banks_per_vault}"
            ),
            "row_buffer_bytes": self.row_buffer_bytes,
            "capacity_gib": self.dram_bytes / 1024**3,
            "row_policy": "closed" if self.closed_row else "open",
            "link_gbytes_per_s": self.link.gbytes_per_s,
            "serdes": self.link.serdes,
            "rw_asymmetry": self.rw_asymmetry,
        }

    def to_json_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)

    def replace(self, **changes: object) -> "BackendDescriptor":
        """A validated copy with the given fields replaced."""
        import dataclasses

        desc = dataclasses.replace(self, **changes)  # type: ignore[arg-type]
        desc.validate()
        return desc


def _descriptor_field_names() -> tuple[str, ...]:
    return tuple(f.name for f in fields(BackendDescriptor))
