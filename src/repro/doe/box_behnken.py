"""Box-Behnken design — the classic three-level alternative to CCD.

Box-Behnken designs estimate the same quadratic response surface as CCD
without any corner or extreme points: runs sit at the midpoints of the
parameter-space edges (every pair of parameters at low/high, the rest
central) plus centre replicates.  Useful when the extreme corner
configurations are expensive or invalid — at the cost of never observing
the extremes, which is exactly the trade-off the DoE ablation can expose.
"""

from __future__ import annotations

import itertools

from ..errors import DoEError
from .space import ParameterSpace


def box_behnken(
    space: ParameterSpace, *, center_replicates: int | None = None
) -> list[dict[str, float]]:
    """The Box-Behnken configurations of a parameter space.

    For ``k`` parameters: ``4 * C(k, 2)`` edge-midpoint runs plus
    ``center_replicates`` centre runs (default ``2k - 1``, matching our
    CCD convention).  Requires ``k >= 2``.
    """
    k = len(space)
    if k < 2:
        raise DoEError("Box-Behnken needs at least two parameters")
    if center_replicates is None:
        center_replicates = 2 * k - 1
    if center_replicates < 1:
        raise DoEError("center_replicates must be >= 1")
    configs: list[dict[str, float]] = []
    names = space.names
    for a, b in itertools.combinations(range(k), 2):
        for la, lb in itertools.product(("low", "high"), repeat=2):
            configs.append(
                space.config_at({names[a]: la, names[b]: lb})
            )
    for _ in range(center_replicates):
        configs.append(space.central())
    return configs


def box_behnken_run_count(n_parameters: int) -> int:
    """Number of Box-Behnken runs: 4*C(k,2) + (2k-1)."""
    if n_parameters < 2:
        raise DoEError("Box-Behnken needs at least two parameters")
    k = n_parameters
    return 4 * (k * (k - 1) // 2) + (2 * k - 1)
