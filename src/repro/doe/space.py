"""Parameter spaces for design of experiments.

A :class:`ParameterSpace` wraps the DoE parameters of a workload (paper
Table 2): each parameter has five levels — *minimum, low, central, high,
maximum* — and the space knows how to produce configurations (name -> value
dicts) at requested level combinations or at arbitrary interpolated points.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import DoEError
from ..workloads.base import DoEParameter, LEVEL_NAMES


class ParameterSpace:
    """An ordered collection of DoE parameters with five levels each."""

    def __init__(self, parameters: Sequence[DoEParameter]) -> None:
        if not parameters:
            raise DoEError("a parameter space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise DoEError(f"duplicate parameter names: {names}")
        self.parameters = tuple(parameters)

    @classmethod
    def of_workload(cls, workload) -> "ParameterSpace":
        """The DoE space of a :class:`~repro.workloads.Workload`."""
        return cls(workload.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    def parameter(self, name: str) -> DoEParameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise DoEError(f"unknown parameter {name!r}")

    # -------------------------------------------------------------- levels

    def config_at(self, levels: Mapping[str, str]) -> dict[str, float]:
        """Configuration with each parameter at a named level.

        ``levels`` maps parameter name -> level name; omitted parameters
        default to their *central* level.
        """
        unknown = set(levels) - set(self.names)
        if unknown:
            raise DoEError(f"unknown parameters in levels: {sorted(unknown)}")
        config: dict[str, float] = {}
        for p in self.parameters:
            level = levels.get(p.name, "central")
            if level not in LEVEL_NAMES:
                raise DoEError(f"unknown level {level!r} for {p.name!r}")
            config[p.name] = p.level(level)
        return config

    def central(self) -> dict[str, float]:
        return self.config_at({})

    # -------------------------------------------------- continuous mapping

    def from_unit(self, point: Sequence[float]) -> dict[str, float]:
        """Map a point in the unit hypercube [0,1]^k into the space.

        0 maps to the *minimum* level and 1 to the *maximum*; intermediate
        coordinates interpolate linearly between min and max.  Used by the
        Latin-hypercube and random baselines.
        """
        if len(point) != len(self.parameters):
            raise DoEError(
                f"point has {len(point)} coordinates, expected {len(self.parameters)}"
            )
        config: dict[str, float] = {}
        for p, u in zip(self.parameters, point):
            if not 0.0 <= u <= 1.0:
                raise DoEError(f"unit coordinate {u} outside [0, 1]")
            config[p.name] = p.minimum + u * (p.maximum - p.minimum)
        return config

    def grid(self, level_names: Iterable[str]) -> list[dict[str, float]]:
        """Cartesian product of the given levels over all parameters."""
        level_names = list(level_names)
        for level in level_names:
            if level not in LEVEL_NAMES:
                raise DoEError(f"unknown level {level!r}")
        configs: list[dict[str, float]] = [{}]
        for p in self.parameters:
            configs = [
                {**c, p.name: p.level(level)}
                for c in configs
                for level in level_names
            ]
        return configs

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> list[dict[str, float]]:
        """``n`` uniform random configurations within [minimum, maximum]."""
        if n < 0:
            raise DoEError("sample size must be >= 0")
        points = rng.random((n, len(self.parameters)))
        return [self.from_unit(row) for row in points]


def cross_backends(
    configs: Sequence[Mapping[str, float]],
    backends: Sequence[str],
) -> list[tuple[str, dict[str, float]]]:
    """Cross a design with a categorical memory-backend factor.

    Returns ``(backend_name, config)`` pairs: the full design replicated
    once per backend, in backend order — the categorical analogue of a
    full-factorial crossing.  Backend names are validated against the
    registry (:func:`repro.backends.get_backend`), so a typo fails here
    rather than deep inside a campaign.
    """
    from ..backends import get_backend

    if not backends:
        raise DoEError("cross_backends needs at least one backend")
    if len(set(backends)) != len(backends):
        raise DoEError(f"duplicate backends: {list(backends)}")
    for name in backends:
        get_backend(name)  # raises ConfigError with the known names
    return [
        (name, dict(config)) for name in backends for config in configs
    ]
