"""Uniform random design (naive baseline for the DoE ablation)."""

from __future__ import annotations

import numpy as np

from .space import ParameterSpace


def random_design(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """``n`` configurations drawn uniformly from the space's full range."""
    return space.sample(n, rng)
