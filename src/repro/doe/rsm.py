"""Response-surface methodology: the classical analysis of a CCD.

CCD exists to fit a quadratic response surface (paper Section 2.4: "a
nonlinear polynomial model that accounts for parameter interactions").
:class:`ResponseSurface` performs that fit over campaign results —
intercept, linear, interaction and square terms in the coded (unit-cube)
parameter space — and reports R², coefficients and the surface's
stationary point.  It doubles as a classical white-box baseline against
NAPEL's random forest and as a diagnostic for how nonlinear a workload's
response actually is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import DoEError
from .doptimal import quadratic_basis
from .space import ParameterSpace


@dataclass
class ResponseSurface:
    """A fitted quadratic response surface over a parameter space."""

    space: ParameterSpace
    coef_: np.ndarray | None = None
    r2_: float = 0.0
    term_names_: tuple[str, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------ coding

    def _encode(self, configs: Sequence[Mapping[str, float]]) -> np.ndarray:
        """Map configurations into the unit cube."""
        rows = []
        for cfg in configs:
            row = []
            for p in self.space.parameters:
                span = p.maximum - p.minimum
                if span <= 0:
                    raise DoEError(f"parameter {p.name!r} has zero range")
                row.append((float(cfg[p.name]) - p.minimum) / span)
            rows.append(row)
        return np.asarray(rows, dtype=np.float64)

    def _terms(self) -> tuple[str, ...]:
        names = ["1"]
        params = self.space.names
        names.extend(params)
        k = len(params)
        for i in range(k):
            for j in range(i + 1, k):
                names.append(f"{params[i]}*{params[j]}")
        names.extend(f"{p}^2" for p in params)
        return tuple(names)

    # --------------------------------------------------------------- fit

    def fit(
        self, configs: Sequence[Mapping[str, float]], y
    ) -> "ResponseSurface":
        """Least-squares fit of the quadratic surface to (configs, y)."""
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(configs) != len(y):
            raise DoEError("configs and y must align")
        if len(y) == 0:
            raise DoEError("cannot fit an empty response")
        X = quadratic_basis(self._encode(configs))
        if len(y) < X.shape[1]:
            raise DoEError(
                f"{len(y)} runs cannot identify {X.shape[1]} quadratic "
                f"terms; use a design with more points (CCD provides "
                f"exactly enough)"
            )
        coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        self.coef_ = coef
        residual = y - X @ coef
        sst = float(np.sum((y - y.mean()) ** 2))
        self.r2_ = 1.0 - float(np.sum(residual**2)) / sst if sst > 0 else 1.0
        self.term_names_ = self._terms()
        return self

    def predict(self, configs: Sequence[Mapping[str, float]]) -> np.ndarray:
        if self.coef_ is None:
            raise DoEError("response surface is not fitted")
        return quadratic_basis(self._encode(configs)) @ self.coef_

    # ---------------------------------------------------------- analysis

    def coefficients(self) -> dict[str, float]:
        """Term name -> fitted coefficient (coded space)."""
        if self.coef_ is None:
            raise DoEError("response surface is not fitted")
        return dict(zip(self.term_names_, self.coef_.tolist()))

    def curvature(self) -> dict[str, float]:
        """Square-term coefficients: the response's per-parameter curvature.

        Large values relative to the linear terms are the nonlinearity CCD's
        axial points exist to capture — and the reason linear models (the
        Guo et al. baseline) fail on this problem (paper Section 3.3).
        """
        coeffs = self.coefficients()
        return {
            p: coeffs[f"{p}^2"] for p in self.space.names
        }

    def nonlinearity_ratio(self) -> float:
        """|curvature| mass relative to |linear| mass (0 = purely linear)."""
        coeffs = self.coefficients()
        linear = sum(abs(coeffs[p]) for p in self.space.names)
        square = sum(abs(v) for v in self.curvature().values())
        if linear == 0:
            return float("inf") if square > 0 else 0.0
        return square / linear
