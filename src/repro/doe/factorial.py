"""Full-factorial designs (brute-force baseline).

The traditional approach to collecting training data that the paper's DoE
replaces: every combination of the requested levels.  Used by the DoE
ablation benchmark to show how CCD matches factorial coverage at a fraction
of the simulation cost.
"""

from __future__ import annotations

from ..errors import DoEError
from ..workloads.base import LEVEL_NAMES
from .space import ParameterSpace


def full_factorial(
    space: ParameterSpace, levels: tuple[str, ...] = LEVEL_NAMES
) -> list[dict[str, float]]:
    """Every combination of the given named levels (default: all five).

    For ``k`` parameters and ``m`` levels this is ``m^k`` configurations —
    the intractable brute-force sweep motivating DoE (paper Section 2.4).
    """
    if not levels:
        raise DoEError("full factorial needs at least one level")
    return space.grid(levels)
