"""D-optimal design via greedy Fedorov exchange.

Joseph et al. [18] and Mariani et al. [25] (paper Table 5) gather training
data with D-optimal designs: select the ``n`` candidate points whose model
matrix ``X`` maximises ``det(X^T X)`` — minimising the generalised variance
of the coefficient estimates of an assumed regression model.

The model basis here is the full quadratic response surface (intercept,
linear, interaction and square terms) — the same nonlinear-polynomial
model CCD is built to estimate (paper Section 2.4), which makes the two
designs directly comparable in the DoE ablation.
"""

from __future__ import annotations

import numpy as np

from ..errors import DoEError
from .space import ParameterSpace


def quadratic_basis(points: np.ndarray) -> np.ndarray:
    """Quadratic response-surface model matrix for unit-cube points.

    Columns: 1, x_i, x_i * x_j (i < j), x_i^2.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise DoEError("points must be a 2-D array")
    n, k = points.shape
    cols = [np.ones(n)]
    for i in range(k):
        cols.append(points[:, i])
    for i in range(k):
        for j in range(i + 1, k):
            cols.append(points[:, i] * points[:, j])
    for i in range(k):
        cols.append(points[:, i] ** 2)
    return np.stack(cols, axis=1)


def _log_det(information: np.ndarray) -> float:
    sign, logdet = np.linalg.slogdet(information)
    return logdet if sign > 0 else -np.inf


def d_optimal(
    space: ParameterSpace,
    n: int,
    rng: np.random.Generator,
    *,
    n_candidates: int = 512,
    ridge: float = 1e-8,
) -> list[dict[str, float]]:
    """``n`` D-optimal configurations from a random candidate pool.

    Greedy forward selection followed by Fedorov exchange passes: swap a
    selected point for a candidate whenever the swap increases
    ``log det(X^T X + ridge I)``, until no swap improves.
    """
    if n < 1:
        raise DoEError("d_optimal needs at least one point")
    k = len(space)
    # Candidate pool: random points plus the corners/centre (good support
    # for quadratic models).
    pool = [rng.random(k) for _ in range(n_candidates)]
    for corner in range(2**min(k, 10)):
        pool.append(
            np.array([(corner >> b) & 1 for b in range(k)], dtype=float)
        )
    pool.append(np.full(k, 0.5))
    candidates = np.clip(np.asarray(pool), 0.0, 1.0)
    basis = quadratic_basis(candidates)
    p = basis.shape[1]
    eye = ridge * np.eye(p)

    # Greedy forward selection.
    selected: list[int] = []
    info = eye.copy()
    for _ in range(n):
        best_gain, best_idx = -np.inf, -1
        base_det = _log_det(info)
        for idx in range(len(candidates)):
            if idx in selected:
                continue
            row = basis[idx][:, None]
            gain = _log_det(info + row @ row.T) - base_det
            if gain > best_gain:
                best_gain, best_idx = gain, idx
        selected.append(best_idx)
        row = basis[best_idx][:, None]
        info = info + row @ row.T

    # Fedorov exchange passes.
    improved = True
    passes = 0
    while improved and passes < 5:
        improved = False
        passes += 1
        for pos in range(n):
            current = _log_det(info)
            out_row = basis[selected[pos]][:, None]
            without = info - out_row @ out_row.T
            best_gain, best_idx = 0.0, -1
            for idx in range(len(candidates)):
                if idx in selected:
                    continue
                in_row = basis[idx][:, None]
                gain = _log_det(without + in_row @ in_row.T) - current
                if gain > best_gain + 1e-12:
                    best_gain, best_idx = gain, idx
            if best_idx >= 0:
                in_row = basis[best_idx][:, None]
                info = without + in_row @ in_row.T
                selected[pos] = best_idx
                improved = True

    return [space.from_unit(candidates[idx]) for idx in selected]
