"""Latin hypercube sampling (related-work baseline, cf. paper Table 5).

Li et al. [24] use Latin hypercube sampling for CPU design-space
exploration; we provide it as a DoE baseline for the ablation benchmark.
Each of the ``n`` samples occupies its own row and column of the
stratified unit grid, guaranteeing one-dimensional uniformity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DoEError
from .space import ParameterSpace


def latin_hypercube(
    space: ParameterSpace,
    n: int,
    rng: np.random.Generator,
    *,
    backends: Sequence[str] | None = None,
) -> list[dict[str, float]] | list[tuple[str, dict[str, float]]]:
    """``n`` Latin-hypercube configurations over the space's full range.

    ``backends`` treats the memory backend as a categorical LHS factor:
    each backend is assigned to ``n / len(backends)`` samples (±1, the
    stratification of a categorical dimension) and the assignment is
    randomly permuted.  The continuous coordinates are generated first,
    so the configs are identical with and without ``backends`` for the
    same ``rng`` state; the return value becomes ``(backend, config)``
    pairs.
    """
    if n < 1:
        raise DoEError("latin hypercube needs at least one sample")
    k = len(space)
    # Stratified samples: one per cell per dimension, randomly permuted.
    cut = np.linspace(0.0, 1.0, n + 1)
    u = rng.random((n, k))
    points = cut[:n, None] + u * (1.0 / n)
    for dim in range(k):
        points[:, dim] = points[rng.permutation(n), dim]
    configs = [space.from_unit(row) for row in points]
    if backends is None:
        return configs
    from ..backends import get_backend

    if not backends:
        raise DoEError("latin hypercube backends must be non-empty")
    for name in backends:
        get_backend(name)
    # Balanced categorical stratification: round-robin, then permute.
    assigned = [backends[i % len(backends)] for i in range(n)]
    order = rng.permutation(n)
    return [(assigned[order[i]], configs[i]) for i in range(n)]
