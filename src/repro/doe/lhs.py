"""Latin hypercube sampling (related-work baseline, cf. paper Table 5).

Li et al. [24] use Latin hypercube sampling for CPU design-space
exploration; we provide it as a DoE baseline for the ablation benchmark.
Each of the ``n`` samples occupies its own row and column of the
stratified unit grid, guaranteeing one-dimensional uniformity.
"""

from __future__ import annotations

import numpy as np

from ..errors import DoEError
from .space import ParameterSpace


def latin_hypercube(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """``n`` Latin-hypercube configurations over the space's full range."""
    if n < 1:
        raise DoEError("latin hypercube needs at least one sample")
    k = len(space)
    # Stratified samples: one per cell per dimension, randomly permuted.
    cut = np.linspace(0.0, 1.0, n + 1)
    u = rng.random((n, k))
    points = cut[:n, None] + u * (1.0 / n)
    for dim in range(k):
        points[:, dim] = points[rng.permutation(n), dim]
    return [space.from_unit(row) for row in points]
