"""Box-Wilson central composite design (CCD) — paper Section 2.4.

For ``k`` parameters with five levels each (*minimum, low, central, high,
maximum*), the design consists of:

* **factorial corners** — every combination of *low* and *high* (2^k points,
  the corners of the inner square in paper Figure 3);
* **axial (star) points** — one parameter at *minimum* or *maximum*, all
  others *central* (2k points on the circumscribed sphere);
* **centre replicates** — the all-*central* configuration, replicated
  ``2k - 1`` times.

The replicate count reproduces the paper's Table 4 run counts exactly:
k=2 -> 11, k=3 -> 19, k=4 -> 31.  (Centre replicates estimate pure error in
classical response-surface methodology; with a deterministic simulator they
are simulated with distinct seeds.)
"""

from __future__ import annotations

from typing import Sequence

from ..errors import DoEError
from .space import ParameterSpace, cross_backends


def ccd_run_count(n_parameters: int) -> int:
    """Number of CCD runs for ``n_parameters`` (2^k + 2k + (2k-1))."""
    if n_parameters < 1:
        raise DoEError("CCD needs at least one parameter")
    k = n_parameters
    return 2**k + 2 * k + (2 * k - 1)


def central_composite(
    space: ParameterSpace,
    *,
    center_replicates: int | None = None,
    backends: Sequence[str] | None = None,
) -> list[dict[str, float]] | list[tuple[str, dict[str, float]]]:
    """The CCD configurations of a parameter space, in canonical order.

    Order: factorial corners (low/high grid), axial points (per parameter:
    minimum then maximum), centre replicates.  ``center_replicates``
    defaults to ``2k - 1`` (see module docstring).

    ``backends`` adds the memory backend as a categorical design factor:
    the CCD is crossed with each named backend and the return value
    becomes ``(backend_name, config)`` pairs (see
    :func:`~repro.doe.space.cross_backends`).
    """
    k = len(space)
    if center_replicates is None:
        center_replicates = 2 * k - 1
    if center_replicates < 1:
        raise DoEError("center_replicates must be >= 1")

    configs: list[dict[str, float]] = []
    # Factorial corners: every low/high combination.
    configs.extend(space.grid(["low", "high"]))
    # Axial points: one parameter at its extreme, the rest central.
    for p in space.parameters:
        for level in ("minimum", "maximum"):
            configs.append(space.config_at({p.name: level}))
    # Centre replicates.
    for _ in range(center_replicates):
        configs.append(space.central())
    if backends is not None:
        return cross_backends(configs, backends)
    return configs
