"""Design of experiments (DoE) — paper Section 2.4.

The central piece is the Box-Wilson :func:`central_composite` design (CCD)
used by NAPEL to pick the application-input configurations to simulate for
training data.  Full-factorial, Latin-hypercube and uniform-random designs
are provided as baselines for the DoE ablation benchmarks.
"""

from .space import ParameterSpace, cross_backends
from .box_behnken import box_behnken, box_behnken_run_count
from .ccd import central_composite, ccd_run_count
from .doptimal import d_optimal, quadratic_basis
from .factorial import full_factorial
from .lhs import latin_hypercube
from .random_sampling import random_design
from .rsm import ResponseSurface

__all__ = [
    "ParameterSpace",
    "cross_backends",
    "central_composite",
    "ccd_run_count",
    "box_behnken",
    "box_behnken_run_count",
    "d_optimal",
    "quadratic_basis",
    "full_factorial",
    "latin_hypercube",
    "random_design",
    "ResponseSurface",
]
