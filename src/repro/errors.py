"""Exception hierarchy for the NAPEL reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch framework errors without accidentally swallowing unrelated
Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError):
    """An architecture or framework configuration is invalid."""


class TraceError(ReproError):
    """A dynamic instruction trace is malformed or inconsistent."""


class WorkloadError(ReproError):
    """A workload was given invalid parameters or failed to generate."""


class DoEError(ReproError):
    """A design-of-experiments request is invalid (bad levels, bad space)."""


class MLError(ReproError):
    """A machine-learning model was misused (unfitted, shape mismatch...)."""


class NotFittedError(MLError):
    """Prediction was requested from a model that has not been fitted."""


class SchemaMismatchError(MLError):
    """Feature data does not match the feature schema it is used against.

    Carries the offending column names so callers (and error messages) can
    say precisely *which* features are ``missing`` from the data, which are
    ``extra``, and which ``moved`` to a different position.
    """

    def __init__(
        self,
        message: str,
        *,
        missing: tuple = (),
        extra: tuple = (),
        moved: tuple = (),
    ) -> None:
        super().__init__(message)
        self.missing = tuple(missing)
        self.extra = tuple(extra)
        self.moved = tuple(moved)


class SimulationError(ReproError):
    """The NMC or host simulator encountered an inconsistent state."""


class CampaignError(ReproError):
    """A simulation campaign (DoE data gathering) failed."""


class ParallelError(ReproError):
    """A parallel job failed in a worker (carries the job's context)."""


class TracingError(ReproError):
    """An event-trace file is malformed, or the tracer was misused."""
