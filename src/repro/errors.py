"""Exception hierarchy for the NAPEL reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch framework errors without accidentally swallowing unrelated
Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigError(ReproError):
    """An architecture or framework configuration is invalid."""


class TraceError(ReproError):
    """A dynamic instruction trace is malformed or inconsistent."""


class WorkloadError(ReproError):
    """A workload was given invalid parameters or failed to generate."""


class DoEError(ReproError):
    """A design-of-experiments request is invalid (bad levels, bad space)."""


class MLError(ReproError):
    """A machine-learning model was misused (unfitted, shape mismatch...)."""


class NotFittedError(MLError):
    """Prediction was requested from a model that has not been fitted."""


class SimulationError(ReproError):
    """The NMC or host simulator encountered an inconsistent state."""


class CampaignError(ReproError):
    """A simulation campaign (DoE data gathering) failed."""


class ParallelError(ReproError):
    """A parallel job failed in a worker (carries the job's context)."""
