"""Analytical out-of-order host core model (POWER9 analog).

A first-order mechanistic model in the style of interval analysis:

* **compute**: instructions retire at ``min(issue_width, ILP)`` per cycle,
  with long-latency FP divides serialising their share;
* **cache stalls**: L2/L3 hits add their access latency, discounted by the
  out-of-order window's ability to overlap them;
* **DRAM**: off-chip misses cost the DRAM latency divided by the effective
  memory-level parallelism (MLP).  Regular, stride-predictable streams are
  prefetched (high effective MLP); irregular or dependent access chains are
  not — this is the mechanism that separates host-friendly PolyBench
  streams from NMC-friendly irregular kernels in Figure 7;
* **bandwidth**: total DRAM traffic is bounded by the sustained DDR4
  bandwidth, shared by all threads;
* **SMT**: threads beyond one per core add diminishing throughput.

All inputs come from the hardware-independent application profile — the
host model never sees the raw trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HostConfig, default_host_config
from ..errors import SimulationError
from ..profiler import ApplicationProfile
from .cache_hierarchy import CacheHierarchyModel

#: Incremental throughput of the 2nd..4th SMT thread on a core.
SMT_GAIN = (1.0, 0.45, 0.25, 0.15)

#: Fraction of cache-hit latency the OoO window hides.
L2_OVERLAP = 0.75
L3_OVERLAP = 0.60

#: Cross-core line ping-pong cost of one contended atomic (ns).
ATOMIC_PINGPONG_NS = 15.0


@dataclass(frozen=True)
class HostResult:
    """Host execution estimate for one kernel profile."""

    workload: str
    instructions: int
    threads: int
    time_s: float
    compute_time_s: float
    memory_time_s: float
    bandwidth_time_s: float
    dram_accesses: float
    power_w: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s), the Figure 7 metric."""
        return self.energy_j * self.time_s

    @property
    def gips(self) -> float:
        """Aggregate throughput in giga-instructions per second."""
        return self.instructions / self.time_s * 1e-9


class HostSimulator:
    """Estimates host execution time and energy from a profile."""

    def __init__(self, config: HostConfig | None = None) -> None:
        self.config = config or default_host_config()
        self.config.validate()
        self.hierarchy = CacheHierarchyModel(self.config)

    # ------------------------------------------------------------ pieces

    def _parallel_throughput(self, threads: int) -> float:
        """Aggregate core-throughput multiplier for ``threads`` threads."""
        cfg = self.config
        cores = min(threads, cfg.n_cores)
        throughput = float(cores)
        extra = threads - cores
        smt_level = 1
        while extra > 0 and smt_level < cfg.smt:
            batch = min(extra, cfg.n_cores)
            throughput += batch * SMT_GAIN[min(smt_level, len(SMT_GAIN) - 1)]
            extra -= batch
            smt_level += 1
        return throughput

    def _effective_mlp(self, profile: ApplicationProfile) -> float:
        """Memory-level parallelism the core+prefetchers achieve.

        Only accesses that are both stride-*predictable* and have a *small*
        stride (<= 4 elements = 32 B; larger strides cross pages quickly and
        hardware prefetchers do not follow them) enjoy the prefetcher's MLP.
        The remaining accesses overlap up to the core's miss-handling limit
        (``max_mlp`` outstanding misses).
        """
        cfg = self.config
        prefetchable = min(
            profile["stride.regular_read"], profile["stride.frac_le_4"]
        )
        # Harmonic blend: total stall time is the sum of each class's
        # misses divided by that class's parallelism, so the effective MLP
        # is the harmonic, not arithmetic, mixture.
        return 1.0 / (
            prefetchable / cfg.prefetch_mlp
            + (1.0 - prefetchable) / cfg.max_mlp
        )

    # -------------------------------------------------------------- main

    def evaluate(
        self,
        profile: ApplicationProfile,
        *,
        threads: int | None = None,
    ) -> HostResult:
        """Estimate host time/energy for a kernel profile.

        ``threads`` defaults to the software thread count recorded in the
        profile (the kernel's own decomposition).
        """
        cfg = self.config
        n = profile.instruction_count
        if n <= 0:
            raise SimulationError("profile has no instructions")
        threads = threads or profile.thread_count
        threads = max(1, min(threads, cfg.hardware_threads))

        freq_hz = cfg.frequency_ghz * 1e9
        throughput = self._parallel_throughput(threads)

        # ---- compute component -----------------------------------------
        ilp = max(0.5, profile["ilp.window_256"])
        retire_rate = min(float(cfg.issue_width), ilp)
        div_frac = profile["mix.fp_div"] + profile["mix.int_div"]
        cpi = 1.0 / retire_rate + div_frac * 8.0  # divides serialise
        compute_cycles = n * cpi
        compute_time = compute_cycles / (freq_hz * throughput)

        # ---- cache / memory latency component ---------------------------
        mem_ops = n * profile["mix.mem_all"]
        levels = self.hierarchy.level_traffic(profile)
        l2_stall = levels.l2_hit * cfg.l2_latency_cycles * (1 - L2_OVERLAP)
        l3_stall = levels.l3_hit * cfg.l3_latency_cycles * (1 - L3_OVERLAP)
        cache_cycles = mem_ops * (l2_stall + l3_stall)
        dram_accesses = mem_ops * levels.dram
        mlp = self._effective_mlp(profile)
        dram_time = dram_accesses * cfg.dram_latency_ns * 1e-9 / mlp
        # Latency stalls parallelise across threads like compute does.
        memory_time = (cache_cycles / freq_hz + dram_time) / throughput

        # ---- bandwidth component ----------------------------------------
        dram_bytes = dram_accesses * cfg.line_bytes
        bandwidth_time = dram_bytes / (cfg.dram_bandwidth_gbs * 1e9)

        # ---- coherence contention on hot atomics --------------------------
        # Atomic read-modify-writes to a small set of hot lines (shared
        # reduction targets, e.g. k-means centroid sums) serialise across
        # all cores: the line ping-pongs through the coherence fabric.  The
        # contended fraction is the share of atomics whose write-stream
        # reuse distance is tiny (< 16 lines — a handful of shared targets).
        atomics = n * profile["mix.atomic"]
        hot_frac = profile["drd.write.cdf_4"]
        atomic_time = atomics * hot_frac * ATOMIC_PINGPONG_NS * 1e-9

        core_time = compute_time + memory_time + atomic_time
        time_s = max(core_time, bandwidth_time)
        if time_s <= 0:
            raise SimulationError("host model produced non-positive time")

        # ---- power / energy ----------------------------------------------
        utilisation = min(1.0, (compute_time / time_s) * (threads / cfg.hardware_threads) + 0.15)
        power = (
            cfg.energy.idle_w
            + cfg.energy.max_dynamic_w * utilisation
            + cfg.energy.dram_static_w
        )
        energy = (
            power * time_s
            + n * cfg.energy.op_energy_pj * 1e-12
            + dram_accesses * cfg.energy.dram_access_pj * 1e-12
        )
        return HostResult(
            workload=profile.workload,
            instructions=n,
            threads=threads,
            time_s=time_s,
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            bandwidth_time_s=bandwidth_time,
            dram_accesses=dram_accesses,
            power_w=energy / time_s,
            energy_j=energy,
        )
