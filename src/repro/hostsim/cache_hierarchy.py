"""Host cache-hierarchy model driven by reuse-distance traffic features.

The application profile already contains the fraction of memory accesses
that escape an LRU cache of every power-of-two size
(``traffic.bytes_<size>`` features).  The host hierarchy model reads those
fractions at the L1/L2/L3 capacities to split accesses into per-level hits
and DRAM traffic — the standard analytical single-pass cache model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HostConfig
from ..profiler import ApplicationProfile
from ..profiler.features import TRAFFIC_CACHE_SIZES


@dataclass(frozen=True)
class LevelTraffic:
    """Fractions of memory accesses served by each level of the hierarchy."""

    l1_hit: float
    l2_hit: float
    l3_hit: float
    dram: float

    def validate(self) -> None:
        total = self.l1_hit + self.l2_hit + self.l3_hit + self.dram
        assert abs(total - 1.0) < 1e-9, f"level fractions sum to {total}"


class CacheHierarchyModel:
    """Maps profile traffic features onto a host cache hierarchy."""

    def __init__(self, config: HostConfig) -> None:
        self.config = config

    @staticmethod
    def _escape_fraction(profile: ApplicationProfile, capacity: int) -> float:
        """Fraction of accesses escaping a cache of ``capacity`` bytes.

        Uses the largest profiled traffic size that does not exceed the
        capacity (profile sizes are powers of two from 128 B to 64 MiB).
        """
        eligible = [s for s in TRAFFIC_CACHE_SIZES if s <= capacity]
        size = eligible[-1] if eligible else TRAFFIC_CACHE_SIZES[0]
        return float(profile[f"traffic.bytes_{size}"])

    def level_traffic(self, profile: ApplicationProfile) -> LevelTraffic:
        """Per-level access fractions for this profile on this host.

        Capacities are divided by ``cache_scale`` to match the workloads'
        trace scaling (see :class:`~repro.config.HostConfig`).
        """
        cfg = self.config
        scale = cfg.cache_scale
        l1_escape = self._escape_fraction(profile, int(cfg.l1_bytes / scale))
        l2_escape = self._escape_fraction(profile, int(cfg.l2_bytes / scale))
        l3_escape = self._escape_fraction(profile, int(cfg.l3_bytes / scale))
        # Escape fractions are monotone non-increasing with capacity by
        # construction, but clamp against numerical edge cases.
        l2_escape = min(l2_escape, l1_escape)
        l3_escape = min(l3_escape, l2_escape)
        traffic = LevelTraffic(
            l1_hit=1.0 - l1_escape,
            l2_hit=l1_escape - l2_escape,
            l3_hit=l2_escape - l3_escape,
            dram=l3_escape,
        )
        traffic.validate()
        return traffic
