"""AMESTER-style power-sensor interface for the host model.

The paper measures host power "by monitoring built-in power sensors on our
host system via the AMESTER tool".  This module mimics that interface: a
:class:`PowerSensor` is attached to a running estimate and can be sampled
for instantaneous power, and integrated for energy — so the Figure 6
benchmark reads host energy the same way the paper's flow does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .cpu import HostResult


@dataclass(frozen=True)
class PowerSample:
    """One sensor reading: timestamp (s into the run) and power (W)."""

    t_s: float
    power_w: float


class PowerSensor:
    """Samples the modelled chip power over a kernel execution.

    The analytical model yields an average power; the sensor reproduces
    AMESTER's sampled view of it (a flat profile with the model's average,
    plus the idle floor before/after the kernel).
    """

    def __init__(self, result: HostResult, idle_w: float = 60.0) -> None:
        if result.time_s <= 0:
            raise SimulationError("cannot sample a zero-duration run")
        self._result = result
        self._idle_w = idle_w

    def sample(self, t_s: float) -> PowerSample:
        """Instantaneous power at time ``t_s`` (idle outside the run)."""
        if 0.0 <= t_s <= self._result.time_s:
            return PowerSample(t_s=t_s, power_w=self._result.power_w)
        return PowerSample(t_s=t_s, power_w=self._idle_w)

    def trace(self, n_samples: int = 100) -> list[PowerSample]:
        """Evenly spaced samples across the kernel execution."""
        if n_samples < 1:
            raise SimulationError("n_samples must be >= 1")
        dt = self._result.time_s / n_samples
        return [self.sample((i + 0.5) * dt) for i in range(n_samples)]

    def energy_j(self) -> float:
        """Integrated energy over the run (trapezoid over samples)."""
        samples = self.trace()
        dt = self._result.time_s / len(samples)
        return sum(s.power_w for s in samples) * dt
