"""Analytical host-CPU model (IBM POWER9 AC922 analog).

Plays the role of the paper's measured host baseline (Section 3.4 /
Figures 6-7): given a hardware-independent application profile it estimates
execution time, power and energy of the kernel on a POWER9-class
out-of-order multicore with a three-level cache hierarchy and DDR4 memory.
``power.py`` mimics the AMESTER on-chip power-sensor interface used by the
paper to measure host energy.
"""

from .cache_hierarchy import CacheHierarchyModel, LevelTraffic
from .cpu import HostResult, HostSimulator
from .power import PowerSensor

__all__ = [
    "HostSimulator",
    "HostResult",
    "CacheHierarchyModel",
    "LevelTraffic",
    "PowerSensor",
]
