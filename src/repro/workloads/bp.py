"""``bp`` — back-propagation neural-network training (Rodinia).

One training pass over a two-layer perceptron with a very wide input layer:
the forward pass reads the input->hidden weight matrix *column-major*
(stride = hidden-layer width), the backward pass updates the same weights in
place.  The weight matrix footprint (layer size x hidden units) far exceeds
any cache, and the column-strided walk wastes most of every fetched line —
the paper finds bp memory-intensive and NMC-suitable (Section 3.4).

DoE parameters (paper Table 2): input layer size, RNG seed, threads,
iterations.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range

#: Hidden-layer width of the Rodinia bp network (fixed at 16 in the suite;
#: scaled to 4 here to keep traces tractable).
HIDDEN = 4

#: Byte spacing of scaled weight elements (one 64 B line per element).
ELEM = 64


class Bp(Workload):
    name = "bp"
    description = "Back-propagation"

    _LAYER = SizeMapping(alpha=0.7, beta=0.5, minimum=64)
    _SEED = SizeMapping(alpha=1.0, beta=1.0, minimum=1)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.2, beta=1.0, minimum=1, maximum=3)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "layer_size", (800_000, 1_000_000, 2_000_000, 3_500_000, 4_000_000),
                1_100_000, self._LAYER,
            ),
            DoEParameter("seed", (2, 4, 5, 10, 12), 5, self._SEED),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (1, 3, 9, 16, 25), 9, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        layer = sizes["layer_size"]
        threads = min(sizes["threads"], layer)
        iters = sizes["iterations"]
        seed_offset = sizes["seed"]  # shifts which units are sampled
        # The network keeps its *virtual* (paper-scale) width: the kernel
        # touches a strided sample of `layer` input units out of the full
        # v-unit layer, so the weight-matrix walk spans the full
        # multi-megabyte footprint with page-scale strides.
        v = max(layer, int(raw["layer_size"]))
        stride = max(1, v // layer)
        # Weight elements are laid out one cache line apart: each scaled
        # (unit, hidden) weight stands for a line-sized block of the full
        # network's weight matrix (same blocking as cholesky, see DESIGN.md).
        space = AddressSpace()
        input_base = space.alloc(v * 8)
        weights_base = space.alloc(v * HIDDEN * ELEM)
        space.alloc(HIDDEN * 8)  # hidden-activation region

        dot = pat.dot_product()
        update = pat.scaled_update()
        builder = TraceBuilder()
        for _it in range(iters):
            for tid, (r0, r1) in enumerate(partition_range(layer, threads)):
                if r0 == r1:
                    continue
                units = np.arange(r0, r1)
                # Forward: hidden[h] += w[i][h] * in[i]; the weight matrix is
                # walked column-major (h outer, i inner) => stride HIDDEN*8.
                h, i = pat.tile_ij(
                    np.arange(HIDDEN, dtype=np.int64), len(units)
                )
                i = units[i % len(units)] * stride + (seed_offset % HIDDEN)
                i = np.minimum(i, v - 1)
                dot.emit(
                    builder,
                    len(h),
                    {
                        "a": pat.row_major(weights_base, i, h, HIDDEN, elem=ELEM),
                        "x": pat.vector_addr(input_base, i),
                    },
                    tid=tid,
                    pc_base=0,
                )
                # Backward: w[i][h] += delta[h] * in[i]; same column walk,
                # now a read-modify-write of the huge weight matrix.
                update.emit(
                    builder,
                    len(h),
                    {
                        "b": pat.vector_addr(input_base, i),
                        "a": pat.row_major(weights_base, i, h, HIDDEN, elem=ELEM),
                        "a_out": pat.row_major(weights_base, i, h, HIDDEN, elem=ELEM),
                    },
                    tid=tid,
                    pc_base=16,
                )
        return builder.finish()
