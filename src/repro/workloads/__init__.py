"""The evaluated workloads (paper Table 2).

Twelve kernels from PolyBench and Rodinia, re-implemented as parameterized
dynamic-trace generators: ``atax``, ``bfs``, ``bp``, ``chol``, ``gemv``,
``gesu``, ``gram``, ``kme``, ``lu``, ``mvt``, ``syrk``, ``trmm``.

Each workload declares its DoE parameters with the paper's five CCD levels
(*minimum, low, central, high, maximum*) and *test* input, and generates the
instruction trace of its NMC-offload kernel region for any parameter point.
"""

from .base import (
    AddressSpace,
    DoEParameter,
    SizeMapping,
    Workload,
    partition_range,
)
from .registry import WORKLOAD_NAMES, all_workloads, get_workload

__all__ = [
    "Workload",
    "DoEParameter",
    "SizeMapping",
    "AddressSpace",
    "partition_range",
    "get_workload",
    "all_workloads",
    "WORKLOAD_NAMES",
]
