"""Shared loop-body templates used by the workload trace generators.

Each template mirrors what an optimizing compiler emits for the
corresponding C inner loop: the loads/stores of the statement, the FP
arithmetic, the induction-variable update and the back-edge branch.
Register numbering encodes the true dependence structure (see
:mod:`repro.ir.builder`): accumulators read their own previous value
(loop-carried chain), streaming statements do not.
"""

from __future__ import annotations

import numpy as np

from ..ir import LoopTemplate, Opcode, TemplateOp

# Virtual register conventions: r1-r7 scratch, r8+ accumulators/carried.
_ACC = 8
_IV = 9  # induction variable


def dot_product() -> LoopTemplate:
    """acc += a[i] * x[i]  — two loads, serial FP accumulation chain."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="a"),
        TemplateOp(Opcode.LOAD, dst=2, addr="x"),
        TemplateOp(Opcode.FMUL, dst=3, src1=1, src2=2),
        TemplateOp(Opcode.FALU, dst=_ACC, src1=_ACC, src2=3),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def dual_dot() -> LoopTemplate:
    """tmp += A[i]*x[i]; acc += B[i]*x[i]  — gesummv's fused inner loop.

    Three simultaneous read streams (A, B, x) in one loop body, exactly as
    PolyBench's ``kernel_gesummv`` nest accesses them.
    """
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="a"),
        TemplateOp(Opcode.LOAD, dst=2, addr="b"),
        TemplateOp(Opcode.LOAD, dst=3, addr="x"),
        TemplateOp(Opcode.FMUL, dst=4, src1=1, src2=3),
        TemplateOp(Opcode.FALU, dst=_ACC, src1=_ACC, src2=4),
        TemplateOp(Opcode.FMUL, dst=5, src1=2, src2=3),
        TemplateOp(Opcode.FALU, dst=_ACC + 1, src1=_ACC + 1, src2=5),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def axpy() -> LoopTemplate:
    """y[i] = y[i] + alpha * x[i]  — independent iterations."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="x"),
        TemplateOp(Opcode.LOAD, dst=2, addr="y"),
        TemplateOp(Opcode.FMUL, dst=3, src1=1, src2=7),
        TemplateOp(Opcode.FALU, dst=4, src1=2, src2=3),
        TemplateOp(Opcode.STORE, src1=4, addr="y_out"),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def stream_update() -> LoopTemplate:
    """a[i] = f(a[i])  — read-modify-write stream."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="a"),
        TemplateOp(Opcode.FMUL, dst=2, src1=1, src2=7),
        TemplateOp(Opcode.FALU, dst=3, src1=2, src2=7),
        TemplateOp(Opcode.STORE, src1=3, addr="a_out"),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def gather_reduce() -> LoopTemplate:
    """acc += data[idx[i]]  — indexed gather, address depends on a load."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="idx", size=4),
        TemplateOp(Opcode.IALU, dst=2, src1=1),
        # The gathered load consumes the computed address register, creating
        # a load->load dependence chain (pointer-chasing signature).
        TemplateOp(Opcode.LOAD, dst=3, src1=2, addr="data"),
        TemplateOp(Opcode.FALU, dst=_ACC, src1=_ACC, src2=3),
        TemplateOp(Opcode.CMP, dst=4, src1=3),
        TemplateOp(Opcode.BRANCH, src1=4),
    ])


def gather_update() -> LoopTemplate:
    """data[idx[i]] op= v  — indexed scatter/update (irregular writes)."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="idx", size=4),
        TemplateOp(Opcode.IALU, dst=2, src1=1),
        TemplateOp(Opcode.LOAD, dst=3, src1=2, addr="data"),
        TemplateOp(Opcode.FALU, dst=4, src1=3, src2=7),
        TemplateOp(Opcode.STORE, src1=4, addr="data_out"),
        TemplateOp(Opcode.BRANCH, src1=2),
    ])


def atomic_update() -> LoopTemplate:
    """data[idx[i]] atomic+= v  — contended parallel reduction.

    The shared-accumulator pattern of Rodinia's parallel kernels (k-means
    centroid sums, BFS cost relaxation): on the host these read-modify-
    writes bounce the target line between cores; near memory they execute
    locally at the vault — one of the classic NMC advantages.
    """
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="idx", size=4),
        TemplateOp(Opcode.IALU, dst=2, src1=1),
        TemplateOp(Opcode.ATOMIC, dst=3, src1=2, addr="data"),
        TemplateOp(Opcode.FALU, dst=4, src1=3, src2=7),
        TemplateOp(Opcode.BRANCH, src1=2),
    ])


def distance_accumulate() -> LoopTemplate:
    """acc += (p[i] - c[i])^2  — k-means distance inner loop."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="p"),
        TemplateOp(Opcode.LOAD, dst=2, addr="c"),
        TemplateOp(Opcode.FALU, dst=3, src1=1, src2=2),
        TemplateOp(Opcode.FMUL, dst=4, src1=3, src2=3),
        TemplateOp(Opcode.FALU, dst=_ACC, src1=_ACC, src2=4),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def rank1_update() -> LoopTemplate:
    """a[i,j] -= l[i] * u[j]  — LU / Cholesky trailing update."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="l"),
        TemplateOp(Opcode.LOAD, dst=2, addr="u"),
        TemplateOp(Opcode.FMUL, dst=3, src1=1, src2=2),
        TemplateOp(Opcode.LOAD, dst=4, addr="a"),
        TemplateOp(Opcode.FALU, dst=5, src1=4, src2=3),
        TemplateOp(Opcode.STORE, src1=5, addr="a_out"),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def scaled_update() -> LoopTemplate:
    """a[i] -= s * b[i]  — update with a register-resident scalar ``s``.

    Like :func:`rank1_update` but the multiplier is loop-invariant and
    lives in a register (r7), the way any compiler treats ``delta[h]`` in
    bp's weight update or ``r[k][j]`` in Gram-Schmidt's projection.
    """
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="b"),
        TemplateOp(Opcode.FMUL, dst=2, src1=1, src2=7),
        TemplateOp(Opcode.LOAD, dst=3, addr="a"),
        TemplateOp(Opcode.FALU, dst=4, src1=3, src2=2),
        TemplateOp(Opcode.STORE, src1=4, addr="a_out"),
        TemplateOp(Opcode.IALU, dst=_IV, src1=_IV),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def scalar_divide() -> LoopTemplate:
    """x[i] = x[i] / d  — normalisation loop with FP divides."""
    return LoopTemplate([
        TemplateOp(Opcode.LOAD, dst=1, addr="x"),
        TemplateOp(Opcode.FDIV, dst=2, src1=1, src2=7),
        TemplateOp(Opcode.STORE, src1=2, addr="x_out"),
        TemplateOp(Opcode.BRANCH, src1=_IV),
    ])


def row_major(base: int, i: np.ndarray, j: np.ndarray, ncols: int,
              elem: int = 8) -> np.ndarray:
    """Addresses of A[i, j] for a row-major matrix at ``base``."""
    return base + (i.astype(np.int64) * ncols + j.astype(np.int64)) * elem


def vector_addr(base: int, i: np.ndarray, elem: int = 8) -> np.ndarray:
    """Addresses of v[i] for a dense vector at ``base``."""
    return base + i.astype(np.int64) * elem


def tile_ij(i_values: np.ndarray, j_count: int) -> tuple[np.ndarray, np.ndarray]:
    """All (i, j) pairs with i from ``i_values`` and j in range(j_count).

    Returns arrays of equal length len(i_values) * j_count, i-major
    (the natural nesting of a row loop over an inner column loop).
    """
    i = np.repeat(i_values.astype(np.int64), j_count)
    j = np.tile(np.arange(j_count, dtype=np.int64), len(i_values))
    return i, j
