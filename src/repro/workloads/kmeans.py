"""``kme`` — k-means clustering (Rodinia).

Each iteration assigns every point to its nearest centroid (distance
computation over the feature dimensions) and accumulates the new centroid
sums.  Points are visited in a shuffled order over a multi-megabyte data
set (no temporal reuse of points within an iteration), and the centroid
updates are scattered read-modify-writes — memory-intensive with irregular
access, one of the paper's good NMC fits (Section 3.4).

Note on Table 2: the paper prints kme's thread levels as ``1 9 1 32 64``;
we use ``(1, 9, 16, 32, 64)`` (the same ladder as bfs, with the central
level restored to 16).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range

#: Feature dimensionality of each point (Rodinia kdd_cup uses 34; scaled).
FEATURES = 2


class KMeans(Workload):
    name = "kme"
    description = "K-Means Clustering"

    _POINTS = SizeMapping(alpha=1.2, beta=0.5, minimum=64)
    _CLUSTERS = SizeMapping(alpha=1.0, beta=1.0, minimum=1)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.05, beta=1.0, minimum=1, maximum=3)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "data_size", (100_000, 300_000, 700_000, 900_000, 1_200_000),
                819_000, self._POINTS,
            ),
            DoEParameter("clusters", (3, 5, 6, 7, 8), 5, self._CLUSTERS),
            DoEParameter("threads", (1, 9, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (10, 20, 30, 40, 50), 30, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n_points = sizes["data_size"]
        k = sizes["clusters"]
        threads = min(sizes["threads"], n_points)
        iters = sizes["iterations"]
        # The data set keeps its *virtual* (paper-scale) cardinality: each
        # iteration visits a random sample of n_points point ids out of the
        # full v-point space, so point accesses behave like the real
        # multi-megabyte scan (no reuse, no prefetchable stride) while the
        # centroid arrays stay small and hot.
        v = max(n_points, int(raw["data_size"]))
        space = AddressSpace()
        points_base = space.alloc(v * FEATURES * 8)
        centroids_base = space.alloc(k * FEATURES * 8)
        membership_base = space.alloc(v * 4)
        sums_base = space.alloc(k * FEATURES * 8)

        dist = pat.distance_accumulate()
        scatter = pat.atomic_update()
        builder = TraceBuilder()
        for _it in range(iters):
            order = rng.integers(0, v, size=n_points).astype(np.int64)
            for tid, (r0, r1) in enumerate(partition_range(n_points, threads)):
                if r0 == r1:
                    continue
                pts = order[r0:r1]
                # Distance to every centroid over every feature.
                p = np.repeat(pts, k * FEATURES)
                c = np.tile(np.arange(k * FEATURES, dtype=np.int64), len(pts))
                f = np.tile(
                    np.tile(np.arange(FEATURES, dtype=np.int64), k), len(pts)
                )
                dist.emit(
                    builder, len(p),
                    {
                        "p": points_base + (p * FEATURES + f) * 8,
                        "c": centroids_base + c * 8,
                    },
                    tid=tid, pc_base=0,
                )
                # Assignment write + scatter-accumulate into centroid sums.
                nearest = rng.integers(0, k, size=len(pts))
                scatter.emit(
                    builder, len(pts),
                    {
                        "idx": pat.vector_addr(membership_base, pts, elem=4),
                        "data": sums_base + nearest * FEATURES * 8,
                    },
                    tid=tid, pc_base=16,
                )
        return builder.finish()
