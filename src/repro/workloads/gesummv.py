"""``gesu`` — scalar, vector and matrix multiplication (PolyBench
``gesummv``).

Computes ``y = alpha * A x + beta * B x``: two simultaneous row-major
matrix-vector streams sharing the cache-resident vector ``x``.  Like gemver
this is a perfectly regular, prefetch-friendly kernel with high data
locality on the shared vector; the paper finds it not NMC-suitable
(Section 3.4, observation three).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Gesummv(Workload):
    name = "gesu"
    description = "Scalar, Vector, and Matrix Multiplication"

    _DIM = SizeMapping(alpha=1.4, beta=0.5, minimum=8)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.03, beta=1.0, minimum=1, maximum=3)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (500, 750, 1250, 2000, 2250), 8000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (10, 20, 40, 50, 60), 50, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        threads = min(sizes["threads"], n)
        repeats = sizes["iterations"]
        space = AddressSpace()
        a_base = space.alloc(n * n * 8)
        b_base = space.alloc(n * n * 8)
        x_base = space.alloc(n * 8)
        y_base = space.alloc(n * 8)

        dual = pat.dual_dot()
        update = pat.stream_update()
        builder = TraceBuilder()
        for _rep in range(repeats):
            for tid, (r0, r1) in enumerate(partition_range(n, threads)):
                if r0 == r1:
                    continue
                rows = np.arange(r0, r1)
                i, j = pat.tile_ij(rows, n)
                x_addrs = pat.vector_addr(x_base, j)
                # Fused: tmp[i] += A[i][j]*x[j]; y[i] += B[i][j]*x[j]
                dual.emit(
                    builder, len(i),
                    {
                        "a": pat.row_major(a_base, i, j, n),
                        "b": pat.row_major(b_base, i, j, n),
                        "x": x_addrs,
                    },
                    tid=tid, pc_base=0,
                )
                # y[i] = alpha * tmp[i] + beta * y[i]
                y_addrs = pat.vector_addr(y_base, rows)
                update.emit(
                    builder, len(rows),
                    {"a": y_addrs, "a_out": y_addrs},
                    tid=tid, pc_base=32,
                )
        return builder.finish()
