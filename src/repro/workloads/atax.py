"""``atax`` — matrix transpose and vector multiplication (PolyBench).

Computes ``y = A^T (A x)``.  Phase 1 (``tmp = A x``) streams the matrix
row-major — high spatial locality, prefetch-friendly.  Phase 2
(``y = A^T tmp``) walks the matrix column-major with an ``n``-element
stride — every access touches a new cache line.  This half-regular,
half-transposed structure is why the paper calls atax a borderline NMC
candidate (Section 3.4, observation five).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Atax(Workload):
    name = "atax"
    description = "Matrix Transpose and Vector Multiplication"

    _DIM = SizeMapping(alpha=2.0, beta=0.5, minimum=8)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (500, 1250, 1500, 2000, 2300), 8000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        # The matrix keeps its *virtual* (paper-scale) row pitch: the kernel
        # visits an n x n sub-grid of the full v x v matrix, so the phase-2
        # column walk strides by the full-scale row length (v * 8 bytes) —
        # far beyond any prefetcher's reach, exactly as at full scale.
        v = max(n, int(raw["dimensions"]))
        threads = min(sizes["threads"], n)
        space = AddressSpace()
        a_base = space.alloc(n * v * 8)
        x_base = space.alloc(n * 8)
        tmp_base = space.alloc(n * 8)
        y_base = space.alloc(n * 8)

        dot = pat.dot_product()
        update = pat.stream_update()
        builder = TraceBuilder()
        # Phase 1: tmp[i] = sum_j A[i][j] * x[j] — row-parallel, each thread
        # streams its rows with unit stride (prefetch-friendly).
        for tid, (r0, r1) in enumerate(partition_range(n, threads)):
            if r0 == r1:
                continue
            rows = np.arange(r0, r1)
            i, j = pat.tile_ij(rows, n)
            dot.emit(
                builder,
                len(i),
                {
                    "a": pat.row_major(a_base, i, j, v),
                    "x": pat.vector_addr(x_base, j),
                },
                tid=tid,
                pc_base=0,
            )
            update.emit(
                builder,
                len(rows),
                {
                    "a": pat.vector_addr(tmp_base, rows),
                    "a_out": pat.vector_addr(tmp_base, rows),
                },
                tid=tid,
                pc_base=16,
            )
        # Phase 2: y[j] = sum_i A[i][j] * tmp[i] — column-parallel: every
        # thread walks whole columns of A top to bottom, striding by the
        # full-scale row pitch (v * 8 bytes) at every step.
        for tid, (c0, c1) in enumerate(partition_range(n, threads)):
            if c0 == c1:
                continue
            cols = np.arange(c0, c1)
            jj, ii = pat.tile_ij(cols, n)
            dot.emit(
                builder,
                len(jj),
                {
                    "a": pat.row_major(a_base, ii, jj, v),
                    "x": pat.vector_addr(tmp_base, ii),
                },
                tid=tid,
                pc_base=32,
            )
            update.emit(
                builder,
                len(cols),
                {
                    "a": pat.vector_addr(y_base, cols),
                    "a_out": pat.vector_addr(y_base, cols),
                },
                tid=tid,
                pc_base=48,
            )
        return builder.finish()
