"""Workload framework: DoE parameters, size scaling, trace generation.

A :class:`Workload` plays the role of an instrumented benchmark kernel in
the paper: given an input configuration (a point in its DoE parameter
space, Table 2) it produces the dynamic instruction trace of the code
region annotated for NMC offload.

Size scaling
------------
The paper's input sizes (up to 8000x8000 matrices) are intractable for a
pure-Python cycle-level simulator, so each size-like parameter carries a
:class:`SizeMapping` that maps the paper's parameter value to an *effective*
size used for trace generation.  The mapping is strictly monotone (bigger
paper inputs always produce bigger traces) and is applied identically during
training and prediction, so it acts as a units change, not a distortion of
the design space.  See DESIGN.md ("Trace scaling").
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import WorkloadError
from ..ir import InstructionTrace

#: The five CCD levels, in order (paper Section 2.4).
LEVEL_NAMES = ("minimum", "low", "central", "high", "maximum")


@dataclass(frozen=True)
class SizeMapping:
    """Monotone mapping from a paper-scale parameter to an effective size.

    ``effective = clip(round(alpha * value ** beta / scale), minimum, maximum)``

    ``beta`` < 1 compresses parameters that enter the kernel's complexity
    super-linearly (beta=0.5 for O(n^2) kernels, 1/3 for O(n^3)); ``scale``
    is the caller's additional global shrink factor (1.0 = none).  An
    optional ``maximum`` caps repeat-style parameters whose effect on the
    access pattern saturates (the mapping stays monotone non-decreasing).
    """

    alpha: float = 1.0
    beta: float = 1.0
    minimum: int = 2
    maximum: int | None = None
    #: Thread-count-like parameters keep their value under global scaling.
    apply_scale: bool = True

    def effective(self, value: float, scale: float = 1.0) -> int:
        if value <= 0:
            raise WorkloadError(f"parameter value must be positive, got {value}")
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        if not self.apply_scale:
            scale = 1.0
        eff = max(self.minimum, int(round(self.alpha * value**self.beta / scale)))
        if self.maximum is not None:
            eff = min(eff, self.maximum)
        return eff


#: Identity-like mapping for parameters that are already small (threads...).
IDENTITY = SizeMapping(alpha=1.0, beta=1.0, minimum=1)


@dataclass(frozen=True)
class DoEParameter:
    """One DoE parameter with its five levels and test value (Table 2)."""

    name: str
    levels: tuple[float, float, float, float, float]
    test: float
    mapping: SizeMapping = field(default_factory=lambda: IDENTITY)

    def __post_init__(self) -> None:
        if len(self.levels) != 5:
            raise WorkloadError(
                f"parameter {self.name!r} needs exactly 5 levels"
            )
        lo, *_rest, hi = self.levels
        if not lo <= hi:
            raise WorkloadError(
                f"parameter {self.name!r}: minimum level exceeds maximum"
            )

    @property
    def minimum(self) -> float:
        return self.levels[0]

    @property
    def low(self) -> float:
        return self.levels[1]

    @property
    def central(self) -> float:
        return self.levels[2]

    @property
    def high(self) -> float:
        return self.levels[3]

    @property
    def maximum(self) -> float:
        return self.levels[4]

    def level(self, name: str) -> float:
        try:
            return self.levels[LEVEL_NAMES.index(name)]
        except ValueError:
            raise WorkloadError(f"unknown level {name!r}") from None


class AddressSpace:
    """Simple bump allocator for workload data structures.

    Regions are page-aligned and non-overlapping, so reuse-distance and
    cache behaviour of distinct arrays never alias.
    """

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base

    def alloc(self, nbytes: int, align: int = 4096) -> int:
        """Reserve ``nbytes`` and return the region's base address."""
        if nbytes < 0:
            raise WorkloadError("allocation size must be non-negative")
        addr = (self._next + align - 1) // align * align
        self._next = addr + nbytes
        return addr


def partition_range(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous chunks (OpenMP-static).

    Returns ``parts`` (start, end) pairs; trailing chunks may be empty when
    ``parts > n``.
    """
    if parts < 1:
        raise WorkloadError("parts must be >= 1")
    base = n // parts
    rem = n % parts
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < rem else 0)
        out.append((start, start + size))
        start += size
    return out


class Workload(abc.ABC):
    """An instrumented benchmark kernel (one row of paper Table 2)."""

    #: Short name used throughout the paper's tables ("atax", "bfs", ...).
    name: str = ""
    #: Human-readable description from Table 2.
    description: str = ""

    @property
    @abc.abstractmethod
    def parameters(self) -> tuple[DoEParameter, ...]:
        """The workload's DoE parameters with their levels."""

    @abc.abstractmethod
    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        """Emit the kernel trace.

        ``sizes`` holds the scaled *effective* sizes (how many elements are
        visited); ``raw`` holds the unmapped paper-scale parameter values.
        Workloads whose full-scale footprint matters to the memory system
        (irregular access over huge arrays) lay their data out in the
        *virtual* address space implied by ``raw`` while emitting only
        ``sizes``-many accesses — preserving the full-scale reuse and
        stride signature at a tractable trace length (see DESIGN.md).
        """

    # ------------------------------------------------------------ helpers

    def parameter(self, name: str) -> DoEParameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise WorkloadError(f"{self.name}: unknown parameter {name!r}")

    def central_config(self) -> dict[str, float]:
        """The all-central CCD configuration."""
        return {p.name: p.central for p in self.parameters}

    def test_config(self) -> dict[str, float]:
        """The previously-unseen *test* input of Table 2 (Section 3.4)."""
        return {p.name: p.test for p in self.parameters}

    def validate_config(self, config: Mapping[str, float]) -> dict[str, float]:
        """Check that a configuration names every parameter, return a copy."""
        out: dict[str, float] = {}
        for p in self.parameters:
            if p.name not in config:
                raise WorkloadError(
                    f"{self.name}: configuration missing parameter {p.name!r}"
                )
            value = float(config[p.name])
            if value <= 0:
                raise WorkloadError(
                    f"{self.name}: parameter {p.name!r} must be positive"
                )
            out[p.name] = value
        extra = set(config) - set(out)
        if extra:
            raise WorkloadError(
                f"{self.name}: unknown parameters {sorted(extra)}"
            )
        return out

    def generate(
        self,
        config: Mapping[str, float],
        *,
        scale: float = 1.0,
        seed: int | None = None,
    ) -> InstructionTrace:
        """Generate the kernel's dynamic trace for one input configuration.

        ``scale`` further shrinks all size-mapped parameters (useful in
        tests); ``seed`` overrides the deterministic per-configuration seed.
        """
        config = self.validate_config(config)
        sizes = {
            p.name: p.mapping.effective(config[p.name], scale)
            for p in self.parameters
        }
        if seed is None:
            seed = config_seed(self.name, config)
        rng = np.random.default_rng(seed)
        trace = self._generate(sizes, config, rng)
        if len(trace) == 0:
            raise WorkloadError(f"{self.name}: generated an empty trace")
        return trace

    def __repr__(self) -> str:
        params = ", ".join(p.name for p in self.parameters)
        return f"<Workload {self.name} ({params})>"


def config_seed(name: str, config: Mapping[str, float]) -> int:
    """Deterministic RNG seed derived from workload name and configuration."""
    text = name + "|" + "|".join(
        f"{k}={config[k]:.6g}" for k in sorted(config)
    )
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def thread_sizes(sizes: Mapping[str, int], key: str = "threads") -> int:
    """Effective thread count from a size mapping (>= 1)."""
    return max(1, int(sizes.get(key, 1)))
