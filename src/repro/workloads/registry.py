"""Workload registry: name -> singleton instance lookup."""

from __future__ import annotations

from functools import lru_cache

from ..errors import WorkloadError
from .atax import Atax
from .base import Workload
from .bfs import Bfs
from .bp import Bp
from .cholesky import Cholesky
from .gemv import Gemv
from .gesummv import Gesummv
from .gramschmidt import GramSchmidt
from .kmeans import KMeans
from .lu import Lu
from .mvt import Mvt
from .syrk import Syrk
from .trmm import Trmm

_WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    Atax, Bfs, Bp, Cholesky, Gemv, Gesummv,
    GramSchmidt, KMeans, Lu, Mvt, Syrk, Trmm,
)

#: Paper-order workload names (Table 2).
WORKLOAD_NAMES: tuple[str, ...] = tuple(cls.name for cls in _WORKLOAD_CLASSES)


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Look up a workload by its Table 2 short name (e.g. ``"atax"``)."""
    for cls in _WORKLOAD_CLASSES:
        if cls.name == name:
            return cls()
    raise WorkloadError(
        f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
    )


def all_workloads() -> list[Workload]:
    """All twelve evaluated workloads, in paper (Table 2) order."""
    return [get_workload(name) for name in WORKLOAD_NAMES]
