"""``bfs`` — breadth-first search (Rodinia).

Frontier-based BFS over a random graph: for every frontier node the kernel
loads the node record, then *gathers* each neighbour's visited flag and cost
through an index array — data-dependent, effectively random accesses over a
multi-megabyte footprint.  This is the canonical NMC-friendly pattern: the
host's caches and prefetchers are useless, every edge visit is an off-chip
round trip (paper Section 3.4, observation four).

DoE parameters (paper Table 2): graph nodes, edge weights (average degree),
threads and kernel iterations.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Bfs(Workload):
    name = "bfs"
    description = "Breadth-first Search"

    _NODES = SizeMapping(alpha=1.0, beta=0.5, minimum=64)
    _DEGREE = SizeMapping(alpha=1.0, beta=0.4, minimum=1, maximum=12)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.05, beta=1.0, minimum=1, maximum=8)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "nodes", (400_000, 800_000, 900_000, 1_200_000, 1_400_000),
                1_000_000, self._NODES,
            ),
            DoEParameter("weights", (1, 2, 4, 25, 49), 4, self._DEGREE),
            DoEParameter("threads", (1, 9, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (30, 40, 65, 70, 80), 95, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n_nodes = sizes["nodes"]
        degree = sizes["weights"]
        threads = min(sizes["threads"], n_nodes)
        repeats = sizes["iterations"]
        # The graph keeps its *virtual* (paper-scale) size: we visit a
        # sampled frontier of n_nodes nodes, but node ids — and therefore
        # all addresses — span the full v-node graph, so the reuse and
        # stride signature is that of a multi-megabyte irregular workload.
        v = max(n_nodes, int(raw["nodes"]))
        space = AddressSpace()
        nodes_base = space.alloc(v * 16)   # (edge offset, count) records
        edges_base = space.alloc(v * degree * 4)
        cost_base = space.alloc(v * 8)
        visited_base = space.alloc(v * 4)
        del nodes_base  # node records are implied by the edge-array walk

        gather = pat.gather_reduce()
        scatter = pat.atomic_update()
        builder = TraceBuilder()
        for _rep in range(repeats):
            # Node visit order is a BFS wavefront over the virtual graph:
            # a random sample of node ids from the full id space.
            order = rng.integers(0, v, size=n_nodes).astype(np.int64)
            for tid, (r0, r1) in enumerate(partition_range(n_nodes, threads)):
                if r0 == r1:
                    continue
                frontier = order[r0:r1]
                # Expand each frontier node's `degree` neighbours.
                src = np.repeat(frontier, degree)
                neighbors = rng.integers(0, v, size=len(src)).astype(np.int64)
                # Edge-array walk (sequential within a node's edge list).
                edge_idx = (
                    src.astype(np.int64) * degree
                    + np.tile(np.arange(degree, dtype=np.int64), len(frontier))
                )
                gather.emit(
                    builder,
                    len(src),
                    {
                        "idx": edges_base + edge_idx * 4,
                        "data": pat.vector_addr(visited_base, neighbors, elem=4),
                    },
                    tid=tid,
                    pc_base=0,
                )
                # Update cost of newly discovered nodes (random scatter).
                scatter.emit(
                    builder,
                    len(src),
                    {
                        "idx": edges_base + edge_idx * 4,
                        "data": pat.vector_addr(cost_base, neighbors),
                    },
                    tid=tid,
                    pc_base=16,
                )
        return builder.finish()
