"""Synthetic microbenchmarks: STREAM, GUPS and pointer chasing.

Classic memory-system calibration kernels, useful for validating the
simulators and for stressing NAPEL with behaviour outside the Table 2
suite:

* :class:`Stream`      — McCalpin STREAM triad: pure sequential bandwidth;
* :class:`Gups`        — random read-modify-writes over a huge table
  (HPCC RandomAccess): pure memory-latency throughput;
* :class:`PointerChase` — a dependent load chain: one outstanding miss at
  a time, the worst case for any latency-hiding mechanism.

They implement the full :class:`~repro.workloads.Workload` interface, so
campaigns, profiling and prediction work on them unchanged — see
``examples/custom_workload.py`` for the usage pattern.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, LoopTemplate, Opcode, TemplateOp, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range

_THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)


class Stream(Workload):
    """STREAM triad: a[i] = b[i] + s * c[i] — sequential bandwidth."""

    name = "stream"
    description = "STREAM triad microbenchmark (synthetic)"

    _SIZE = SizeMapping(alpha=0.02, beta=1.0, minimum=256)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "elements", (100_000, 400_000, 700_000, 1_000_000, 1_300_000),
                800_000, self._SIZE,
            ),
            DoEParameter("threads", (1, 4, 16, 32, 64), 32, _THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["elements"]
        threads = min(sizes["threads"], n)
        space = AddressSpace()
        a = space.alloc(n * 8)
        b = space.alloc(n * 8)
        c = space.alloc(n * 8)
        triad = LoopTemplate([
            TemplateOp(Opcode.LOAD, dst=1, addr="b"),
            TemplateOp(Opcode.LOAD, dst=2, addr="c"),
            TemplateOp(Opcode.FMUL, dst=3, src1=2, src2=7),
            TemplateOp(Opcode.FALU, dst=4, src1=1, src2=3),
            TemplateOp(Opcode.STORE, src1=4, addr="a"),
            TemplateOp(Opcode.BRANCH, src1=9),
        ])
        builder = TraceBuilder()
        for tid, (r0, r1) in enumerate(partition_range(n, threads)):
            if r0 == r1:
                continue
            i = np.arange(r0, r1, dtype=np.int64)
            triad.emit(
                builder, len(i),
                {
                    "a": pat.vector_addr(a, i),
                    "b": pat.vector_addr(b, i),
                    "c": pat.vector_addr(c, i),
                },
                tid=tid, pc_base=0,
            )
        return builder.finish()


class Gups(Workload):
    """GUPS / RandomAccess: table[rand()] ^= value — latency throughput."""

    name = "gups"
    description = "GUPS random-access microbenchmark (synthetic)"

    _UPDATES = SizeMapping(alpha=0.05, beta=1.0, minimum=256)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "updates", (50_000, 200_000, 500_000, 800_000, 1_000_000),
                600_000, self._UPDATES,
            ),
            DoEParameter(
                "table_mib", (16, 64, 256, 512, 1024), 256,
                SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False),
            ),
            DoEParameter("threads", (1, 4, 16, 32, 64), 32, _THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        updates = sizes["updates"]
        table_bytes = int(raw["table_mib"]) << 20  # virtual footprint
        threads = min(sizes["threads"], updates)
        space = AddressSpace()
        table = space.alloc(table_bytes)
        update = pat.gather_update()
        builder = TraceBuilder()
        n_slots = table_bytes // 8
        for tid, (r0, r1) in enumerate(partition_range(updates, threads)):
            if r0 == r1:
                continue
            count = r1 - r0
            slots = rng.integers(0, n_slots, size=count).astype(np.int64)
            addrs = table + slots * 8
            update.emit(
                builder, count,
                {"idx": addrs, "data": addrs, "data_out": addrs},
                tid=tid, pc_base=0,
            )
        return builder.finish()


class PointerChase(Workload):
    """next = *next over a shuffled ring — serial dependent misses."""

    name = "chase"
    description = "pointer-chasing microbenchmark (synthetic)"

    _HOPS = SizeMapping(alpha=0.05, beta=1.0, minimum=128)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter(
                "hops", (50_000, 100_000, 300_000, 600_000, 800_000),
                400_000, self._HOPS,
            ),
            DoEParameter(
                "ring_mib", (4, 16, 64, 256, 512), 64,
                SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False),
            ),
            DoEParameter("threads", (1, 2, 4, 8, 16), 4, _THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        hops = sizes["hops"]
        ring_bytes = int(raw["ring_mib"]) << 20
        threads = sizes["threads"]
        space = AddressSpace()
        builder = TraceBuilder()
        n_nodes = ring_bytes // 64  # one node per cache line
        # Each dependent load consumes the pointer produced by the previous
        # one (dst=1 feeds src1=1): a strictly serial miss chain.
        chain = LoopTemplate([
            TemplateOp(Opcode.LOAD, dst=1, src1=1, addr="p"),
            TemplateOp(Opcode.BRANCH, src1=1),
        ])
        per_thread = max(1, hops // max(1, threads))
        for tid in range(threads):
            ring = space.alloc(ring_bytes)
            nodes = rng.integers(0, n_nodes, size=per_thread).astype(np.int64)
            chain.emit(
                builder, per_thread,
                {"p": ring + nodes * 64},
                tid=tid, pc_base=0,
            )
        return builder.finish()


#: The synthetic microbenchmarks (not part of the Table 2 registry).
SYNTHETIC_WORKLOADS: tuple[type[Workload], ...] = (Stream, Gups, PointerChase)
