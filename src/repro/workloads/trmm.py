"""``trmm`` — triangular matrix multiply (PolyBench).

Computes ``B = alpha * A B`` with ``A`` lower-triangular.  The inner loop
streams a row of ``B`` (unit stride) while the triangular row of ``A``
stays hot in cache — another high-locality dense kernel the paper finds
unsuitable for NMC (Section 3.4, observation three).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Trmm(Workload):
    name = "trmm"
    description = "Triangular Matrix Multiply"

    _DIM_I = SizeMapping(alpha=3.5, beta=1 / 3, minimum=8)
    _DIM_J = SizeMapping(alpha=3.0, beta=1 / 3, minimum=6)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimension_i", (196, 256, 320, 420, 512), 2000, self._DIM_I),
            DoEParameter("dimension_j", (196, 256, 320, 420, 512), 2000, self._DIM_J),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        ni = sizes["dimension_i"]   # A is ni x ni (triangular), B is ni x nj
        nj = sizes["dimension_j"]
        threads = min(sizes["threads"], ni)
        space = AddressSpace()
        a_base = space.alloc(ni * ni * 8)
        b_base = space.alloc(ni * nj * 8)

        rank1 = pat.rank1_update()
        builder = TraceBuilder()
        for tid, (r0, r1) in enumerate(partition_range(ni, threads)):
            if r0 == r1:
                continue
            for i in range(r0, r1):
                # B[i][j] += A[i][k] * B[k][j]  for k < i, all j (row stream)
                ks = np.arange(i, dtype=np.int64)
                if len(ks) == 0:
                    continue
                kk = np.repeat(ks, nj)
                jj = np.tile(np.arange(nj, dtype=np.int64), len(ks))
                ii = np.full(len(kk), i, dtype=np.int64)
                b_row = pat.row_major(b_base, ii, jj, nj)
                rank1.emit(
                    builder, len(kk),
                    {
                        "l": pat.row_major(a_base, ii, kk, ni),
                        "u": pat.row_major(b_base, kk, jj, nj),
                        "a": b_row,
                        "a_out": b_row,
                    },
                    tid=tid, pc_base=0,
                )
        return builder.finish()
