"""``mvt`` — matrix-vector product and transpose (PolyBench).

Computes ``x1 += A y1`` and ``x2 += A^T y2``.  Both products are emitted
row-major over ``A`` (the transposed product swaps the roles of the index
vectors rather than the traversal order, as the PolyBench loop nest does
after loop interchange), so the kernel is a pair of regular unit-stride
streams with cache-resident vectors — locality-friendly and not
NMC-suitable per the paper (Section 3.4, observation three).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Mvt(Workload):
    name = "mvt"
    description = "Matrix Vector Product"

    _DIM = SizeMapping(alpha=1.4, beta=0.5, minimum=8)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.03, beta=1.0, minimum=1, maximum=3)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (500, 750, 1250, 2000, 2250), 2000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (10, 20, 30, 50, 60), 40, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        threads = min(sizes["threads"], n)
        repeats = sizes["iterations"]
        space = AddressSpace()
        a_base = space.alloc(n * n * 8)
        y1_base = space.alloc(n * 8)
        y2_base = space.alloc(n * 8)

        dot = pat.dot_product()
        builder = TraceBuilder()
        for _rep in range(repeats):
            for tid, (r0, r1) in enumerate(partition_range(n, threads)):
                if r0 == r1:
                    continue
                rows = np.arange(r0, r1)
                i, j = pat.tile_ij(rows, n)
                # x1[i] += A[i][j] * y1[j]
                dot.emit(
                    builder, len(i),
                    {
                        "a": pat.row_major(a_base, i, j, n),
                        "x": pat.vector_addr(y1_base, j),
                    },
                    tid=tid, pc_base=0,
                )
                # x2[i] += A[j][i] * y2[j], interchanged to stream row-major.
                dot.emit(
                    builder, len(i),
                    {
                        "a": pat.row_major(a_base, i, j, n),
                        "x": pat.vector_addr(y2_base, j),
                    },
                    tid=tid, pc_base=16,
                )
        return builder.finish()
