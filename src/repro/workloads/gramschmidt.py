"""``gram`` — Gram-Schmidt orthonormalisation (PolyBench).

Modified Gram-Schmidt over the columns of an ``ni x nj`` matrix: for each
column ``k`` the kernel normalises the column, then projects it out of all
later columns.  Every column operation strides by the full row length
(column-major walks of a row-major matrix) and columns are revisited many
times with large reuse distances — memory-intensive, irregular-stride
behaviour that the paper classifies as a good NMC fit (Section 3.4).

Note on Table 2: the paper prints the dimension levels as
``64 384 128 320 512`` (not monotone); we use the sorted levels
``(64, 128, 320, 384, 512)``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range

#: Byte spacing of scaled matrix elements (one 64 B line per element).
ELEM = 64


class GramSchmidt(Workload):
    name = "gram"
    description = "Gram-Schmidt Process"

    _DIM_I = SizeMapping(alpha=1.5, beta=0.45, minimum=8)
    _DIM_J = SizeMapping(alpha=4.0, beta=0.3, minimum=6)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimension_i", (64, 128, 320, 384, 512), 2000, self._DIM_I),
            DoEParameter("dimension_j", (64, 128, 320, 384, 512), 2000, self._DIM_J),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        ni = sizes["dimension_i"]   # rows (vector length)
        nj = sizes["dimension_j"]   # columns (number of vectors)
        threads = sizes["threads"]
        # Line-blocked element layout, as in cholesky: each scaled element
        # stands for a 64 B block of the full-size matrix.
        space = AddressSpace()
        a_base = space.alloc(ni * nj * ELEM)
        space.alloc(nj * nj * 8)  # R factor region

        dot = pat.dot_product()
        divide = pat.scalar_divide()
        update = pat.scaled_update()
        builder = TraceBuilder()
        rows = np.arange(ni, dtype=np.int64)
        for k in range(nj):
            col_k = pat.row_major(a_base, rows, np.full(ni, k), nj, elem=ELEM)
            # Norm of column k (column-major stride-nj walk).
            dot.emit(
                builder, ni, {"a": col_k, "x": col_k},
                tid=k % threads, pc_base=0,
            )
            # Normalise column k.
            divide.emit(
                builder, ni, {"x": col_k, "x_out": col_k},
                tid=k % threads, pc_base=16,
            )
            # Project column k out of all later columns, column-parallel.
            later = np.arange(k + 1, nj, dtype=np.int64)
            for tid, (c0, c1) in enumerate(partition_range(len(later), threads)):
                if c0 == c1:
                    continue
                cols = later[c0:c1]
                j, i = pat.tile_ij(cols, ni)
                i = rows[i % ni]
                col_j = pat.row_major(a_base, i, j, nj, elem=ELEM)
                col_kk = pat.row_major(a_base, i, np.full(len(i), k), nj, elem=ELEM)
                # r[k][j] += A[i][k] * A[i][j]; then A[i][j] -= r * A[i][k]
                # A[i][j] -= r[k][j] * A[i][k]; r[k][j] stays in a register
                # across the i loop.
                update.emit(
                    builder, len(i),
                    {
                        "b": col_kk,
                        "a": col_j,
                        "a_out": col_j,
                    },
                    tid=tid, pc_base=32,
                )
        return builder.finish()
