"""``chol`` — Cholesky decomposition (PolyBench).

Left-looking Cholesky ``A = L L^T``: for every column ``k`` the kernel
divides the sub-column by the pivot, then applies a rank-1 update to the
trailing submatrix.  The trailing update repeatedly sweeps a shrinking but
large triangular region, and the column accesses stride by the full row
length — poor spatial locality over a working set that outgrows the host
caches quickly.  The paper finds cholesky memory-intensive with irregular
access and a good NMC fit (Section 3.4).

Note on Table 2: the paper prints chol's dimension levels as
``64 384 128 320 512``, which is not monotone in the min..max order; we use
the sorted levels ``(64, 128, 320, 384, 512)``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range

#: Byte spacing of scaled matrix elements (one 64 B line per element).
ELEM = 64


class Cholesky(Workload):
    name = "chol"
    description = "Cholesky Decomposition"

    _DIM = SizeMapping(alpha=4.2, beta=1 / 3, minimum=12)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.04, beta=1.0, minimum=1, maximum=2)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (64, 128, 320, 384, 512), 2000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (10, 20, 30, 50, 80), 60, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        threads = sizes["threads"]
        repeats = sizes["iterations"]
        # Each scaled matrix element stands for a cache-line-sized block of
        # the full-size matrix, so elements are laid out one line (64 B)
        # apart: the trailing-update working set measured in cache lines
        # matches the full-scale kernel's (see DESIGN.md, trace scaling).
        space = AddressSpace()
        a_base = space.alloc(n * n * ELEM)

        divide = pat.scalar_divide()
        update = pat.rank1_update()
        builder = TraceBuilder()
        for _rep in range(repeats):
            for k in range(n - 1):
                below = np.arange(k + 1, n, dtype=np.int64)
                # Column scaling: A[i][k] /= A[k][k] — stride-n column walk.
                col_k = pat.row_major(a_base, below, np.full(len(below), k), n, elem=ELEM)
                divide.emit(
                    builder, len(below),
                    {"x": col_k, "x_out": col_k},
                    tid=k % threads, pc_base=0,
                )
                # Trailing rank-1 update of the lower triangle, row-parallel:
                # A[i][j] -= A[i][k] * A[j][k]  for k < j <= i < n.
                for tid, (r0, r1) in enumerate(partition_range(len(below), threads)):
                    if r0 == r1:
                        continue
                    rows = below[r0:r1]
                    counts = rows - k  # row i updates columns k+1 .. i
                    i = np.repeat(rows, counts)
                    j = np.concatenate(
                        [np.arange(k + 1, r + 1, dtype=np.int64) for r in rows]
                    )
                    update.emit(
                        builder, len(i),
                        {
                            "l": pat.row_major(a_base, i, np.full(len(i), k), n, elem=ELEM),
                            "u": pat.row_major(a_base, j, np.full(len(i), k), n, elem=ELEM),
                            "a": pat.row_major(a_base, i, j, n, elem=ELEM),
                            "a_out": pat.row_major(a_base, i, j, n, elem=ELEM),
                        },
                        tid=tid, pc_base=16,
                    )
        return builder.finish()
