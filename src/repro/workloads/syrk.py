"""``syrk`` — symmetric rank-k update (PolyBench).

Computes ``C = alpha * A A^T + beta * C``.  The inner product walks two
rows of ``A`` simultaneously (both unit-stride) and each row of ``A`` is
reused across a whole row of ``C`` — classic high-locality dense linear
algebra that the host cache hierarchy exploits fully; not NMC-suitable per
the paper (Section 3.4, observation three).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Syrk(Workload):
    name = "syrk"
    description = "Symmetric Rank-k Operations"

    _DIM_I = SizeMapping(alpha=3.5, beta=1 / 3, minimum=8)
    _DIM_J = SizeMapping(alpha=3.0, beta=1 / 3, minimum=6)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimension_i", (64, 128, 320, 512, 640), 2000, self._DIM_I),
            DoEParameter("dimension_j", (64, 128, 320, 512, 640), 2000, self._DIM_J),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimension_i"]   # C is n x n
        k = sizes["dimension_j"]   # A is n x k
        threads = min(sizes["threads"], n)
        space = AddressSpace()
        a_base = space.alloc(n * k * 8)
        c_base = space.alloc(n * n * 8)

        dot = pat.dot_product()
        update = pat.stream_update()
        builder = TraceBuilder()
        for tid, (r0, r1) in enumerate(partition_range(n, threads)):
            if r0 == r1:
                continue
            for i in range(r0, r1):
                # C[i][j] += sum_l A[i][l] * A[j][l]  for j <= i
                js = np.arange(i + 1, dtype=np.int64)
                jj = np.repeat(js, k)
                ll = np.tile(np.arange(k, dtype=np.int64), len(js))
                ii = np.full(len(jj), i, dtype=np.int64)
                dot.emit(
                    builder, len(jj),
                    {
                        "a": pat.row_major(a_base, ii, ll, k),
                        "x": pat.row_major(a_base, jj, ll, k),
                    },
                    tid=tid, pc_base=0,
                )
                # Scale and write the C row: C[i][j] = alpha*acc + beta*C[i][j]
                c_row = pat.row_major(c_base, np.full(len(js), i), js, n)
                update.emit(
                    builder, len(js), {"a": c_row, "a_out": c_row},
                    tid=tid, pc_base=16,
                )
        return builder.finish()
