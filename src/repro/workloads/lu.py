"""``lu`` — LU decomposition (PolyBench).

Right-looking LU without pivoting: for each pivot ``k``, scale the
sub-column, then rank-1-update the trailing submatrix.  Unlike our
Cholesky (which walks columns), this implementation processes the trailing
update *row-major with blocking*, the way PolyBench's loop nest streams —
consecutive ``j`` accesses are unit-stride and the pivot row stays
cache-resident.  The paper finds lu locality-friendly and therefore not
NMC-suitable (Section 3.4, observation three); the contrast with chol is
the access order, not the arithmetic.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Lu(Workload):
    name = "lu"
    description = "LU Decomposition"

    _DIM = SizeMapping(alpha=3.5, beta=1 / 3, minimum=12)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.004, beta=1.0, minimum=1, maximum=2)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (196, 256, 320, 420, 512), 2000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (98, 128, 256, 420, 512), 2000, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        threads = sizes["threads"]
        repeats = sizes["iterations"]
        space = AddressSpace()
        a_base = space.alloc(n * n * 8)

        divide = pat.scalar_divide()
        update = pat.rank1_update()
        builder = TraceBuilder()
        for _rep in range(repeats):
            for k in range(n - 1):
                below = np.arange(k + 1, n, dtype=np.int64)
                # Row-major pivot-row scaling A[k][j] /= A[k][k]: unit stride.
                row_k = pat.row_major(a_base, np.full(len(below), k), below, n)
                divide.emit(
                    builder, len(below), {"x": row_k, "x_out": row_k},
                    tid=k % threads, pc_base=0,
                )
                # Trailing update, row-parallel, inner loop over j (unit
                # stride): A[i][j] -= A[i][k] * A[k][j].
                for tid, (r0, r1) in enumerate(partition_range(len(below), threads)):
                    if r0 == r1:
                        continue
                    rows = below[r0:r1]
                    i, j = pat.tile_ij(rows, len(below))
                    j = below[j % len(below)]
                    update.emit(
                        builder, len(i),
                        {
                            "l": pat.row_major(a_base, i, np.full(len(i), k), n),
                            "u": pat.row_major(a_base, np.full(len(i), k), j, n),
                            "a": pat.row_major(a_base, i, j, n),
                            "a_out": pat.row_major(a_base, i, j, n),
                        },
                        tid=tid, pc_base=16,
                    )
        return builder.finish()
