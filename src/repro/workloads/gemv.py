"""``gemv`` — vector multiply and matrix addition (PolyBench ``gemver``).

Performs the gemver sequence: a rank-2 matrix update
``A += u1 v1^T + u2 v2^T`` followed by two matrix-vector products, all
row-major streams with unit stride.  The vectors stay cache-resident and
the matrix streams are perfectly prefetchable, so the host cache hierarchy
and prefetchers absorb nearly all memory latency — the paper finds gemver
*not* NMC-suitable (Section 3.4, observation three).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import InstructionTrace, TraceBuilder
from . import _patterns as pat
from .base import AddressSpace, DoEParameter, SizeMapping, Workload, partition_range


class Gemv(Workload):
    name = "gemv"
    description = "Vector Multiply and Matrix Addition"

    _DIM = SizeMapping(alpha=1.4, beta=0.5, minimum=8)
    _THREADS = SizeMapping(alpha=1.0, beta=1.0, minimum=1, apply_scale=False)
    _ITER = SizeMapping(alpha=0.016, beta=1.0, minimum=1, maximum=3)

    @property
    def parameters(self) -> tuple[DoEParameter, ...]:
        return (
            DoEParameter("dimensions", (500, 750, 1250, 2000, 2250), 8000, self._DIM),
            DoEParameter("threads", (4, 8, 16, 32, 64), 32, self._THREADS),
            DoEParameter("iterations", (50, 60, 80, 100, 150), 60, self._ITER),
        )

    def _generate(
        self,
        sizes: Mapping[str, int],
        raw: Mapping[str, float],
        rng: np.random.Generator,
    ) -> InstructionTrace:
        n = sizes["dimensions"]
        threads = min(sizes["threads"], n)
        repeats = sizes["iterations"]
        space = AddressSpace()
        a_base = space.alloc(n * n * 8)
        u_base = space.alloc(n * 8)
        v_base = space.alloc(n * 8)
        space.alloc(n * 8)  # x operand region
        w_base = space.alloc(n * 8)

        rank1 = pat.rank1_update()
        dot = pat.dot_product()
        builder = TraceBuilder()
        for _rep in range(repeats):
            for tid, (r0, r1) in enumerate(partition_range(n, threads)):
                if r0 == r1:
                    continue
                rows = np.arange(r0, r1)
                i, j = pat.tile_ij(rows, n)
                a_addrs = pat.row_major(a_base, i, j, n)
                # Phase 1: A[i][j] += u[i] * v[j]  (row-major RMW stream).
                rank1.emit(
                    builder, len(i),
                    {
                        "l": pat.vector_addr(u_base, i),
                        "u": pat.vector_addr(v_base, j),
                        "a": a_addrs,
                        "a_out": a_addrs,
                    },
                    tid=tid, pc_base=0,
                )
                # Phase 2: x[i] += A[i][j] * w[j]  (row-major read stream,
                # w vector fully cache-resident).
                dot.emit(
                    builder, len(i),
                    {
                        "a": a_addrs,
                        "x": pat.vector_addr(w_base, j),
                    },
                    tid=tid, pc_base=16,
                )
        return builder.finish()
