"""NAPEL reproduction: NMC performance/energy prediction via ensemble
learning (Singh et al., DAC 2019).

Quickstart
----------
>>> from repro import (
...     get_workload, SimulationCampaign, NapelTrainer, analyze_trace,
... )
>>> atax = get_workload("atax")
>>> campaign = SimulationCampaign()           # Table 3 NMC system
>>> training = campaign.run(atax)             # CCD campaign (11 configs)
>>> trained = NapelTrainer().train(training)  # tuned random forests
>>> profile = analyze_trace(
...     atax.generate(atax.test_config()), workload="atax"
... )
>>> pred = trained.model.predict(profile, campaign.arch)
>>> pred.ipc > 0 and pred.time_s > 0
True

See README.md for the architecture overview, DESIGN.md for the system
inventory and per-experiment index, and ``benchmarks/`` for the harness
that regenerates every table and figure of the paper.
"""

# Defined before the subpackage imports below: repro.obs reads it while the
# package is still initialising (manifests record the package version).
__version__ = "1.1.0"

from .backends import (
    BackendDescriptor,
    LinkParams,
    backend_names,
    backend_summaries,
    get_backend,
    register_backend,
)
from .config import (
    DRAMTiming,
    HostConfig,
    HostEnergyParams,
    NMCConfig,
    NMCEnergyParams,
    RuntimeConfig,
    default_host_config,
    default_nmc_config,
    default_runtime_config,
)
from .core import (
    CampaignCache,
    load_model,
    save_model,
    NapelModel,
    NapelPrediction,
    NapelTrainer,
    SimulationCampaign,
    SuitabilityResult,
    TrainedNapel,
    TrainingSet,
    analyze_suitability,
    evaluate_loocv,
)
from .doe import ParameterSpace, central_composite, ccd_run_count
from .errors import ReproError, SchemaMismatchError
from .hostsim import HostSimulator
from .obs import RunManifest, configure_logging, get_logger, metrics
from .schema import FeatureBlock, FeatureSchema, active_schema
from .nmcsim import NMCSimulator, SimulationResult, simulate
from .profiler import ApplicationProfile, analyze_trace
from .workloads import WORKLOAD_NAMES, all_workloads, get_workload

__all__ = [
    "__version__",
    # configuration
    "NMCConfig",
    "HostConfig",
    "DRAMTiming",
    "NMCEnergyParams",
    "HostEnergyParams",
    "RuntimeConfig",
    "default_nmc_config",
    "default_host_config",
    "default_runtime_config",
    # workloads & analysis
    "get_workload",
    "all_workloads",
    "WORKLOAD_NAMES",
    "analyze_trace",
    "ApplicationProfile",
    # simulators
    "NMCSimulator",
    "simulate",
    "SimulationResult",
    "HostSimulator",
    # DoE
    "ParameterSpace",
    "central_composite",
    "ccd_run_count",
    # NAPEL core
    "SimulationCampaign",
    "CampaignCache",
    "TrainingSet",
    "NapelTrainer",
    "TrainedNapel",
    "NapelModel",
    "NapelPrediction",
    "evaluate_loocv",
    "analyze_suitability",
    "SuitabilityResult",
    "save_model",
    "load_model",
    # memory backends
    "BackendDescriptor",
    "LinkParams",
    "get_backend",
    "register_backend",
    "backend_names",
    "backend_summaries",
    # feature schema
    "FeatureSchema",
    "FeatureBlock",
    "active_schema",
    # observability
    "configure_logging",
    "get_logger",
    "metrics",
    "RunManifest",
    # errors
    "ReproError",
    "SchemaMismatchError",
]
