"""Regression metrics, including the paper's MRE (Equation 1)."""

from __future__ import annotations

import numpy as np

from ..errors import MLError


def _check(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise MLError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise MLError("metrics need at least one sample")
    return y_true, y_pred


def mean_relative_error(y_true, y_pred) -> float:
    """MRE = (1/N) * sum |y' - y| / y   (paper Equation 1).

    The paper's targets (IPC, energy) are strictly positive; zero true
    values are rejected rather than silently skipped.
    """
    y_true, y_pred = _check(y_true, y_pred)
    if (y_true == 0).any():
        raise MLError("MRE is undefined for zero true values")
    return float(np.mean(np.abs(y_pred - y_true) / np.abs(y_true)))


def mean_absolute_error(y_true, y_pred) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination (1 - SSE/SST)."""
    y_true, y_pred = _check(y_true, y_pred)
    sse = float(np.sum((y_true - y_pred) ** 2))
    sst = float(np.sum((y_true - y_true.mean()) ** 2))
    if sst == 0.0:
        return 1.0 if sse == 0.0 else 0.0
    return 1.0 - sse / sst
