"""Extremely randomized trees (Geurts et al. 2006).

A drop-in alternative ensemble to the random forest: trees are grown on
the *full* training set (no bootstrap by default) and every split uses a
uniformly random threshold instead of the best one.  The extra
randomisation trades a little bias for a large variance reduction and much
cheaper split search — a natural ablation point for NAPEL's choice of
plain random forests.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from .tree import RegressionTree


class ExtraTreesRegressor:
    """Ensemble of random-threshold trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_features="third",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        bootstrap: bool = False,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise MLError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[RegressionTree] = []
        self.feature_importances_: np.ndarray | None = None

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_features": self.max_features,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
        }

    def clone(self, **overrides) -> "ExtraTreesRegressor":
        params = self.get_params()
        params.update(overrides)
        return ExtraTreesRegressor(**params)

    def fit(self, X, y) -> "ExtraTreesRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D and aligned with y")
        n = len(y)
        if n == 0:
            raise MLError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter="random",
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            sample = (
                rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise NotFittedError("ExtraTreesRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros(len(X))
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)
