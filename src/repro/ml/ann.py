"""Multi-layer perceptron regressor — the Ipek et al. [17] ANN baseline.

A small fully-connected network (ReLU hidden layers, linear output)
trained with Adam on standardised inputs and targets.  Early stopping on a
held-out validation split guards against overfitting the small DoE
training sets — the paper notes the ANN "requires a much larger training
dataset to reach NAPEL's accuracy" and takes up to 5x longer to train,
both of which this implementation reproduces naturally.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from .preprocessing import StandardScaler


class MLPRegressor:
    """Numpy MLP with Adam and early stopping."""

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (64, 32),
        learning_rate: float = 1e-3,
        max_epochs: int = 400,
        batch_size: int = 32,
        l2: float = 1e-4,
        validation_fraction: float = 0.15,
        patience: int = 40,
        random_state: int | None = None,
    ) -> None:
        if not hidden_layers:
            raise MLError("at least one hidden layer is required")
        if any(h < 1 for h in hidden_layers):
            raise MLError("hidden layer sizes must be >= 1")
        if not 0.0 <= validation_fraction < 1.0:
            raise MLError("validation_fraction must be in [0, 1)")
        self.hidden_layers = tuple(hidden_layers)
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.random_state = random_state
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._x_scaler: StandardScaler | None = None
        self._y_mean = 0.0
        self._y_scale = 1.0
        self.n_epochs_: int = 0

    def get_params(self) -> dict:
        return {
            "hidden_layers": self.hidden_layers,
            "learning_rate": self.learning_rate,
            "max_epochs": self.max_epochs,
            "batch_size": self.batch_size,
            "l2": self.l2,
            "validation_fraction": self.validation_fraction,
            "patience": self.patience,
            "random_state": self.random_state,
        }

    def clone(self, **overrides) -> "MLPRegressor":
        params = self.get_params()
        params.update(overrides)
        return MLPRegressor(**params)

    # ------------------------------------------------------------- model

    def _init_weights(self, n_in: int, rng: np.random.Generator) -> None:
        sizes = (n_in, *self.hidden_layers, 1)
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(2.0 / fan_in)  # He initialisation for ReLU
            self._weights.append(rng.normal(0, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        h = X
        last = len(self._weights) - 1
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = h @ w + b
            h = z if i == last else np.maximum(z, 0.0)
            activations.append(h)
        return h, activations

    def fit(self, X, y) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D and aligned with y")
        n = len(y)
        if n < 2:
            raise MLError("MLP needs at least two samples")
        rng = np.random.default_rng(self.random_state)
        self._x_scaler = StandardScaler().fit(X)
        Xs = self._x_scaler.transform(X)
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale

        # Validation split for early stopping.
        idx = rng.permutation(n)
        n_val = int(n * self.validation_fraction)
        val_idx, train_idx = idx[:n_val], idx[n_val:]
        if len(train_idx) == 0:
            train_idx = idx
            val_idx = idx[:0]
        Xt, yt = Xs[train_idx], ys[train_idx]
        Xv, yv = Xs[val_idx], ys[val_idx]

        self._init_weights(X.shape[1], rng)
        m = [np.zeros_like(w) for w in self._weights]
        v = [np.zeros_like(w) for w in self._weights]
        mb = [np.zeros_like(b) for b in self._biases]
        vb = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        best_val = np.inf
        best_state: tuple | None = None
        stall = 0
        step = 0
        for epoch in range(self.max_epochs):
            order = rng.permutation(len(Xt))
            for start in range(0, len(Xt), self.batch_size):
                batch = order[start:start + self.batch_size]
                xb, yb = Xt[batch], yt[batch]
                pred, acts = self._forward(xb)
                grad = 2.0 * (pred.ravel() - yb)[:, None] / len(batch)
                # Backprop through the linear output and ReLU hiddens.
                grads_w = []
                grads_b = []
                delta = grad
                for layer in reversed(range(len(self._weights))):
                    a_prev = acts[layer]
                    grads_w.append(a_prev.T @ delta + self.l2 * self._weights[layer])
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = delta @ self._weights[layer].T
                        delta = delta * (acts[layer] > 0)
                grads_w.reverse()
                grads_b.reverse()
                step += 1
                lr = self.learning_rate
                for i in range(len(self._weights)):
                    m[i] = beta1 * m[i] + (1 - beta1) * grads_w[i]
                    v[i] = beta2 * v[i] + (1 - beta2) * grads_w[i] ** 2
                    mb[i] = beta1 * mb[i] + (1 - beta1) * grads_b[i]
                    vb[i] = beta2 * vb[i] + (1 - beta2) * grads_b[i] ** 2
                    mhat = m[i] / (1 - beta1**step)
                    vhat = v[i] / (1 - beta2**step)
                    self._weights[i] -= lr * mhat / (np.sqrt(vhat) + eps)
                    mbh = mb[i] / (1 - beta1**step)
                    vbh = vb[i] / (1 - beta2**step)
                    self._biases[i] -= lr * mbh / (np.sqrt(vbh) + eps)
            self.n_epochs_ = epoch + 1
            if len(Xv):
                val_pred, _ = self._forward(Xv)
                val_loss = float(np.mean((val_pred.ravel() - yv) ** 2))
                if val_loss < best_val - 1e-9:
                    best_val = val_loss
                    best_state = (
                        [w.copy() for w in self._weights],
                        [b.copy() for b in self._biases],
                    )
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.patience:
                        break
        if best_state is not None:
            self._weights, self._biases = best_state
        return self

    def predict(self, X) -> np.ndarray:
        if not self._weights or self._x_scaler is None:
            raise NotFittedError("MLPRegressor is not fitted")
        Xs = self._x_scaler.transform(np.asarray(X, dtype=np.float64))
        pred, _ = self._forward(Xs)
        return pred.ravel() * self._y_scale + self._y_mean
