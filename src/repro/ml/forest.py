"""Random forest regression (Breiman 2001) — NAPEL's learner.

Bootstrap-aggregated CART trees with per-split random feature subsets.
Besides prediction, the forest exposes out-of-bag (OOB) error — used by
the hyper-parameter tuner as a cheap internal validation signal — and
aggregated feature importances for analysis.

Tree fitting parallelizes over worker processes (``jobs``): every tree's
RNG seed and bootstrap sample are pre-drawn from the forest RNG in tree
order *before* dispatch, so serial and parallel fits consume the random
stream identically and produce bit-identical forests.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from ..parallel import map_jobs, resolve_jobs
from .tree import RegressionTree


def _fit_tree_chunk(job) -> list[RegressionTree]:
    """Worker-side body: fit one chunk of pre-planned trees in order."""
    X, y, params, plans = job
    trees = []
    for seed, sample in plans:
        tree = RegressionTree(
            max_depth=params["max_depth"],
            min_samples_leaf=params["min_samples_leaf"],
            max_features=params["max_features"],
            rng=np.random.default_rng(seed),
        )
        if sample is None:
            tree.fit(X, y)
        else:
            tree.fit(X[sample], y[sample])
        trees.append(tree)
    return trees


class RandomForestRegressor:
    """Bagged ensemble of :class:`~repro.ml.tree.RegressionTree`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature subsample; default "third" (the classic
        regression-forest setting of p/3).
    max_depth, min_samples_leaf:
        Passed to the base trees.
    bootstrap:
        Draw a bootstrap resample per tree (True for a proper forest).
    random_state:
        Seed for reproducibility.
    jobs:
        Worker processes for tree fitting (1 = serial, 0 = all CPUs,
        None = honour ``REPRO_JOBS``).  Serial and parallel fits are
        bit-identical.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_features="third",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        random_state: int | None = None,
        jobs: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise MLError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.jobs = jobs
        self.trees_: list[RegressionTree] = []
        self.oob_prediction_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None

    def get_params(self) -> dict:
        """Constructor parameters (for tuning / cloning)."""
        return {
            "n_estimators": self.n_estimators,
            "max_features": self.max_features,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
            "jobs": self.jobs,
        }

    def clone(self, **overrides) -> "RandomForestRegressor":
        params = self.get_params()
        params.update(overrides)
        return RandomForestRegressor(**params)

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D and aligned with y")
        n = len(y)
        if n == 0:
            raise MLError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        # Pre-draw every tree's seed and bootstrap sample in tree order:
        # the RNG stream is consumed exactly as a serial loop would, so
        # the fitted forest is independent of the worker count.
        plans: list[tuple[int, np.ndarray | None]] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**63))
            sample = rng.integers(0, n, size=n) if self.bootstrap else None
            plans.append((seed, sample))
        self.trees_ = self._fit_trees(X, y, plans)
        importances = np.zeros(X.shape[1])
        for tree in self.trees_:
            importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        self._aggregate_oob(X, [sample for _, sample in plans])
        return self

    def _fit_trees(
        self, X: np.ndarray, y: np.ndarray,
        plans: list[tuple[int, np.ndarray | None]],
    ) -> list[RegressionTree]:
        jobs_n = resolve_jobs(self.jobs)
        params = {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        if jobs_n <= 1 or len(plans) <= 1:
            return _fit_tree_chunk((X, y, params, plans))
        # One contiguous chunk per worker keeps X/y pickling to jobs_n
        # round trips; chunk order is restored by map_jobs, so the tree
        # list comes back in plan order.
        jobs_n = min(jobs_n, len(plans))
        bounds = np.linspace(0, len(plans), jobs_n + 1).astype(int)
        chunks = [
            (X, y, params, plans[lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        fitted = map_jobs(_fit_tree_chunk, chunks, jobs_n=jobs_n, chunk=1)
        return [tree for chunk_trees in fitted for tree in chunk_trees]

    def _tree_predictions(self, X: np.ndarray) -> np.ndarray:
        """(n_trees, n_samples) matrix of per-tree predictions."""
        return np.stack([tree.predict(X) for tree in self.trees_])

    def _aggregate_oob(
        self, X: np.ndarray, samples: list[np.ndarray | None]
    ) -> None:
        """Per-sample OOB prediction from the stacked per-tree outputs."""
        if not self.bootstrap:
            self.oob_prediction_ = None
            return
        n = len(X)
        oob_mask = np.ones((len(self.trees_), n), dtype=bool)
        for t, sample in enumerate(samples):
            oob_mask[t, np.unique(sample)] = False
        if not oob_mask.any():
            self.oob_prediction_ = None
            return
        preds = self._tree_predictions(X)
        oob_count = oob_mask.sum(axis=0)
        oob_sum = np.where(oob_mask, preds, 0.0).sum(axis=0)
        oob = np.full(n, np.nan)
        seen = oob_count > 0
        oob[seen] = oob_sum[seen] / oob_count[seen]
        self.oob_prediction_ = oob

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return self._tree_predictions(X).mean(axis=0)

    def oob_error(self, y) -> float:
        """Out-of-bag RMSE against the training targets.

        RMSE (not relative error) so the criterion stays well-defined for
        log-transformed targets that cross zero.  Samples never left out
        (possible with few trees) are skipped.
        """
        if self.oob_prediction_ is None:
            raise MLError("OOB error requires bootstrap=True and a fit")
        y = np.asarray(y, dtype=np.float64).ravel()
        mask = ~np.isnan(self.oob_prediction_)
        if not mask.any():
            raise MLError("no out-of-bag samples available")
        err = self.oob_prediction_[mask] - y[mask]
        return float(np.sqrt(np.mean(err**2)))
