"""Random forest regression (Breiman 2001) — NAPEL's learner.

Bootstrap-aggregated CART trees with per-split random feature subsets.
Besides prediction, the forest exposes out-of-bag (OOB) error — used by
the hyper-parameter tuner as a cheap internal validation signal — and
aggregated feature importances for analysis.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from .tree import RegressionTree


class RandomForestRegressor:
    """Bagged ensemble of :class:`~repro.ml.tree.RegressionTree`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature subsample; default "third" (the classic
        regression-forest setting of p/3).
    max_depth, min_samples_leaf:
        Passed to the base trees.
    bootstrap:
        Draw a bootstrap resample per tree (True for a proper forest).
    random_state:
        Seed for reproducibility.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_features="third",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise MLError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[RegressionTree] = []
        self.oob_prediction_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None

    def get_params(self) -> dict:
        """Constructor parameters (for tuning / cloning)."""
        return {
            "n_estimators": self.n_estimators,
            "max_features": self.max_features,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
        }

    def clone(self, **overrides) -> "RandomForestRegressor":
        params = self.get_params()
        params.update(overrides)
        return RandomForestRegressor(**params)

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D and aligned with y")
        n = len(y)
        if n == 0:
            raise MLError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.random_state)
        self.trees_ = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
            importances += tree.feature_importances_
            if self.bootstrap:
                oob_mask = np.ones(n, dtype=bool)
                oob_mask[np.unique(sample)] = False
                if oob_mask.any():
                    pred = tree.predict(X[oob_mask])
                    oob_sum[oob_mask] += pred
                    oob_count[oob_mask] += 1
        self.feature_importances_ = importances / self.n_estimators
        if self.bootstrap and (oob_count > 0).any():
            oob = np.full(n, np.nan)
            seen = oob_count > 0
            oob[seen] = oob_sum[seen] / oob_count[seen]
            self.oob_prediction_ = oob
        else:
            self.oob_prediction_ = None
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros(len(X))
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)

    def oob_error(self, y) -> float:
        """Out-of-bag RMSE against the training targets.

        RMSE (not relative error) so the criterion stays well-defined for
        log-transformed targets that cross zero.  Samples never left out
        (possible with few trees) are skipped.
        """
        if self.oob_prediction_ is None:
            raise MLError("OOB error requires bootstrap=True and a fit")
        y = np.asarray(y, dtype=np.float64).ravel()
        mask = ~np.isnan(self.oob_prediction_)
        if not mask.any():
            raise MLError("no out-of-bag samples available")
        err = self.oob_prediction_[mask] - y[mask]
        return float(np.sqrt(np.mean(err**2)))
