"""Permutation feature importance.

Model-agnostic importance: shuffle one feature column at a time and
measure how much a scoring metric degrades.  Complements the forests'
impurity-based ``feature_importances_`` (which are biased toward
high-cardinality features) and works for the ANN and model-tree baselines
too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MLError
from ..schema import FeatureSchema
from .metrics import rmse


@dataclass(frozen=True)
class PermutationImportance:
    """Per-feature importances with the base score they are relative to."""

    importances: np.ndarray   #: mean score degradation per feature
    std: np.ndarray           #: std over repeats
    base_score: float

    def top(
        self,
        names: FeatureSchema | list[str] | tuple[str, ...],
        k: int = 10,
    ) -> list[tuple[str, float]]:
        """The ``k`` most important (name, importance) pairs.

        ``names`` is a sequence of column names or a
        :class:`~repro.schema.FeatureSchema` (its ordered names are used).
        """
        if isinstance(names, FeatureSchema):
            names = names.names
        if len(names) != len(self.importances):
            raise MLError(
                f"{len(names)} names for {len(self.importances)} features"
            )
        order = np.argsort(self.importances)[::-1][:k]
        return [(names[i], float(self.importances[i])) for i in order]


def permutation_importance(
    model,
    X,
    y,
    *,
    n_repeats: int = 5,
    metric=rmse,
    random_state: int | None = None,
) -> PermutationImportance:
    """Permutation importance of every feature of ``model`` on (X, y).

    ``metric(y_true, y_pred)`` must be a lower-is-better score; importance
    is the mean increase of the metric when the feature is shuffled.
    """
    # Shuffling happens in place, so work on a private copy — callers may
    # pass the TrainingSet's shared (read-only) feature matrix.
    X = np.array(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim != 2 or len(X) != len(y):
        raise MLError("X must be 2-D and aligned with y")
    if n_repeats < 1:
        raise MLError("n_repeats must be >= 1")
    rng = np.random.default_rng(random_state)
    base = float(metric(y, model.predict(X)))
    n_features = X.shape[1]
    scores = np.zeros((n_features, n_repeats))
    for j in range(n_features):
        column = X[:, j].copy()
        for r in range(n_repeats):
            X[:, j] = rng.permutation(column)
            scores[j, r] = metric(y, model.predict(X)) - base
        X[:, j] = column
    return PermutationImportance(
        importances=scores.mean(axis=1),
        std=scores.std(axis=1),
        base_score=base,
    )
