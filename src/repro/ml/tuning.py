"""Hyper-parameter grid search (paper Section 2.5, "Train+Tune").

"First, we perform as many iterations of the cross-validation process as
hyper-parameter combinations.  Second, we compare all the generated models
... and select the best one."  :func:`grid_search` does exactly that: one
cross-validated score per combination, best model refitted on everything.

For random forests the out-of-bag error can be used instead of k-fold CV
(``use_oob=True``), which is substantially cheaper and statistically
equivalent for bagged ensembles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import MLError
from .cross_validation import KFold, cross_val_score
from .forest import RandomForestRegressor


@dataclass
class GridSearchResult:
    """Outcome of a grid search: best model plus the full score table."""

    best_model: object
    best_params: dict
    best_score: float
    scores: list[tuple[dict, float]] = field(default_factory=list)


def _combinations(grid: Mapping[str, Sequence]) -> list[dict]:
    keys = list(grid)
    out = []
    for values in itertools.product(*(grid[k] for k in keys)):
        out.append(dict(zip(keys, values)))
    return out


def grid_search(
    base_model,
    grid: Mapping[str, Sequence],
    X,
    y,
    *,
    cv: KFold | None = None,
    use_oob: bool = False,
) -> GridSearchResult:
    """Exhaustive search over ``grid``; lower score (MRE) is better.

    ``base_model`` must expose ``clone(**params)``; the returned best model
    is refitted on the full data with the winning parameters.
    """
    combos = _combinations(grid)
    if not combos:
        raise MLError("empty hyper-parameter grid")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    scores: list[tuple[dict, float]] = []
    best_params: dict | None = None
    best_score = np.inf
    for params in combos:
        candidate = base_model.clone(**params)
        if use_oob:
            if not isinstance(candidate, RandomForestRegressor):
                raise MLError("use_oob requires a RandomForestRegressor")
            candidate.fit(X, y)
            score = candidate.oob_error(y)
        else:
            folds = cross_val_score(
                lambda p=params: base_model.clone(**p), X, y,
                cv=cv or KFold(n_splits=3, random_state=0),
            )
            score = float(np.mean(folds))
        scores.append((params, score))
        if score < best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    best_model = base_model.clone(**best_params)
    best_model.fit(X, y)
    return GridSearchResult(
        best_model=best_model,
        best_params=best_params,
        best_score=best_score,
        scores=scores,
    )
