"""Hyper-parameter grid search (paper Section 2.5, "Train+Tune").

"First, we perform as many iterations of the cross-validation process as
hyper-parameter combinations.  Second, we compare all the generated models
... and select the best one."  :func:`grid_search` does exactly that: one
cross-validated score per combination, best model refitted on everything.

For random forests the out-of-bag error can be used instead of k-fold CV
(``use_oob=True``), which is substantially cheaper and statistically
equivalent for bagged ensembles.

Combinations are independent, so with ``jobs > 1`` they are scored in
worker processes.  Scores are deterministic functions of (params, data,
seeds) and the best combination is picked by strict improvement in grid
order, so parallel and serial searches select the same model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import MLError
from ..obs import get_logger, metrics, tracer
from ..parallel import map_jobs, resolve_jobs
from .cross_validation import KFold, cross_val_score
from .forest import RandomForestRegressor

log = get_logger("repro.ml")


@dataclass
class GridSearchResult:
    """Outcome of a grid search: best model plus the full score table."""

    best_model: object
    best_params: dict
    best_score: float
    scores: list[tuple[dict, float]] = field(default_factory=list)


def _combinations(grid: Mapping[str, Sequence]) -> list[dict]:
    keys = list(grid)
    out = []
    for values in itertools.product(*(grid[k] for k in keys)):
        out.append(dict(zip(keys, values)))
    return out


def _score_combo(job) -> float:
    """Score one hyper-parameter combination (module-level: picklable)."""
    base_model, params, X, y, use_oob, cv = job
    metrics().inc("ml.tuning.combinations")
    with tracer().span(
        "ml.tuning.combo", params={k: str(v) for k, v in params.items()}
    ):
        candidate = base_model.clone(**params)
        if use_oob:
            if not isinstance(candidate, RandomForestRegressor):
                raise MLError("use_oob requires a RandomForestRegressor")
            candidate.fit(X, y)
            return candidate.oob_error(y)
        folds = cross_val_score(
            lambda: base_model.clone(**params), X, y,
            cv=cv or KFold(n_splits=3, random_state=0),
        )
        return float(np.mean(folds))


def grid_search(
    base_model,
    grid: Mapping[str, Sequence],
    X,
    y,
    *,
    cv: KFold | None = None,
    use_oob: bool = False,
    jobs: int | None = None,
) -> GridSearchResult:
    """Exhaustive search over ``grid``; lower score (MRE) is better.

    ``base_model`` must expose ``clone(**params)``; the returned best model
    is refitted on the full data with the winning parameters.  ``jobs``
    spreads the combinations over worker processes (1 = serial, 0 = all
    CPUs, None = honour ``REPRO_JOBS``) without changing the selection.
    """
    combos = _combinations(grid)
    if not combos:
        raise MLError("empty hyper-parameter grid")
    if use_oob and not isinstance(base_model, RandomForestRegressor):
        raise MLError("use_oob requires a RandomForestRegressor")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    log.info(
        "grid search start",
        extra={"ctx": {
            "combinations": len(combos),
            "scoring": "oob" if use_oob else "kfold",
            "rows": len(y),
        }},
    )
    with metrics().timer("ml.grid_search"):
        combo_scores = map_jobs(
            _score_combo,
            [(base_model, params, X, y, use_oob, cv) for params in combos],
            jobs_n=resolve_jobs(jobs),
            chunk=1,
        )
    scores: list[tuple[dict, float]] = []
    best_params: dict | None = None
    best_score = np.inf
    for params, score in zip(combos, combo_scores):
        scores.append((params, score))
        log.debug(
            "tuning iteration",
            extra={"ctx": {"params": params, "score": round(score, 6)}},
        )
        if score < best_score:
            best_score = score
            best_params = params
    assert best_params is not None
    log.info(
        "grid search done",
        extra={"ctx": {
            "best_params": best_params,
            "best_score": round(best_score, 6),
        }},
    )
    best_model = base_model.clone(**best_params)
    best_model.fit(X, y)
    return GridSearchResult(
        best_model=best_model,
        best_params=best_params,
        best_score=best_score,
        scores=scores,
    )
