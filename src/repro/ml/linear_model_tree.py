"""Linear model tree — the Guo et al. [13] baseline of paper Figure 5.

A shallow CART tree whose leaves hold ridge-regression models ("model
tree" in the M5 tradition).  The paper's observation is that this learner
"cannot capture the nonlinearity present in NMC performance and energy";
with ~400 features and a few hundred samples, the linear leaves also
extrapolate poorly for unseen applications — which is exactly the high MRE
Figure 5 shows.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from .linear import RidgeRegression
from .tree import RegressionTree


class ModelTree:
    """Shallow regression tree with linear (ridge) models at the leaves."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 8,
        alpha: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise MLError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.alpha = alpha
        self.random_state = random_state
        self.tree_: RegressionTree | None = None
        self._leaf_models: dict[int, RidgeRegression] = {}
        self._leaf_fallback: dict[int, float] = {}

    def get_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "alpha": self.alpha,
            "random_state": self.random_state,
        }

    def clone(self, **overrides) -> "ModelTree":
        params = self.get_params()
        params.update(overrides)
        return ModelTree(**params)

    def fit(self, X, y) -> "ModelTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        self.tree_ = RegressionTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            rng=np.random.default_rng(self.random_state),
        ).fit(X, y)
        leaves = self.tree_.apply(X)
        self._leaf_models = {}
        self._leaf_fallback = {}
        for leaf in np.unique(leaves):
            mask = leaves == leaf
            self._leaf_fallback[int(leaf)] = float(y[mask].mean())
            if mask.sum() >= 3:  # need a few points for a linear fit
                model = RidgeRegression(alpha=self.alpha)
                model.fit(X[mask], y[mask])
                self._leaf_models[int(leaf)] = model
        return self

    def predict(self, X) -> np.ndarray:
        if self.tree_ is None:
            raise NotFittedError("ModelTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        leaves = self.tree_.apply(X)
        out = np.empty(len(X))
        for leaf in np.unique(leaves):
            mask = leaves == leaf
            model = self._leaf_models.get(int(leaf))
            if model is None:
                out[mask] = self._leaf_fallback[int(leaf)]
            else:
                out[mask] = model.predict(X[mask])
        return out
