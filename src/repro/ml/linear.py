"""Ridge (L2-regularised) linear regression.

The building block of the Guo-et-al.-style model tree and a sanity
baseline on its own.  Solved in closed form via the regularised normal
equations; features are standardised internally so the regularisation is
scale-free.
"""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from .preprocessing import StandardScaler


class RidgeRegression:
    """Closed-form ridge regression with internal standardisation."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise MLError("alpha must be >= 0")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._scaler: StandardScaler | None = None

    def get_params(self) -> dict:
        return {"alpha": self.alpha}

    def clone(self, **overrides) -> "RidgeRegression":
        params = self.get_params()
        params.update(overrides)
        return RidgeRegression(**params)

    def fit(self, X, y) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D and aligned with y")
        if len(y) == 0:
            raise MLError("cannot fit on an empty dataset")
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        y_mean = y.mean()
        yc = y - y_mean
        n_features = Xs.shape[1]
        gram = Xs.T @ Xs + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xs.T @ yc)
        self.intercept_ = float(y_mean)
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None or self._scaler is None:
            raise NotFittedError("RidgeRegression is not fitted")
        Xs = self._scaler.transform(np.asarray(X, dtype=np.float64))
        return Xs @ self.coef_ + self.intercept_
