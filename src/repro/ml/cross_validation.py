"""Cross-validation splitters and scoring (paper Sections 2.5 and 3.3)."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import MLError
from .metrics import mean_relative_error


class KFold:
    """Classic k-fold splitter with optional shuffling."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_splits < 2:
            raise MLError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise MLError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class LeaveOneGroupOut:
    """Leave-one-group-out splitter.

    This is the paper's Section 3.3 evaluation protocol: each *application*
    is one group; the model is trained on all other applications' data and
    tested on the held-out application.
    """

    def split(
        self, groups
    ) -> Iterator[tuple[np.ndarray, np.ndarray, object]]:
        groups = np.asarray(groups)
        unique = list(dict.fromkeys(groups.tolist()))  # stable order
        if len(unique) < 2:
            raise MLError("LeaveOneGroupOut needs at least two groups")
        idx = np.arange(len(groups))
        for group in unique:
            test = idx[groups == group]
            train = idx[groups != group]
            yield train, test, group


def cross_val_score(
    model_factory: Callable[[], object],
    X,
    y,
    *,
    cv: KFold | None = None,
    metric: Callable = mean_relative_error,
) -> list[float]:
    """Fit/evaluate ``model_factory()`` across folds; returns fold scores."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    cv = cv or KFold(n_splits=5)
    scores: list[float] = []
    for train, test in cv.split(len(y)):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(float(metric(y[test], model.predict(X[test]))))
    return scores
