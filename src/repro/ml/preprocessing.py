"""Feature preprocessing: standardisation and constant-feature screening."""

from __future__ import annotations

import numpy as np

from ..errors import MLError, NotFittedError
from ..schema import FeatureSchema


def _check_matrix(X) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise MLError(f"expected a 2-D feature matrix, got shape {X.shape}")
    return X


class StandardScaler:
    """Zero-mean, unit-variance feature scaling.

    Constant features get scale 1 so they map to zero rather than NaN.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = _check_matrix(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = _check_matrix(X)
        if X.shape[1] != len(self.mean_):
            raise MLError(
                f"feature count mismatch: {X.shape[1]} vs {len(self.mean_)}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        return _check_matrix(X) * self.scale_ + self.mean_


class VarianceThreshold:
    """Screens out features whose variance is at or below a threshold.

    With a fixed architecture configuration, the architectural feature
    columns are constant across the training set; screening them keeps the
    tree split search honest (the paper notes RF "embeds automatic
    procedures to screen many input features" — this is the explicit
    pre-screen).
    """

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise MLError("threshold must be >= 0")
        self.threshold = threshold
        self.support_: np.ndarray | None = None

    def fit(self, X) -> "VarianceThreshold":
        X = _check_matrix(X)
        variances = X.var(axis=0)
        support = variances > self.threshold
        if not support.any():
            # Keep the single most-varying feature rather than none.
            support[int(np.argmax(variances))] = True
        self.support_ = support
        return self

    def transform(self, X) -> np.ndarray:
        if self.support_ is None:
            raise NotFittedError("VarianceThreshold is not fitted")
        X = _check_matrix(X)
        if X.shape[1] != len(self.support_):
            raise MLError(
                f"feature count mismatch: {X.shape[1]} vs {len(self.support_)}"
            )
        return X[:, self.support_]

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_selected(self) -> int:
        if self.support_ is None:
            raise NotFittedError("VarianceThreshold is not fitted")
        return int(self.support_.sum())

    def selected_names(self, schema: FeatureSchema) -> tuple[str, ...]:
        """Names of the kept columns under ``schema``."""
        if self.support_ is None:
            raise NotFittedError("VarianceThreshold is not fitted")
        if len(schema) != len(self.support_):
            raise MLError(
                f"schema has {len(schema)} features but the screen was "
                f"fitted on {len(self.support_)}"
            )
        return tuple(
            n for n, keep in zip(schema.names, self.support_) if keep
        )

    def subschema(self, schema: FeatureSchema) -> FeatureSchema:
        """The schema of the screened matrix (blocks emptied by the
        screen are dropped), so downstream consumers keep named columns.
        """
        if self.support_ is None:
            raise NotFittedError("VarianceThreshold is not fitted")
        if len(schema) != len(self.support_):
            raise MLError(
                f"schema has {len(schema)} features but the screen was "
                f"fitted on {len(self.support_)}"
            )
        return schema.subset(self.support_)
