"""CART regression tree (the random forest's base learner).

Standard variance-reduction splitting: at every node the best (feature,
threshold) pair minimises the summed squared error of the two children.
The split search is vectorised per feature with prefix sums, so fitting is
O(features * n log n) per node.  ``max_features`` enables the random
feature subsampling that random forests rely on.

Prediction over large matrices is vectorised too: rows traverse the tree
lock-stepped level by level (one numpy gather per level) instead of one
Python walk per row, with bit-identical results — the batch-predict path
the prediction server's microbatcher leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MLError, NotFittedError


@dataclass
class _Node:
    """One tree node: either a split (feature/threshold) or a leaf value."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "int" = -1   #: child indices into the node array (-1 = leaf)
    right: "int" = -1

    @property
    def is_leaf(self) -> bool:
        return self.left < 0


def _resolve_max_features(max_features, n_features: int) -> int:
    """Number of features examined per split."""
    if max_features is None:
        return n_features
    if isinstance(max_features, str):
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "third":
            return max(1, n_features // 3)
        if max_features == "log2":
            return max(1, int(np.log2(n_features)))
        raise MLError(f"unknown max_features {max_features!r}")
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise MLError("fractional max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    value = int(max_features)
    if value < 1:
        raise MLError("max_features must be >= 1")
    return min(value, n_features)


class RegressionTree:
    """A CART regression tree.

    Parameters mirror the usual conventions: ``max_depth`` bounds tree
    height (None = unbounded), ``min_samples_leaf`` the smallest allowed
    child, ``max_features`` the per-split feature subsample ("sqrt",
    "third", "log2", an int, a float fraction, or None for all).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features=None,
        splitter: str = "best",
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise MLError("max_depth must be >= 1 or None")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise MLError("invalid min_samples_leaf / min_samples_split")
        if splitter not in ("best", "random"):
            raise MLError("splitter must be 'best' or 'random'")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.splitter = splitter
        self.rng = rng or np.random.default_rng()
        self._nodes: list[_Node] = []
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # --------------------------------------------------------------- fit

    def fit(self, X, y) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise MLError("X must be 2-D")
        if len(X) != len(y):
            raise MLError("X and y length mismatch")
        if len(y) == 0:
            raise MLError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._k = _resolve_max_features(self.max_features, self.n_features_)
        self._nodes = []
        self._importance = np.zeros(self.n_features_)
        self._build(X, y, np.arange(len(y)), depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        return self

    def _build(self, X, y, idx: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        value = float(y[idx].mean())
        self._nodes.append(_Node(value=value))
        n = len(idx)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y[idx]) == 0.0
        ):
            return node_id
        split = self._best_split(X, y, idx)
        if split is None:
            return node_id
        feature, threshold, gain = split
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        self._importance[feature] += gain
        node = self._nodes[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X, y, left_idx, depth + 1)
        node.right = self._build(X, y, right_idx, depth + 1)
        return node_id

    def _best_split(
        self, X, y, idx: np.ndarray
    ) -> tuple[int, float, float] | None:
        n = len(idx)
        y_node = y[idx]
        sum_all = y_node.sum()
        sq_all = float(np.sum(y_node**2))
        sse_parent = sq_all - sum_all**2 / n
        features = self.rng.choice(
            self.n_features_, size=self._k, replace=False
        )
        min_leaf = self.min_samples_leaf
        if self.splitter == "random":
            return self._random_split(
                X, y_node, idx, features, sse_parent, min_leaf
            )

        # Vectorised over the feature subset: sort each candidate feature's
        # column, prefix-sum the targets, and score every admissible cut of
        # every feature in one shot.
        Xn = X[np.ix_(idx, features)]                       # (n, k)
        order = np.argsort(Xn, axis=0, kind="stable")
        xs = np.take_along_axis(Xn, order, axis=0)          # sorted values
        ys = y_node[order]                                  # aligned targets
        cum = np.cumsum(ys, axis=0)
        cum2 = np.cumsum(ys**2, axis=0)
        pos = np.arange(1, n)[:, None]                      # left-side sizes
        valid = (
            (xs[1:] != xs[:-1])
            & (pos >= min_leaf)
            & (n - pos >= min_leaf)
        )
        if not valid.any():
            return None
        left_sum = cum[:-1]
        left_sq = cum2[:-1]
        right_sum = sum_all - left_sum
        right_sq = sq_all - left_sq
        with np.errstate(invalid="ignore"):
            sse = (
                left_sq - left_sum**2 / pos
                + right_sq - right_sum**2 / (n - pos)
            )
        sse[~valid] = np.inf
        flat = int(np.argmin(sse))
        cut, col = divmod(flat, sse.shape[1])
        gain = sse_parent - float(sse[cut, col])
        if gain <= 1e-12:
            return None
        # Split predicate is `x <= threshold` with the threshold at the left
        # boundary value itself: the float midpoint of two adjacent values
        # can round up to the right value and produce an empty child.
        threshold = float(xs[cut, col])
        return (int(features[col]), threshold, gain)

    def _random_split(
        self, X, y_node, idx, features, sse_parent, min_leaf
    ) -> tuple[int, float, float] | None:
        """Extra-Trees-style splitting: one uniform random threshold per
        candidate feature, best-scoring feature wins."""
        n = len(idx)
        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for feature in features:
            x = X[idx, feature]
            lo, hi = float(x.min()), float(x.max())
            if lo == hi:
                continue
            threshold = float(self.rng.uniform(lo, hi))
            # uniform(lo, hi) can return hi itself; nudge inside.
            if threshold >= hi:
                threshold = lo + (hi - lo) / 2.0
            mask = x <= threshold
            n_left = int(mask.sum())
            if n_left < min_leaf or n - n_left < min_leaf:
                continue
            left = y_node[mask]
            right = y_node[~mask]
            sse = (
                float(np.sum(left**2)) - left.sum() ** 2 / n_left
                + float(np.sum(right**2)) - right.sum() ** 2 / (n - n_left)
            )
            gain = sse_parent - sse
            if gain > best_gain:
                best_gain = gain
                best = (int(feature), threshold, gain)
        return best

    # ----------------------------------------------------------- predict

    #: Matrices with at least this many rows take the level-wise
    #: vectorised traversal; below it, per-row Python traversal is
    #: cheaper than the numpy per-level call overhead.
    _VECTORIZE_MIN_ROWS = 16

    def __getstate__(self) -> dict:
        # The compact node arrays are a derived prediction cache;
        # persisting them would bloat pickled artifacts for no benefit.
        state = dict(self.__dict__)
        state.pop("_arrays", None)
        return state

    def _compact(self):
        """Node fields as flat arrays (lazily built, cached, unpickled).

        Leaves are made self-referential (``left == right == self``) and
        given feature 0, so the level-wise traversal can gather blindly:
        a row already at a leaf just stays there.
        """
        arrays = self.__dict__.get("_arrays")
        if arrays is None:
            nodes = self._nodes
            self_idx = np.arange(len(nodes), dtype=np.int64)
            left = np.array([n.left for n in nodes], dtype=np.int64)
            right = np.array([n.right for n in nodes], dtype=np.int64)
            leaf = left < 0
            arrays = (
                np.where(
                    leaf, 0,
                    np.array([n.feature for n in nodes], dtype=np.int64),
                ),
                np.array([n.threshold for n in nodes]),
                np.where(leaf, self_idx, left),
                np.where(leaf, self_idx, right),
                np.array([n.value for n in nodes]),
                leaf,
            )
            self.__dict__["_arrays"] = arrays
        return arrays

    def _apply_batch(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index per row, one numpy gather per tree level.

        Bit-identical to the per-row traversal: every row takes the same
        ``x <= threshold`` branches, just lock-stepped level by level
        across the whole matrix instead of row by row in Python.
        """
        feature, threshold, left, right, _value, leaf = self._compact()
        idx = np.zeros(len(X), dtype=np.int64)
        rows = np.arange(len(X))
        while not leaf[idx].all():
            go_left = X[rows, feature[idx]] <= threshold[idx]
            idx = np.where(go_left, left[idx], right[idx])
        return idx

    def predict(self, X) -> np.ndarray:
        if self.n_features_ is None:
            raise NotFittedError("RegressionTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise MLError(
                f"X must be 2-D with {self.n_features_} features, got {X.shape}"
            )
        if len(X) >= self._VECTORIZE_MIN_ROWS:
            _f, _t, _l, _r, value, _leaf = self._compact()
            return value[self._apply_batch(X)]
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._nodes[0]
            while not node.is_leaf:
                node = self._nodes[
                    node.left if row[node.feature] <= node.threshold else node.right
                ]
            out[i] = node.value
        return out

    def apply(self, X) -> np.ndarray:
        """Leaf index reached by every row (used by the model tree)."""
        if self.n_features_ is None:
            raise NotFittedError("RegressionTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if len(X) >= self._VECTORIZE_MIN_ROWS:
            return self._apply_batch(X)
        out = np.empty(len(X), dtype=np.int64)
        for i, row in enumerate(X):
            node_id = 0
            node = self._nodes[0]
            while not node.is_leaf:
                node_id = (
                    node.left if row[node.feature] <= node.threshold else node.right
                )
                node = self._nodes[node_id]
            out[i] = node_id
        return out

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Height of the fitted tree (0 for a single leaf)."""
        if not self._nodes:
            raise NotFittedError("RegressionTree is not fitted")

        def _depth(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(0)
