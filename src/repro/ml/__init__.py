"""From-scratch ensemble machine learning (paper Section 2.5).

The environment has no scikit-learn, so every learner NAPEL's evaluation
needs is implemented here on top of numpy:

* :class:`RandomForestRegressor` — NAPEL's model (Breiman 2001),
* :class:`MLPRegressor` — the ANN baseline (Ipek et al. [17]),
* :class:`ModelTree` — the linear decision tree baseline (Guo et al. [13]),
* :class:`RegressionTree`, :class:`RidgeRegression` — building blocks,
* cross-validation, grid-search hyper-parameter tuning, preprocessing and
  the paper's MRE metric (Equation 1).
"""

from .ann import MLPRegressor
from .extra_trees import ExtraTreesRegressor
from .importance import PermutationImportance, permutation_importance
from .cross_validation import KFold, LeaveOneGroupOut, cross_val_score
from .forest import RandomForestRegressor
from .linear import RidgeRegression
from .linear_model_tree import ModelTree
from .metrics import mean_absolute_error, mean_relative_error, r2_score, rmse
from .preprocessing import StandardScaler, VarianceThreshold
from .tree import RegressionTree
from .tuning import GridSearchResult, grid_search

__all__ = [
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "permutation_importance",
    "PermutationImportance",
    "RegressionTree",
    "MLPRegressor",
    "ModelTree",
    "RidgeRegression",
    "KFold",
    "LeaveOneGroupOut",
    "cross_val_score",
    "grid_search",
    "GridSearchResult",
    "StandardScaler",
    "VarianceThreshold",
    "mean_relative_error",
    "mean_absolute_error",
    "rmse",
    "r2_score",
]
