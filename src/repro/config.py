"""System configurations for the NAPEL reproduction (paper Table 3).

Two systems are modelled:

* :class:`NMCConfig` — the near-memory computing system: 32 single-issue
  in-order processing elements (PEs) at 1.25 GHz embedded in the logic layer
  of a 3D-stacked DRAM (32 vaults, 8 stacked layers, 256 B row buffer, 4 GB,
  closed-row policy), each PE with a tiny 2-way L1 of 2 cache lines of 64 B.
* :class:`HostConfig` — the host baseline: an IBM POWER9 AC922-like machine
  (16 cores, 4-way SMT, 2.3 GHz, 32 KiB L1 / 256 KiB L2 / 10 MiB L3,
  DDR4-2666).

Energy constants are grouped in :class:`NMCEnergyParams` and
:class:`HostEnergyParams`.  The absolute values are published-literature
estimates for HMC-class stacked DRAM and POWER9-class server silicon; the
reproduction only relies on their *relative* magnitudes (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from . import schema
from .errors import ConfigError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Valid NMC simulation engines (see :mod:`repro.nmcsim.simulator`):
#: ``fast`` is the two-phase vectorized engine, ``reference`` the
#: per-access event loop.  Both produce identical results.
SIM_ENGINES = ("fast", "reference")


@dataclass(frozen=True)
class DRAMTiming:
    """Timing parameters (nanoseconds) of one memory backend.

    The *field semantics* are device-neutral — row activation, column
    access, burst, precharge, an on-device interconnect hop and a
    row-linger window cover 3D stacks, planar DRAM channels and
    page-buffered NAND alike.  The *default values* are the HMC-class
    device of paper Table 3; every registered backend
    (:mod:`repro.backends`) ships its own instance.
    """

    t_rcd_ns: float = 13.75   #: row-to-column delay (ACT -> READ/WRITE)
    t_cl_ns: float = 13.75    #: column access (CAS) latency
    t_rp_ns: float = 13.75    #: row precharge time
    t_ras_ns: float = 27.5    #: minimum row-open time
    t_bl_ns: float = 6.4      #: burst transfer time of one 64 B cache line
    hop_ns: float = 3.2       #: logic-layer interconnect hop (PE <-> vault)
    #: How long the controller keeps a row open after an access before the
    #: automatic precharge fires (closed-page-with-timeout policy);
    #: back-to-back accesses to the same row within this window are row
    #: hits.  Set to 0 for a strict closed-row policy; open-page
    #: controllers (DDR channels, NAND page buffers) use a long window.
    row_linger_ns: float = 25.0
    #: Extra latency a *posted write* (dirty-line writeback) pays on top
    #: of the read pipeline — 0 for symmetric DRAM-class devices, large
    #: for NAND-class program operations.  Demand store misses are line
    #: *fetches* under write-allocate and pay read timing; the write
    #: itself is deferred to the eviction/flush, which is where this
    #: penalty lands.
    t_wr_extra_ns: float = 0.0

    def closed_row_access_ns(self) -> float:
        """Latency of one access under the closed-row policy.

        With a closed-row policy every access activates the row, performs the
        column access and transfers the burst; the precharge is overlapped
        with the data return and only constrains back-to-back accesses to the
        same bank (see :class:`repro.nmcsim.dram.bank.Bank`).
        """
        return self.t_rcd_ns + self.t_cl_ns + self.t_bl_ns

    def bank_occupancy_ns(self) -> float:
        """Time a bank stays busy per closed-row access (ACT..PRE done)."""
        return max(self.t_ras_ns, self.t_rcd_ns + self.t_cl_ns) + self.t_rp_ns

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name in ("row_linger_ns", "t_wr_extra_ns"):
                if value < 0:
                    raise ConfigError(f"{f.name} must be >= 0")
            elif value <= 0:
                raise ConfigError(f"DRAM timing {f.name!r} must be positive")


@dataclass(frozen=True)
class NMCEnergyParams:
    """Per-event energies (picojoules) and static power for the NMC system.

    Like :class:`DRAMTiming`, the field semantics are device-neutral
    (every backend has activation, per-bit access, link and static
    terms); the defaults are HMC-class estimates (~3.7 pJ/bit internal
    access, SerDes link ~2 pJ/bit) and each registered backend supplies
    its own values.
    """

    int_alu_pj: float = 4.0       #: simple integer op
    int_mul_pj: float = 16.0      #: integer multiply
    int_div_pj: float = 40.0      #: integer divide
    fp_alu_pj: float = 12.0       #: FP add/sub/compare
    fp_mul_pj: float = 20.0       #: FP multiply
    fp_div_pj: float = 60.0       #: FP divide
    branch_pj: float = 3.0        #: branch/control op
    other_pj: float = 3.0         #: moves and miscellaneous ops
    l1_access_pj: float = 8.0     #: L1 cache lookup (hit or miss probe)
    dram_activate_pj: float = 900.0   #: row activation (256 B row buffer)
    dram_rw_pj_per_bit: float = 3.7   #: internal column read/write per bit
    #: Extra per-bit energy of a device *write* on top of the symmetric
    #: read/write term — 0 for DRAM, large for NAND program operations.
    dram_wr_extra_pj_per_bit: float = 0.0
    link_pj_per_bit: float = 2.0      #: off-chip SerDes link per bit
    pe_static_w: float = 0.020        #: static+clock power per PE (W)
    dram_static_w: float = 0.850      #: DRAM background power, whole cube (W)

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"NMC energy {f.name!r} must be >= 0")


#: Compute-side fields carried over unchanged when :meth:`NMCConfig.replace`
#: switches a configuration to a different memory backend (the device
#: fields re-base on the new backend's descriptor instead).
PE_FIELDS = (
    "n_pes", "frequency_ghz", "pe_type", "issue_width", "mshr_entries",
    "l1_ways", "l1_lines", "line_bytes",
)


@dataclass(frozen=True)
class NMCConfig:
    """Architecture configuration of the NMC system (paper Table 3).

    Every field that Table 1 of the paper lists as an *NMC architectural
    feature* (core count, frequency, cache geometry, DRAM organisation) is a
    field here, so a configuration can be turned into a feature vector for
    the NAPEL model with :meth:`feature_vector`.

    ``backend`` names the memory device the DRAM-side fields were drawn
    from (:mod:`repro.backends`); the default field values *are* the
    ``hmc`` descriptor, so ``NMCConfig()`` and
    ``NMCConfig.from_backend("hmc")`` are the same configuration.
    """

    n_pes: int = 32                    #: number of near-memory PEs
    frequency_ghz: float = 1.25        #: PE clock frequency
    #: PE core type: "inorder" (the paper's Table 3 system: single-issue,
    #: blocking loads) or "ooo" (a lightweight out-of-order core:
    #: multi-issue with MSHR-based miss overlap).  The paper notes NAPEL
    #: "can be extended to support other types of general-purpose cores"
    #: by selecting the appropriate architectural features — this is that
    #: extension point.
    pe_type: str = "inorder"
    issue_width: int = 1               #: instructions issued per cycle
    mshr_entries: int = 1              #: outstanding misses per PE (ooo)
    l1_ways: int = 2                   #: L1 associativity
    l1_lines: int = 2                  #: total number of L1 cache lines
    line_bytes: int = 64               #: cache line size
    n_vaults: int = 32                 #: vertical DRAM partitions
    n_layers: int = 8                  #: stacked DRAM layers
    banks_per_vault: int = 16          #: DRAM banks within each vault
    row_buffer_bytes: int = 256        #: row buffer size per bank
    dram_bytes: int = 4 * GIB          #: total stacked-DRAM capacity
    closed_row: bool = True            #: closed-row controller policy
    link_width_bits: int = 16          #: off-chip link width (lanes/bits)
    link_gbps: float = 15.0            #: link lane speed (Gbit/s per lane)
    backend: str = "hmc"               #: registered memory backend name
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    energy: NMCEnergyParams = field(default_factory=NMCEnergyParams)

    def validate(self) -> None:
        if self.n_pes < 1:
            raise ConfigError("n_pes must be >= 1")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency_ghz must be positive")
        if self.pe_type not in ("inorder", "ooo"):
            raise ConfigError("pe_type must be 'inorder' or 'ooo'")
        if self.issue_width < 1 or self.mshr_entries < 1:
            raise ConfigError("issue_width and mshr_entries must be >= 1")
        if self.pe_type == "inorder" and self.mshr_entries != 1:
            raise ConfigError("in-order PEs have exactly one MSHR")
        if self.l1_lines < 1 or self.l1_ways < 1:
            raise ConfigError("L1 geometry must be >= 1 way and >= 1 line")
        if self.l1_lines % self.l1_ways:
            raise ConfigError("l1_lines must be a multiple of l1_ways")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line_bytes must be a power of two")
        # Device-level validation is per-descriptor: the registered
        # backend owns the DRAM-organisation, link and timing rules.
        from .backends import get_backend

        get_backend(self.backend).validate_config(self)

    @property
    def l1_bytes(self) -> int:
        """Total L1 capacity in bytes (2 lines x 64 B = 128 B by default)."""
        return self.l1_lines * self.line_bytes

    @property
    def l1_sets(self) -> int:
        return self.l1_lines // self.l1_ways

    @property
    def cycle_ns(self) -> float:
        """Duration of one PE clock cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    @property
    def link_gbytes_per_s(self) -> float:
        """Aggregate off-chip link bandwidth (full duplex, one direction)."""
        return self.link_width_bits * self.link_gbps / 8.0

    # ----- NAPEL architectural features (paper Table 1, lower half) -----
    # Registered below as the "arch" block of the model-input feature
    # schema (repro.schema); feature_vector() must stay aligned with
    # arch_feature_names().  ARCH_FEATURE_NAMES is the static scalar
    # part; the full block adds one one-hot column per registered
    # backend plus the backend-derived scalars (row policy, link
    # bandwidth, read/write asymmetry).

    ARCH_FEATURE_NAMES = (
        "arch.n_pes",
        "arch.frequency_ghz",
        "arch.line_bytes",
        "arch.l1_lines",
        "arch.n_layers",
        "arch.dram_gib",
        "arch.n_vaults",
        "arch.row_buffer_bytes",
        "arch.issue_width",
        "arch.mshr_entries",
    )

    #: Backend-derived scalar features appended after the one-hot block.
    BACKEND_SCALAR_FEATURES = (
        "arch.closed_row",
        "arch.link_gbytes_per_s",
        "arch.rw_asymmetry",
    )

    def feature_vector(self) -> list[float]:
        """Architectural feature values, aligned with arch_feature_names()."""
        from .backends import backend_names

        t = self.timing
        return [
            float(self.n_pes),
            float(self.frequency_ghz),
            float(self.line_bytes),
            float(self.l1_lines),
            float(self.n_layers),
            self.dram_bytes / GIB,
            float(self.n_vaults),
            float(self.row_buffer_bytes),
            float(self.issue_width),
            float(self.mshr_entries),
        ] + [
            1.0 if self.backend == name else 0.0 for name in backend_names()
        ] + [
            1.0 if self.closed_row else 0.0,
            self.link_gbytes_per_s,
            t.t_wr_extra_ns / t.closed_row_access_ns(),
        ]

    @classmethod
    def from_backend(cls, name: str = "hmc", **overrides: object) -> "NMCConfig":
        """Build a configuration on a registered memory backend.

        Device fields come from the backend's descriptor; compute-side
        fields keep their defaults; ``overrides`` wins over both.
        """
        from .backends import get_backend

        return get_backend(name).to_config(**overrides)

    def replace(self, **changes: object) -> "NMCConfig":
        """Return a copy with the given fields replaced (validated).

        Changing ``backend`` re-bases the device fields (topology,
        capacity, row policy, link, timing, energy) on the new backend's
        descriptor while carrying the compute-side fields
        (:data:`PE_FIELDS`) over; other ``changes`` still win.
        """
        new_backend = changes.get("backend")
        if new_backend is not None and new_backend != self.backend:
            from .backends import get_backend

            carried: dict[str, object] = {
                f: getattr(self, f) for f in PE_FIELDS
            }
            carried.update(
                (k, v) for k, v in changes.items() if k != "backend"
            )
            return get_backend(str(new_backend)).to_config(**carried)
        cfg = dataclasses.replace(self, **changes)  # type: ignore[arg-type]
        cfg.validate()
        return cfg


def arch_feature_names() -> tuple[str, ...]:
    """The full ``arch`` feature block, including backend features.

    Scalar knobs first (:data:`NMCConfig.ARCH_FEATURE_NAMES`), then one
    ``arch.backend.<name>`` one-hot column per registered backend (in
    registration order) and the backend-derived scalars.  Registering a
    backend changes this list — and therefore the schema content hash —
    which is exactly the drift the schema machinery must flag.
    """
    from .backends import backend_names

    return (
        NMCConfig.ARCH_FEATURE_NAMES
        + tuple(f"arch.backend.{name}" for name in backend_names())
        + NMCConfig.BACKEND_SCALAR_FEATURES
    )


schema.register_block(
    "arch",
    arch_feature_names,
    description=(
        "NMC architectural knobs (paper Table 1, lower half) plus "
        "memory-backend identity features"
    ),
)


@dataclass(frozen=True)
class HostEnergyParams:
    """Power/energy constants for the POWER9-class host model."""

    idle_w: float = 60.0              #: chip idle power
    max_dynamic_w: float = 130.0      #: additional power at full activity
    op_energy_pj: float = 60.0        #: average energy per retired instr
    l2_access_pj: float = 25.0
    l3_access_pj: float = 90.0
    dram_access_pj: float = 15000.0   #: off-chip DDR4 access, 64 B line
    dram_static_w: float = 6.0        #: DIMM background power

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"Host energy {f.name!r} must be >= 0")


@dataclass(frozen=True)
class HostConfig:
    """IBM POWER9 AC922-like host configuration (paper Table 3, upper half)."""

    n_cores: int = 16
    smt: int = 4
    frequency_ghz: float = 2.3
    issue_width: int = 4               #: superscalar issue width
    rob_window: int = 256              #: out-of-order instruction window
    line_bytes: int = 128              #: POWER9 uses 128 B cache lines
    l1_bytes: int = 32 * KIB
    l2_bytes: int = 256 * KIB
    l3_bytes: int = 10 * MIB
    #: Capacity divisor matching the workload trace scaling: scaled kernels
    #: shrink their working sets by roughly this factor, so the host model
    #: evaluates them against proportionally smaller caches to preserve the
    #: full-scale working-set-to-cache ratio (see DESIGN.md).  Set to 1.0
    #: to model the nominal Table 3 capacities.
    cache_scale: float = 384.0
    l1_latency_cycles: int = 3
    l2_latency_cycles: int = 12
    l3_latency_cycles: int = 38
    dram_latency_ns: float = 90.0
    dram_bandwidth_gbs: float = 120.0  #: sustained 8-channel DDR4-2666
    max_mlp: float = 2.5               #: peak overlapped misses (irregular)
    prefetch_mlp: float = 24.0         #: effective MLP for strided streams
    energy: HostEnergyParams = field(default_factory=HostEnergyParams)

    def validate(self) -> None:
        if self.n_cores < 1 or self.smt < 1:
            raise ConfigError("n_cores and smt must be >= 1")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency_ghz must be positive")
        if not self.l1_bytes < self.l2_bytes < self.l3_bytes:
            raise ConfigError("cache sizes must be strictly increasing")
        if self.cache_scale < 1.0:
            raise ConfigError("cache_scale must be >= 1")
        if self.issue_width < 1 or self.rob_window < 1:
            raise ConfigError("issue_width and rob_window must be >= 1")
        if self.dram_latency_ns <= 0 or self.dram_bandwidth_gbs <= 0:
            raise ConfigError("DRAM latency and bandwidth must be positive")
        if self.max_mlp <= 0 or self.prefetch_mlp <= 0:
            raise ConfigError("MLP factors must be positive")
        self.energy.validate()

    @property
    def hardware_threads(self) -> int:
        """Total simultaneous hardware threads (cores x SMT)."""
        return self.n_cores * self.smt

    def replace(self, **changes: object) -> "HostConfig":
        cfg = dataclasses.replace(self, **changes)  # type: ignore[arg-type]
        cfg.validate()
        return cfg


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-engine settings — how the pipeline *runs*, not what it
    models.

    ``jobs`` is the worker-process count used by every parallelizable
    stage (DoE campaigns, LOOCV retraining, bootstrap-tree fitting, grid
    search); 1 means serial, 0 means one worker per CPU.  Parallel runs
    are guaranteed to produce bit-identical results to serial ones (see
    :mod:`repro.parallel`).

    ``sim_engine`` selects the NMC simulation engine (``"fast"`` or
    ``"reference"``; see :data:`SIM_ENGINES`) — an execution choice, not
    a modelling one: both engines produce identical results.

    ``sim_jit`` opts the fast engine's contention loop into the compiled
    kernel (numba or system C compiler; ``REPRO_SIM_JIT=1``).  Also an
    execution choice: results are bit-identical with and without it, and
    it degrades gracefully to the Python loop when no backend builds.
    """

    jobs: int = 1
    sim_engine: str = "fast"
    sim_jit: bool = False

    def validate(self) -> None:
        if self.jobs < 0:
            raise ConfigError("jobs must be >= 0 (0 = all CPUs)")
        if self.sim_engine not in SIM_ENGINES:
            raise ConfigError(
                f"sim_engine must be one of {', '.join(SIM_ENGINES)}"
            )
        if not isinstance(self.sim_jit, bool):
            raise ConfigError("sim_jit must be a bool")

    def resolved_jobs(self) -> int:
        """The effective worker count (0 expanded to the CPU count)."""
        from .parallel import resolve_jobs

        return resolve_jobs(self.jobs)


def default_runtime_config() -> RuntimeConfig:
    """Runtime settings honouring the ``REPRO_JOBS``,
    ``REPRO_SIM_ENGINE`` and ``REPRO_SIM_JIT`` environment variables."""
    from .parallel import resolve_jobs

    engine = os.environ.get("REPRO_SIM_ENGINE", "").strip() or "fast"
    jit = (
        os.environ.get("REPRO_SIM_JIT", "").strip().lower()
        in ("1", "true", "yes", "on")
    )
    cfg = RuntimeConfig(
        jobs=resolve_jobs(None), sim_engine=engine, sim_jit=jit
    )
    cfg.validate()
    return cfg


def default_nmc_config() -> NMCConfig:
    """The NMC system of paper Table 3."""
    cfg = NMCConfig()
    cfg.validate()
    return cfg


def default_host_config() -> HostConfig:
    """The host system of paper Table 3."""
    cfg = HostConfig()
    cfg.validate()
    return cfg
