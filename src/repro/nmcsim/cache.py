"""Set-associative write-back L1 cache model for the NMC PEs.

The paper's NMC PE cache is tiny — 2-way, two 64 B lines total (one set) —
but the model is a general set-associative LRU cache so the architecture
sweep examples can size it up (Section 3.4 suggests atax-like workloads
would benefit from a larger NMC cache).

Policy: write-back, write-allocate, LRU replacement.

Role in the engines: the *reference* simulation engine steps this model
per access, and the classifier tests use the step-wise walk
(:func:`repro.nmcsim.classify.classify_steps`) as the golden oracle.
The fast engine never consults it — its vectorized stack-distance
classifier (:mod:`repro.nmcsim.classify`) is exact for any geometry —
so this class is the readable statement of the cache semantics, not a
production fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import NMCConfig
from ..errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss/writeback counters of one cache instance.

    ``writebacks`` counts every dirty line written back to DRAM — both
    evictions during execution and the end-of-kernel flush of still-dirty
    resident lines (see :meth:`Cache.flush`).  ``flushes`` is the flush
    subset, kept separately so the eviction-only count stays recoverable.
    """

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.flushes += other.flushes

    def counter_values(self) -> dict:
        """Counter-track sample of these stats (hardware-timeline tracing)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }


class Cache:
    """LRU set-associative cache operating on line addresses.

    ``access(line, is_write)`` returns ``(hit, writeback_line)`` where
    ``writeback_line`` is the line address of an evicted dirty victim (or
    ``None``).  The caller is responsible for timing; the cache only tracks
    contents and statistics.
    """

    def __init__(self, n_lines: int, ways: int) -> None:
        if n_lines < 1 or ways < 1:
            raise ConfigError("cache needs >= 1 line and >= 1 way")
        if n_lines % ways:
            raise ConfigError("n_lines must be a multiple of ways")
        self.ways = ways
        self.n_sets = n_lines // ways
        # Per set: list of [tag, dirty] in LRU order (index 0 = LRU).
        self._sets: list[list[list]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    @classmethod
    def l1_for(cls, config: NMCConfig) -> "Cache":
        """The per-PE L1 described by an :class:`~repro.config.NMCConfig`."""
        return cls(n_lines=config.l1_lines, ways=config.l1_ways)

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """Look up one line; returns (hit, evicted_dirty_line_or_None)."""
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        entries = self._sets[set_idx]
        for pos, entry in enumerate(entries):
            if entry[0] == tag:
                entries.pop(pos)
                entries.append(entry)
                if is_write:
                    entry[1] = True
                self.stats.hits += 1
                return True, None
        # Miss: allocate (write-allocate policy); evict LRU if full.
        self.stats.misses += 1
        writeback: int | None = None
        if len(entries) >= self.ways:
            victim = entries.pop(0)
            if victim[1]:
                self.stats.writebacks += 1
                writeback = victim[0] * self.n_sets + set_idx
        entries.append([tag, is_write])
        return False, writeback

    def classify(
        self, lines: np.ndarray, writes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step-wise classification of a whole access stream into arrays.

        Walks :meth:`access` over ``lines``/``writes`` and returns
        ``(hit, wb_line)``: a boolean hit mask and the dirty victim line
        evicted by each access (-1 when none).  The cache state and
        statistics advance exactly as if :meth:`access` had been called
        per element — this is the array API the simulation engines and
        the vectorized-classifier golden tests build on.
        """
        n = len(lines)
        hit = np.empty(n, dtype=bool)
        wb_line = np.full(n, -1, dtype=np.int64)
        access = self.access
        for k, (line, is_write) in enumerate(
            zip(lines.tolist(), writes.tolist())
        ):
            h, wb = access(line, is_write)
            hit[k] = h
            if wb is not None:
                wb_line[k] = wb
        return hit, wb_line

    def dirty_lines(self) -> np.ndarray:
        """Line addresses of the dirty resident lines (sorted).

        The set :meth:`flush` would write back; read-only census like
        :meth:`flush_dirty_count`, but as an address array.
        """
        dirty = [
            entry[0] * self.n_sets + set_idx
            for set_idx, entries in enumerate(self._sets)
            for entry in entries
            if entry[1]
        ]
        return np.sort(np.asarray(dirty, dtype=np.int64))

    def flush_dirty_count(self) -> int:
        """Number of dirty lines still resident (flushed at kernel end).

        Read-only census; :meth:`flush` actually performs the flush and
        records it in the statistics.
        """
        return sum(
            1 for entries in self._sets for entry in entries if entry[1]
        )

    def flush(self) -> int:
        """Write back all resident dirty lines (end-of-kernel flush).

        Marks the lines clean and counts each once in
        ``stats.writebacks`` (and ``stats.flushes``); returns how many
        lines were flushed so the caller can add the matching DRAM write
        traffic.  Idempotent: a second flush finds nothing dirty.
        """
        flushed = 0
        for entries in self._sets:
            for entry in entries:
                if entry[1]:
                    entry[1] = False
                    flushed += 1
        self.stats.writebacks += flushed
        self.stats.flushes += flushed
        return flushed
