"""Energy accounting for the NMC system.

Event-based: every executed instruction, cache access and DRAM operation
contributes its per-event energy (:class:`~repro.config.NMCEnergyParams`);
static power integrates over the kernel's execution time.  The SerDes link
energy covers the initial offload of the kernel's inputs and the final
result return over the off-chip link.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..config import NMCConfig
from ..ir import Opcode

#: Opcode -> dynamic-energy attribute of NMCEnergyParams.
_OPCODE_ENERGY_ATTR = {
    Opcode.IALU: "int_alu_pj",
    Opcode.IMUL: "int_mul_pj",
    Opcode.IDIV: "int_div_pj",
    Opcode.FALU: "fp_alu_pj",
    Opcode.FMUL: "fp_mul_pj",
    Opcode.FDIV: "fp_div_pj",
    Opcode.FMA: "fp_mul_pj",
    Opcode.LOAD: "other_pj",      # cache energy accounted separately
    Opcode.STORE: "other_pj",
    Opcode.ATOMIC: "int_alu_pj",
    Opcode.BRANCH: "branch_pj",
    Opcode.CMP: "int_alu_pj",
    Opcode.MOVE: "other_pj",
    Opcode.CALL: "branch_pj",
    Opcode.RET: "branch_pj",
    Opcode.NOP: "other_pj",
}

PJ = 1e-12


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy components of one NMC kernel execution, in joules."""

    core_dynamic_j: float
    cache_j: float
    dram_dynamic_j: float
    link_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return (
            self.core_dynamic_j
            + self.cache_j
            + self.dram_dynamic_j
            + self.link_j
            + self.static_j
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "core_dynamic_j": self.core_dynamic_j,
            "cache_j": self.cache_j,
            "dram_dynamic_j": self.dram_dynamic_j,
            "link_j": self.link_j,
            "static_j": self.static_j,
            "total_j": self.total_j,
        }


def compute_energy(
    config: NMCConfig,
    opcode_counts: dict[Opcode, int],
    l1_accesses: int,
    dram_accesses: int,
    exec_time_s: float,
    offload_bytes: float = 0.0,
    dram_writes: int = 0,
) -> EnergyBreakdown:
    """Aggregate event counts into an :class:`EnergyBreakdown`.

    ``offload_bytes`` is the data volume shipped over the off-chip SerDes
    link (kernel inputs + results).  ``dram_writes`` (a subset of
    ``dram_accesses``) pays the backend's write-asymmetry energy, if any
    (``NMCEnergyParams.dram_wr_extra_pj_per_bit``; 0 for DRAM-class
    backends).  Static power covers the whole cube — idle PEs are not
    power-gated in the reference design.
    """
    e = config.energy
    core = sum(
        count * getattr(e, _OPCODE_ENERGY_ATTR[op])
        for op, count in opcode_counts.items()
    )
    cache = l1_accesses * e.l1_access_pj
    line_bits = config.line_bytes * 8
    dram = dram_accesses * (e.dram_activate_pj + line_bits * e.dram_rw_pj_per_bit)
    if e.dram_wr_extra_pj_per_bit:
        dram += dram_writes * line_bits * e.dram_wr_extra_pj_per_bit
    link = offload_bytes * 8 * e.link_pj_per_bit
    static_w = config.n_pes * e.pe_static_w + e.dram_static_w
    static = static_w * exec_time_s / PJ  # keep everything in pJ, then scale
    return EnergyBreakdown(
        core_dynamic_j=core * PJ,
        cache_j=cache * PJ,
        dram_dynamic_j=dram * PJ,
        link_j=link * PJ,
        static_j=static * PJ,
    )
