"""Trace-driven cycle-level simulator of the NMC system (Ramulator-PIM
analog).

Models the paper's Table 3 NMC platform: single-issue in-order processing
elements (PEs) at 1.25 GHz in the logic layer of a 3D-stacked DRAM cube
(32 vaults, 8 layers, 256 B row buffers, closed-row policy), each PE with a
tiny private 2-way L1 of two 64 B lines.  Produces the IPC and energy
labels used to train NAPEL (paper phase 2) and the "Actual" results of
Figure 7.
"""

from .cache import Cache, CacheStats
from .classify import (
    LRUClassification,
    classify_lru,
    classify_steps,
    classify_vectorized,
)
from .energy import EnergyBreakdown, compute_energy
from .memostore import (
    MemoStore,
    active_store,
    configure_store,
    store_dir,
    store_status,
)
from .results import SimulationResult
from .simulator import (
    ENGINES,
    MEMO_COUNTER_NAMES,
    NMCSimulator,
    batch_enabled,
    jit_status,
    memo_enabled,
    resolve_engine,
    simulate,
    simulate_batch,
    simulation_batch_summary,
    simulation_memo_bytes,
    simulation_memo_summary,
)

from .dram import StackedMemory, VaultStats
from .interconnect import LinkModel, OffloadCost, offload_adjusted_edp
from .stats import SimulationStats, derive_stats, format_stats

__all__ = [
    "NMCSimulator",
    "simulate",
    "ENGINES",
    "resolve_engine",
    "MEMO_COUNTER_NAMES",
    "jit_status",
    "memo_enabled",
    "batch_enabled",
    "simulate_batch",
    "simulation_batch_summary",
    "simulation_memo_bytes",
    "simulation_memo_summary",
    "MemoStore",
    "active_store",
    "configure_store",
    "store_dir",
    "store_status",
    "LRUClassification",
    "classify_lru",
    "classify_steps",
    "classify_vectorized",
    "SimulationResult",
    "Cache",
    "CacheStats",
    "StackedMemory",
    "VaultStats",
    "EnergyBreakdown",
    "compute_energy",
    "LinkModel",
    "OffloadCost",
    "offload_adjusted_edp",
    "SimulationStats",
    "derive_stats",
    "format_stats",
]
