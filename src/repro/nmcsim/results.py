"""Simulation result container shared by the NMC simulator and NAPEL."""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheStats
from .dram import VaultStats
from .energy import EnergyBreakdown


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel trace on one NMC configuration.

    ``ipc`` is the headline label NAPEL trains on; ``time_s`` follows the
    paper's formula ``T = I_offload / (IPC * f_core)`` exactly (makespan
    cycles of the slowest PE, converted at the core frequency).
    """

    workload: str
    instructions: int
    cycles: int
    time_s: float
    ipc: float
    energy: EnergyBreakdown
    cache: CacheStats
    dram: VaultStats
    n_pes_used: int
    parameters: dict[str, float] = field(default_factory=dict)

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s), the Figure 7 metric."""
        return self.energy_j * self.time_s

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    def to_json_dict(self) -> dict:
        """JSON-serialisable form (for campaign caching)."""
        return {
            "workload": self.workload,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "time_s": self.time_s,
            "ipc": self.ipc,
            "energy": self.energy.as_dict(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "writebacks": self.cache.writebacks,
                "flushes": self.cache.flushes,
            },
            "dram": {
                "accesses": self.dram.accesses,
                "reads": self.dram.reads,
                "writes": self.dram.writes,
                "max_vault_accesses": self.dram.max_vault_accesses,
            },
            "n_pes_used": self.n_pes_used,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "SimulationResult":
        energy = data["energy"]
        return cls(
            workload=str(data["workload"]),
            instructions=int(data["instructions"]),
            cycles=int(data["cycles"]),
            time_s=float(data["time_s"]),
            ipc=float(data["ipc"]),
            energy=EnergyBreakdown(
                core_dynamic_j=float(energy["core_dynamic_j"]),
                cache_j=float(energy["cache_j"]),
                dram_dynamic_j=float(energy["dram_dynamic_j"]),
                link_j=float(energy["link_j"]),
                static_j=float(energy["static_j"]),
            ),
            cache=CacheStats(
                hits=int(data["cache"]["hits"]),
                misses=int(data["cache"]["misses"]),
                writebacks=int(data["cache"]["writebacks"]),
                # Absent in caches written before flush accounting landed.
                flushes=int(data["cache"].get("flushes", 0)),
            ),
            dram=VaultStats(
                accesses=int(data["dram"]["accesses"]),
                reads=int(data["dram"]["reads"]),
                writes=int(data["dram"]["writes"]),
                max_vault_accesses=int(data["dram"]["max_vault_accesses"]),
            ),
            n_pes_used=int(data["n_pes_used"]),
            parameters={
                k: float(v) for k, v in data.get("parameters", {}).items()
            },
        )
