"""Off-chip link and kernel-offload cost model.

The paper's execution-time formula ``T_NMC = I_offload / (IPC * f_core)``
covers kernel execution only; shipping the kernel's inputs to the memory
device and its results back crosses the off-chip link — a 16-lane
15 Gbps SerDes on the HMC backend (Table 3), a wide silicon-interposer
bus on HBM2, a 64-bit DDR bus on a DDR4 channel.  This module models
that cost so the suitability analysis can be refined with offload
overheads (an ablation the paper leaves implicit).

The link is full-duplex: input upload and result download are each bounded
by the one-direction bandwidth; a per-message packetisation overhead and a
fixed round-trip setup latency complete the first-order model.  Raw
bandwidth comes from the config's ``link_width_bits`` × ``link_gbps``
product; the packetisation overhead and setup latency come from the
config's backend descriptor (:class:`repro.backends.LinkParams`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NMCConfig
from ..errors import ConfigError

#: Flit-level protocol overhead of HMC-style links (header+tail per packet).
#: Kept as the HMC default; other backends carry their own value on their
#: :class:`repro.backends.LinkParams`.
PACKET_OVERHEAD = 0.10

#: One-time offload setup round trip (descriptor + doorbell), seconds.
#: HMC default; per-backend values live on :class:`repro.backends.LinkParams`.
SETUP_LATENCY_S = 1.0e-6


@dataclass(frozen=True)
class OffloadCost:
    """Cost of moving a kernel's data across the off-chip link."""

    upload_bytes: float
    download_bytes: float
    upload_s: float
    download_s: float
    setup_s: float
    energy_j: float

    @property
    def total_s(self) -> float:
        """End-to-end offload time (setup + upload + download)."""
        return self.setup_s + self.upload_s + self.download_s


class LinkModel:
    """First-order off-chip link timing/energy model.

    Bandwidth is the config's ``link_width_bits`` × ``link_gbps``
    product (which the user may override per run); the protocol-level
    knobs — packetisation overhead and setup latency — resolve from the
    config's backend descriptor, so a DDR4 channel pays less framing
    than an HMC SerDes and a NAND device pays a longer doorbell.
    """

    def __init__(self, config: NMCConfig) -> None:
        from ..backends import get_backend

        config.validate()
        self.config = config
        link = get_backend(config.backend).link
        self.packet_overhead = link.packet_overhead
        self.setup_latency_s = link.setup_latency_s
        #: usable one-direction bandwidth after protocol overhead (B/s)
        self.effective_bw = (
            config.link_gbytes_per_s * 1e9 * (1.0 - self.packet_overhead)
        )
        if self.effective_bw <= 0:
            raise ConfigError("link bandwidth must be positive")

    def transfer_time_s(self, nbytes: float) -> float:
        """Time to move ``nbytes`` in one direction."""
        if nbytes < 0:
            raise ConfigError("transfer size must be >= 0")
        return nbytes / self.effective_bw

    def offload_cost(
        self, upload_bytes: float, download_bytes: float
    ) -> OffloadCost:
        """Full offload cost for a kernel's input/result volumes."""
        upload_s = self.transfer_time_s(upload_bytes)
        download_s = self.transfer_time_s(download_bytes)
        bits = (upload_bytes + download_bytes) * 8
        energy = bits * self.config.energy.link_pj_per_bit * 1e-12
        return OffloadCost(
            upload_bytes=upload_bytes,
            download_bytes=download_bytes,
            upload_s=upload_s,
            download_s=download_s,
            setup_s=self.setup_latency_s,
            energy_j=energy,
        )


def offload_adjusted_edp(
    kernel_time_s: float,
    kernel_energy_j: float,
    cost: OffloadCost,
) -> float:
    """EDP of the kernel including its offload overheads."""
    time_s = kernel_time_s + cost.total_s
    energy_j = kernel_energy_j + cost.energy_j
    return time_s * energy_j
