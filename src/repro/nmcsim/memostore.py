"""Persistent cross-process store for the fast engine's phase-A products.

The in-process geometry memos (``trace._memo`` side tables, see
:mod:`repro.nmcsim.simulator`) die with the process: every ``--jobs N``
worker, and every fresh campaign process, recomputes the same stream
digests, stack-distance classifications and packed event bundles for
geometries its siblings already evaluated.  This module persists the
final phase-A product — the packed event bundle plus its aggregate cache
statistics — as one file per (trace contents, architecture slice) pair
under a shared directory, so any process sweeping the same geometry
loads it instead of recomputing.  Entries are streams of raw ``.npy``
records (a names array followed by one array per name) rather than
``.npz`` archives: loading skips the zipfile machinery, which dominates
small-entry read cost on the warm path.

Design points (mirroring :class:`repro.core.campaign.CampaignCache`):

* **content-hash keys** — entries are named by a SHA-256 over the trace's
  full column bytes, the events-memo key tuple and the store format
  version; a changed trace, geometry or layout can never alias a stale
  entry.
* **atomic writes** — payloads land in a pid-unique ``.tmp`` sibling and
  are moved into place with :func:`os.replace`, so concurrent writers
  (pool workers racing on the same key) and crashes mid-write never
  produce a torn entry; last writer wins with identical bytes.
* **corruption / version tolerance** — unreadable, truncated or
  version-skewed entries are discarded with a warning (and an
  ``sim.memo.store.errors`` count), never raised: the caller rebuilds
  and overwrites.

The store is enabled by pointing ``$REPRO_SIM_MEMO_DIR`` at a directory
(or calling :func:`configure_store`); it is off by default.  Lookups and
writes count as ``sim.memo.store.{hits,misses,writes,errors}``.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..obs import get_logger, metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir import InstructionTrace

log = get_logger("repro.nmcsim.memostore")

#: Environment variable pointing at the shared store directory.
STORE_ENV_VAR = "REPRO_SIM_MEMO_DIR"

#: On-disk entry layout version; bumped whenever the encoded phase-A
#: payload changes shape.  Skewed entries are discarded with a warning.
FORMAT_VERSION = 1

#: Name of the version-stamp array embedded in every entry.
_FORMAT_KEY = "__format__"


class MemoStore:
    """One directory of content-hash-keyed phase-A entries."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings sane for large
        # sweeps (thousands of entries).
        return self.root / key[:2] / f"{key}.bin"

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """The entry's arrays, or None (missing / corrupt / skewed).

        Counts a ``sim.memo.store.hit`` or ``.miss``; a present-but-
        unreadable entry additionally counts an ``error`` and warns, but
        never raises — the caller recomputes and overwrites it.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                names = np.load(fh, allow_pickle=False)
                data = {
                    str(name): np.load(fh, allow_pickle=False)
                    for name in names
                }
            stored = data.pop(_FORMAT_KEY, None)
            version = int(stored[0]) if stored is not None and len(stored) else None
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"entry format {version!r} != {FORMAT_VERSION}"
                )
        except FileNotFoundError:
            metrics().inc("sim.memo.store.misses")
            return None
        except Exception as exc:  # noqa: BLE001 - any damage means rebuild
            metrics().inc("sim.memo.store.misses")
            metrics().inc("sim.memo.store.errors")
            warnings.warn(
                f"sim memo store entry {path} is corrupt, unreadable or "
                f"version-skewed ({exc!r}); discarding it — the entry "
                "will be recomputed and rewritten",
                RuntimeWarning,
                stacklevel=2,
            )
            log.warning(
                "discarding bad memo-store entry",
                extra={"ctx": {"path": str(path), "error": repr(exc)}},
            )
            return None
        metrics().inc("sim.memo.store.hits")
        return data

    def put(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Write one entry atomically; failures warn instead of raising.

        A store that cannot be written (read-only mount, disk full) must
        not fail the simulation it was meant to speed up.
        """
        path = self._path(key)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = dict(arrays)
            payload[_FORMAT_KEY] = np.asarray([FORMAT_VERSION], dtype=np.int64)
            with open(tmp, "wb") as fh:
                np.save(
                    fh, np.asarray(list(payload), dtype=np.str_),
                    allow_pickle=False,
                )
                for value in payload.values():
                    np.save(fh, np.asarray(value), allow_pickle=False)
            os.replace(tmp, path)
        except OSError as exc:
            metrics().inc("sim.memo.store.errors")
            warnings.warn(
                f"sim memo store write to {path} failed ({exc!r}); "
                "continuing without persisting this entry",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return
        metrics().inc("sim.memo.store.writes")


def store_key(trace: "InstructionTrace", slice_key: tuple) -> str:
    """Entry key of one (trace, architecture-slice) phase-A product.

    Covers the trace's full column contents (via
    :meth:`~repro.ir.InstructionTrace.content_hash`), the events-memo key
    tuple (every architecture field phase A reads) and the store format
    version.
    """
    payload = f"{FORMAT_VERSION}|{trace.content_hash()}|{slice_key!r}"
    return hashlib.sha256(payload.encode()).hexdigest()


# ------------------------------------------------------------ resolution

#: Programmatic override of the store directory (wins over the env var).
#: ``""`` means "explicitly disabled"; None means "not configured here".
_OVERRIDE_DIR: str | None = None

#: Cached MemoStore per resolved directory (cheap, but keeps identity
#: stable for tests and log messages).
_STORES: dict[str, MemoStore] = {}


def configure_store(path: str | os.PathLike | None) -> None:
    """Set (or clear, with None) the process-wide store directory.

    Overrides ``$REPRO_SIM_MEMO_DIR``.  Picklable entry point for pool
    ``worker_init`` hooks: the campaign ships
    ``functools.partial(configure_store, dir)`` so workers join the
    parent's store even under a spawn start method.
    """
    global _OVERRIDE_DIR
    _OVERRIDE_DIR = os.fspath(path) if path is not None else None


def store_dir() -> str | None:
    """The effective store directory, or None when the store is off."""
    if _OVERRIDE_DIR is not None:
        return _OVERRIDE_DIR or None
    env = os.environ.get(STORE_ENV_VAR, "").strip()
    return env or None


def active_store() -> MemoStore | None:
    """The configured :class:`MemoStore`, or None when disabled."""
    root = store_dir()
    if root is None:
        return None
    store = _STORES.get(root)
    if store is None:
        store = MemoStore(root)
        _STORES[root] = store
    return store


def store_status() -> dict:
    """Store counters + configuration for manifests and bench records."""
    m = metrics()
    return {
        "dir": store_dir(),
        "hits": m.count("sim.memo.store.hits"),
        "misses": m.count("sim.memo.store.misses"),
        "writes": m.count("sim.memo.store.writes"),
        "errors": m.count("sim.memo.store.errors"),
    }
