"""Vectorized L1 classification (phase A of the fast simulation engine).

The classic stack-distance result behind the profiler's locality features
(:mod:`repro.ir.stackdist`) also makes L1 simulation *data-parallel*: a
``W``-way set-associative LRU cache hits exactly the accesses whose
per-set reuse distance is < ``W``, independent of timing.  Hit/miss
classification, eviction victims, dirty tracking and the end-of-kernel
flush set are therefore properties of the access *stream alone* and can
be computed up front as arrays — leaving only the (typically small) miss
and writeback event set for the exact global-time contention loop
(phase B, :mod:`repro.nmcsim.simulator`).

:func:`classify_vectorized` is exact for **any** associativity:

* the access stream is grouped per set and deduplicated into runs
  (adjacent repeats of one line are distance-0 hits);
* ``ways <= 2`` keep closed-form hit/victim expressions on the run
  stream (distance-1 hits are ``y[i] == y[i-2]`` patterns, and the LRU
  victim is always ``y[i-2]``);
* general ``ways`` derive the hit mask from Mattson's inclusion property
  via the per-set stack-distance kernel
  (:func:`repro.ir.stackdist.lru_hit_mask`) and attribute eviction
  victims with an O(1)-per-run recency-list walk (the list holds exactly
  the resident runs of each set, most recent first, so the victim of an
  evicting miss is the set's tail);
* dirty state is a segmented any-write scan between allocating misses,
  shared by every associativity >= 2.

:func:`classify_steps` — the step-wise :class:`~repro.nmcsim.cache.Cache`
walk — remains as the independent golden oracle the vectorized paths are
tested against; the engines themselves never fall back to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.stackdist import lru_hit_mask
from .cache import Cache, CacheStats


@dataclass(frozen=True)
class LRUClassification:
    """Per-access outcome arrays of one PE stream against one L1 geometry.

    ``hit[k]`` tells whether memory op ``k`` hits; ``wb_line[k]`` is the
    line address of the dirty victim evicted by op ``k`` (-1 when the op
    hits, misses without eviction, or evicts a clean line).
    ``flush_lines`` holds the dirty lines still resident at kernel end
    (each flushed back exactly once), and ``stats`` matches the
    step-wise :class:`Cache` counters *after* its end-of-kernel
    :meth:`~repro.nmcsim.cache.Cache.flush`.
    """

    hit: np.ndarray
    wb_line: np.ndarray
    flush_lines: np.ndarray
    stats: CacheStats

    @property
    def n_misses(self) -> int:
        return self.stats.misses


def _finish_stats(
    hit: np.ndarray, wb_line: np.ndarray, flush_lines: np.ndarray
) -> CacheStats:
    """Reconcile the arrays into post-flush :class:`CacheStats`."""
    hits = int(hit.sum())
    flushes = len(flush_lines)
    return CacheStats(
        hits=hits,
        misses=len(hit) - hits,
        writebacks=int((wb_line >= 0).sum()) + flushes,
        flushes=flushes,
    )


def classify_steps(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Exact step-wise classification via the :class:`Cache` model."""
    cache = Cache(n_lines=n_sets * ways, ways=ways)
    hit, wb_line = cache.classify(lines, writes)
    flush_lines = cache.dirty_lines()
    cache.flush()
    return LRUClassification(hit, wb_line, flush_lines, cache.stats)


def classify_lru(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Classify one access stream (vectorized, exact for any ways)."""
    return classify_vectorized(lines, writes, n_sets=n_sets, ways=ways)


def _dirty_after(
    g: np.ndarray, gw: np.ndarray, hit_g: np.ndarray
) -> np.ndarray:
    """Dirty state of each access's line right after the access.

    Write-allocate write-back semantics: a line is dirty iff it has been
    written since (and including) its allocating miss.  Segmenting the
    per-line access history at misses makes this a cumulative-sum scan:
    stable-sorting by line groups each line's accesses in order, and
    every miss starts a new segment (a line's first access is always a
    miss, so line boundaries coincide with segment starts).  Only needs
    the hit mask, so it works for every associativity.
    """
    n = len(g)
    order2 = np.argsort(g, kind="stable")
    h2 = hit_g[order2]
    w2 = gw[order2].astype(np.int64)
    seg_first = np.flatnonzero(~h2)
    seg_id = np.cumsum(~h2) - 1
    cw = np.cumsum(w2)
    base = (cw - w2)[seg_first]
    dirty_after = np.empty(n, dtype=bool)
    dirty_after[order2] = (cw - base[seg_id]) > 0
    return dirty_after


def classify_vectorized(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Exact LRU classification for any ``(n_sets, ways)`` geometry."""
    if ways < 1 or n_sets < 1:
        raise ValueError("cache geometry needs >= 1 way and >= 1 set")
    n = len(lines)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return LRUClassification(
            np.empty(0, dtype=bool), empty, empty, CacheStats()
        )

    # Group accesses into per-set sub-streams (stable sort keeps the
    # access order inside every set, matching Cache's set indexing).
    if n_sets > 1:
        set_id = lines % n_sets
        order = np.argsort(set_id, kind="stable")
        g, gw, gs = lines[order], writes[order], set_id[order]
    else:
        order = None
        g, gw = lines, writes
        gs = np.zeros(n, dtype=np.int64)
    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    np.equal(gs[1:], gs[:-1], out=same_set[1:])

    # Distance-0 hits: immediate repeats of the same line within a set.
    # The runs they form are the dedup'd (adjacent-distinct) per-set
    # stream y = run_line, on which everything else is computed.
    dist0 = np.empty(n, dtype=bool)
    dist0[0] = False
    dist0[1:] = same_set[1:] & (g[1:] == g[:-1])
    run_starts = np.flatnonzero(~dist0)
    n_runs = len(run_starts)
    run_line = g[run_starts]
    run_set = gs[run_starts]
    run_end = np.empty(n_runs, dtype=np.int64)
    run_end[:-1] = run_starts[1:] - 1
    run_end[-1] = n - 1
    prev1_same = np.empty(n_runs, dtype=bool)
    prev1_same[0] = False
    prev1_same[1:] = run_set[1:] == run_set[:-1]
    last_of_set = np.empty(n_runs, dtype=bool)
    last_of_set[-1] = True
    last_of_set[:-1] = run_set[1:] != run_set[:-1]

    hit_g = dist0.copy()
    wb_g = np.full(n, -1, dtype=np.int64)

    if ways == 1:
        # Direct-mapped: every run start is a miss; it evicts the
        # previous run's line of the same set; a line's residency is
        # exactly one run, so dirty == any write in the run.
        run_dirty = np.add.reduceat(gw.astype(np.int64), run_starts) > 0
        evict = np.flatnonzero(prev1_same)  # runs with a same-set victim
        victims = evict - 1
        dirty_victims = evict[run_dirty[victims]]
        wb_g[run_starts[dirty_victims]] = run_line[dirty_victims - 1]
        flush_lines = run_line[last_of_set & run_dirty]
    elif ways == 2:
        # 2-way: distance-1 hits are y[i] == y[i-2] in the dedup'd
        # stream; a miss with two same-set predecessors evicts y[i-2]
        # (always the LRU of the two residents).
        prev2_same = np.empty(n_runs, dtype=bool)
        prev2_same[:2] = False
        prev2_same[2:] = prev1_same[2:] & prev1_same[1:-1]
        hit1 = np.zeros(n_runs, dtype=bool)
        hit1[2:] = prev2_same[2:] & (run_line[2:] == run_line[:-2])
        hit_g[run_starts[hit1]] = True

        dirty_after = _dirty_after(g, gw, hit_g)

        evict = np.flatnonzero(~hit1 & prev2_same)
        victims = evict - 2
        # Victim dirty state at eviction == its state after its own last
        # access (it is untouched between that access and the miss).
        dirty_mask = dirty_after[run_end[victims]]
        wb_g[run_starts[evict[dirty_mask]]] = run_line[victims[dirty_mask]]

        # End-of-kernel residents per set: the lines of the last two
        # runs of each set block (adjacent-distinct, hence distinct).
        last_runs = np.flatnonzero(last_of_set)
        penult = last_runs[prev1_same[last_runs]] - 1
        residents = np.concatenate((last_runs, penult))
        flush_lines = run_line[residents[dirty_after[run_end[residents]]]]
    else:
        # General associativity.  The hit mask comes straight from
        # Mattson: a run hits iff its per-set stack distance on the
        # dedup'd stream is < ways (dedup preserves distances — repeats
        # add no distinct lines).
        hit_runs = lru_hit_mask(run_line, run_set, ways)
        hit_g[run_starts[hit_runs]] = True
        dirty_after = _dirty_after(g, gw, hit_g)

        # Victim attribution: per set, keep the residents as a recency
        # list of run indices (most recent first) threaded through
        # ``fwd``/``bwd`` link arrays.  A hit moves its line's entry —
        # which is exactly the line's previous run in the set — to the
        # front; a miss pushes a new entry and, when the set exceeds
        # ``ways`` residents, evicts the tail (the LRU resident).  Each
        # run does O(1) pointer work, so the walk is linear.
        prev_occ = np.full(n_runs, -1, dtype=np.int64)
        seen: dict[int, int] = {}
        run_line_l = run_line.tolist()
        run_set_l = run_set.tolist()
        for r, ln in enumerate(run_line_l):
            key = ln  # one line maps to one set; the line is the key
            p = seen.get(key, -1)
            prev_occ[r] = p
            seen[key] = r
        prev_occ_l = prev_occ.tolist()
        hit_runs_l = hit_runs.tolist()

        fwd = [-1] * n_runs  # next-less-recent run in the set's list
        bwd = [-1] * n_runs  # next-more-recent run in the set's list
        heads: dict[int, int] = {}
        tails: dict[int, int] = {}
        sizes: dict[int, int] = {}
        victim_of = np.full(n_runs, -1, dtype=np.int64)
        for r in range(n_runs):
            si = run_set_l[r]
            if hit_runs_l[r]:
                # Unlink the line's previous entry.
                p = prev_occ_l[r]
                pb, pf = bwd[p], fwd[p]
                if pb >= 0:
                    fwd[pb] = pf
                else:
                    heads[si] = pf
                if pf >= 0:
                    bwd[pf] = pb
                else:
                    tails[si] = pb
            else:
                size = sizes.get(si, 0)
                if size >= ways:
                    # Evict the LRU resident: the tail of the list.
                    v = tails[si]
                    victim_of[r] = v
                    vb = bwd[v]
                    tails[si] = vb
                    if vb >= 0:
                        fwd[vb] = -1
                    else:
                        heads[si] = -1
                else:
                    sizes[si] = size + 1
            # Push this run at the front.
            h = heads.get(si, -1)
            fwd[r] = h
            bwd[r] = -1
            if h >= 0:
                bwd[h] = r
            else:
                tails[si] = r
            heads[si] = r

        evict = np.flatnonzero(victim_of >= 0)
        victims = victim_of[evict]
        dirty_mask = dirty_after[run_end[victims]]
        wb_g[run_starts[evict[dirty_mask]]] = run_line[victims[dirty_mask]]

        # End-of-kernel residents: whatever remains on the recency lists.
        residents_l: list[int] = []
        for si, h in heads.items():
            r = h
            while r >= 0:
                residents_l.append(r)
                r = fwd[r]
        residents = np.asarray(residents_l, dtype=np.int64)
        if len(residents):
            flush_lines = run_line[
                residents[dirty_after[run_end[residents]]]
            ]
        else:
            flush_lines = empty

    if order is not None:
        hit = np.empty(n, dtype=bool)
        wb_line = np.empty(n, dtype=np.int64)
        hit[order] = hit_g
        wb_line[order] = wb_g
    else:
        hit, wb_line = hit_g, wb_g
    return LRUClassification(
        hit, wb_line, np.sort(flush_lines), _finish_stats(hit, wb_line, flush_lines)
    )
