"""Vectorized L1 classification (phase A of the fast simulation engine).

The classic stack-distance result behind the profiler's locality features
(:mod:`repro.ir.stackdist`) also makes L1 simulation *data-parallel*: a
``W``-way set-associative LRU cache hits exactly the accesses whose
per-set reuse distance is < ``W``, independent of timing.  Hit/miss
classification, eviction victims, dirty tracking and the end-of-kernel
flush set are therefore properties of the access *stream alone* and can
be computed up front as arrays — leaving only the (typically small) miss
and writeback event set for the exact global-time contention loop
(phase B, :mod:`repro.nmcsim.simulator`).

Two implementations with identical semantics:

* :func:`classify_vectorized` — pure NumPy, exact for associativity
  ``ways <= 2`` (covers the paper's Table 3 L1: 2-way, and direct-mapped
  sweeps).  Distance-0 hits are run repeats within a set; distance-1
  hits are ``y[i] == y[i-2]`` patterns in the run-deduplicated per-set
  stream (which is adjacent-distinct, so the LRU victim of a miss is
  always ``y[i-2]``); dirty state is a segmented any-write scan between
  allocating misses.
* :func:`classify_steps` — the step-wise :class:`~repro.nmcsim.cache.Cache`
  walk, exact for any geometry (and the golden reference the vectorized
  path is tested against).

:func:`classify_lru` picks the vectorized path whenever it is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import Cache, CacheStats


@dataclass(frozen=True)
class LRUClassification:
    """Per-access outcome arrays of one PE stream against one L1 geometry.

    ``hit[k]`` tells whether memory op ``k`` hits; ``wb_line[k]`` is the
    line address of the dirty victim evicted by op ``k`` (-1 when the op
    hits, misses without eviction, or evicts a clean line).
    ``flush_lines`` holds the dirty lines still resident at kernel end
    (each flushed back exactly once), and ``stats`` matches the
    step-wise :class:`Cache` counters *after* its end-of-kernel
    :meth:`~repro.nmcsim.cache.Cache.flush`.
    """

    hit: np.ndarray
    wb_line: np.ndarray
    flush_lines: np.ndarray
    stats: CacheStats

    @property
    def n_misses(self) -> int:
        return self.stats.misses


def _finish_stats(
    hit: np.ndarray, wb_line: np.ndarray, flush_lines: np.ndarray
) -> CacheStats:
    """Reconcile the arrays into post-flush :class:`CacheStats`."""
    hits = int(hit.sum())
    flushes = len(flush_lines)
    return CacheStats(
        hits=hits,
        misses=len(hit) - hits,
        writebacks=int((wb_line >= 0).sum()) + flushes,
        flushes=flushes,
    )


def classify_steps(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Exact step-wise classification via the :class:`Cache` model."""
    cache = Cache(n_lines=n_sets * ways, ways=ways)
    hit, wb_line = cache.classify(lines, writes)
    flush_lines = cache.dirty_lines()
    cache.flush()
    return LRUClassification(hit, wb_line, flush_lines, cache.stats)


def classify_lru(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Classify one access stream; vectorized whenever exact (ways <= 2)."""
    if ways <= 2:
        return classify_vectorized(lines, writes, n_sets=n_sets, ways=ways)
    return classify_steps(lines, writes, n_sets=n_sets, ways=ways)


def classify_vectorized(
    lines: np.ndarray, writes: np.ndarray, *, n_sets: int, ways: int
) -> LRUClassification:
    """Pure-NumPy exact LRU classification for ``ways <= 2``."""
    if ways > 2:
        raise ValueError(
            "the vectorized classifier is exact only for ways <= 2; "
            "use classify_steps (or classify_lru, which dispatches)"
        )
    n = len(lines)
    lines = np.asarray(lines, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return LRUClassification(
            np.empty(0, dtype=bool), empty, empty, CacheStats()
        )

    # Group accesses into per-set sub-streams (stable sort keeps the
    # access order inside every set, matching Cache's set indexing).
    if n_sets > 1:
        set_id = lines % n_sets
        order = np.argsort(set_id, kind="stable")
        g, gw, gs = lines[order], writes[order], set_id[order]
    else:
        order = None
        g, gw = lines, writes
        gs = np.zeros(n, dtype=np.int64)
    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    np.equal(gs[1:], gs[:-1], out=same_set[1:])

    # Distance-0 hits: immediate repeats of the same line within a set.
    # The runs they form are the dedup'd (adjacent-distinct) per-set
    # stream y = run_line, on which everything else is computed.
    dist0 = np.empty(n, dtype=bool)
    dist0[0] = False
    dist0[1:] = same_set[1:] & (g[1:] == g[:-1])
    run_starts = np.flatnonzero(~dist0)
    n_runs = len(run_starts)
    run_id = np.cumsum(~dist0) - 1
    run_line = g[run_starts]
    run_set = gs[run_starts]
    run_end = np.empty(n_runs, dtype=np.int64)
    run_end[:-1] = run_starts[1:] - 1
    run_end[-1] = n - 1
    prev1_same = np.empty(n_runs, dtype=bool)
    prev1_same[0] = False
    prev1_same[1:] = run_set[1:] == run_set[:-1]
    last_of_set = np.empty(n_runs, dtype=bool)
    last_of_set[-1] = True
    last_of_set[:-1] = run_set[1:] != run_set[:-1]

    hit_g = dist0.copy()
    wb_g = np.full(n, -1, dtype=np.int64)

    if ways == 1:
        # Direct-mapped: every run start is a miss; it evicts the
        # previous run's line of the same set; a line's residency is
        # exactly one run, so dirty == any write in the run.
        run_dirty = np.add.reduceat(gw.astype(np.int64), run_starts) > 0
        evict = np.flatnonzero(prev1_same)  # runs with a same-set victim
        victims = evict - 1
        dirty_victims = evict[run_dirty[victims]]
        wb_g[run_starts[dirty_victims]] = run_line[dirty_victims - 1]
        flush_lines = run_line[last_of_set & run_dirty]
    else:
        # 2-way: distance-1 hits are y[i] == y[i-2] in the dedup'd
        # stream; a miss with two same-set predecessors evicts y[i-2]
        # (always the LRU of the two residents).
        prev2_same = np.empty(n_runs, dtype=bool)
        prev2_same[:2] = False
        prev2_same[2:] = prev1_same[2:] & prev1_same[1:-1]
        hit1 = np.zeros(n_runs, dtype=bool)
        hit1[2:] = prev2_same[2:] & (run_line[2:] == run_line[:-2])
        hit_g[run_starts[hit1]] = True

        # Dirty state per access: any write to the line since its
        # allocating miss (write-allocate: the miss's own write counts).
        # Segment the accesses by (line, allocation): stable-sorting by
        # line groups each line's accesses in order; every miss starts a
        # new segment (a line's first access is always a miss, so line
        # boundaries coincide with segment starts).
        order2 = np.argsort(g, kind="stable")
        h2 = hit_g[order2]
        w2 = gw[order2].astype(np.int64)
        seg_first = np.flatnonzero(~h2)
        seg_id = np.cumsum(~h2) - 1
        cw = np.cumsum(w2)
        base = (cw - w2)[seg_first]
        dirty_after = np.empty(n, dtype=bool)
        dirty_after[order2] = (cw - base[seg_id]) > 0

        evict = np.flatnonzero(~hit1 & prev2_same)
        victims = evict - 2
        # Victim dirty state at eviction == its state after its own last
        # access (it is untouched between that access and the miss).
        dirty_mask = dirty_after[run_end[victims]]
        wb_g[run_starts[evict[dirty_mask]]] = run_line[victims[dirty_mask]]

        # End-of-kernel residents per set: the lines of the last two
        # runs of each set block (adjacent-distinct, hence distinct).
        last_runs = np.flatnonzero(last_of_set)
        penult = last_runs[prev1_same[last_runs]] - 1
        residents = np.concatenate((last_runs, penult))
        flush_lines = run_line[residents[dirty_after[run_end[residents]]]]

    if order is not None:
        hit = np.empty(n, dtype=bool)
        wb_line = np.empty(n, dtype=np.int64)
        hit[order] = hit_g
        wb_line[order] = wb_g
    else:
        hit, wb_line = hit_g, wb_g
    return LRUClassification(
        hit, wb_line, np.sort(flush_lines), _finish_stats(hit, wb_line, flush_lines)
    )
