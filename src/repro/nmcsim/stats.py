"""Post-hoc statistics and reports over simulation results.

Turns a :class:`~repro.nmcsim.results.SimulationResult` into the derived
quantities an architect inspects: achieved bandwidth, PE utilisation,
memory intensity, per-component energy shares — and renders them as a
plain-text report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NMCConfig, default_nmc_config
from ..errors import SimulationError
from .results import SimulationResult


@dataclass(frozen=True)
class SimulationStats:
    """Derived metrics of one simulation."""

    ipc_per_pe: float
    dram_bandwidth_gbs: float      #: achieved DRAM bandwidth (GB/s)
    bandwidth_utilisation: float   #: fraction of peak internal bandwidth
    l1_miss_ratio: float
    misses_per_kilo_instruction: float
    energy_shares: dict            #: component -> fraction of total energy
    average_power_w: float


def derive_stats(
    result: SimulationResult, config: NMCConfig | None = None
) -> SimulationStats:
    """Compute :class:`SimulationStats` for a simulation result."""
    config = config or default_nmc_config()
    if result.time_s <= 0:
        raise SimulationError("result has non-positive execution time")
    dram_bytes = result.dram.accesses * config.line_bytes
    achieved = dram_bytes / result.time_s / 1e9
    # Peak internal bandwidth: every vault bus streaming one line per tBL.
    peak = (
        config.n_vaults * config.line_bytes
        / config.timing.t_bl_ns
    )  # bytes/ns == GB/s
    total_e = result.energy.total_j
    shares = {
        name: value / total_e if total_e > 0 else 0.0
        for name, value in result.energy.as_dict().items()
        if name != "total_j"
    }
    return SimulationStats(
        ipc_per_pe=result.ipc / result.n_pes_used,
        dram_bandwidth_gbs=achieved,
        bandwidth_utilisation=achieved / peak if peak > 0 else 0.0,
        l1_miss_ratio=result.cache.miss_ratio,
        misses_per_kilo_instruction=(
            1000.0 * result.cache.misses / result.instructions
        ),
        energy_shares=shares,
        average_power_w=result.power_w,
    )


def format_stats(
    result: SimulationResult, config: NMCConfig | None = None
) -> str:
    """Human-readable report of a simulation's derived statistics."""
    from ..core.reporting import format_table

    stats = derive_stats(result, config)
    rows = [
        ["workload", result.workload or "(unnamed)"],
        ["instructions", f"{result.instructions:,}"],
        ["PEs used", result.n_pes_used],
        ["aggregate IPC", f"{result.ipc:.4f}"],
        ["per-PE IPC", f"{stats.ipc_per_pe:.4f}"],
        ["execution time", f"{result.time_s * 1e6:.2f} us"],
        ["L1 miss ratio", f"{stats.l1_miss_ratio:.1%}"],
        ["misses / kilo-instruction", f"{stats.misses_per_kilo_instruction:.1f}"],
        ["DRAM bandwidth", f"{stats.dram_bandwidth_gbs:.2f} GB/s"],
        ["bandwidth utilisation", f"{stats.bandwidth_utilisation:.1%}"],
        ["total energy", f"{result.energy_j * 1e3:.4f} mJ"],
        ["average power", f"{stats.average_power_w:.2f} W"],
    ]
    for name, share in stats.energy_shares.items():
        rows.append([f"energy share: {name}", f"{share:.1%}"])
    return format_table(["metric", "value"], rows, title="simulation report")
