"""Optional JIT/native backend for the fast engine's contention loop.

Phase B of the fast engine (:mod:`repro.nmcsim.simulator`) replays the
miss/writeback event stream through a global-time heap.  The loop is
exact but interpreter-bound: profiling shows ~70% of its cost is CPython
dispatch and heap bookkeeping, not arithmetic.  This module provides the
same loop over *packed* flat arrays (all streams' events concatenated,
offset-indexed) as a compiled kernel, selected at import time:

* ``numba`` — :func:`contend_packed` is ``njit``-compiled when numba is
  importable (the dependency stays optional; nothing here imports it at
  module load);
* ``cc`` — otherwise the equivalent C translation is compiled on demand
  with the system C compiler (``-O2 -fPIC -shared -ffp-contract=off``)
  into a source-hash-keyed shared object under a cache directory and
  loaded with :mod:`ctypes`;
* neither available → :func:`get_kernel` returns ``(None, None)`` and
  the simulator keeps its pure-Python loop.

Bit-equivalence contract: every floating-point expression below keeps
the exact operation order of the Python loop (and of
``StackedMemory.access``).  C ``double`` and CPython ``float`` are both
IEEE-754 binary64, and ``-ffp-contract=off`` forbids FMA contraction,
so the compiled kernels produce byte-identical results — this is
asserted by the equivalence suite, not assumed.

The kernel is gated behind ``REPRO_SIM_JIT=1`` (checked by the
simulator, not here); :func:`contend_packed` itself is also the pure
Python reference used by the unit tests to validate the packed
formulation independently of any compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Callable

import numpy as np

from ..obs import get_logger

log = get_logger("repro.nmcsim.native")

#: Environment variable selecting the shared-object cache directory.
CACHE_ENV_VAR = "REPRO_SIM_JIT_CACHE"


def contend_packed(
    off,
    block, vault, bank,
    wblock, wvault, wbank,
    dnext, t0, tail, finish,
    bank_ready, bank_row, bank_until, bus_ready,
    t_cl, t_bl, t_rp, hop, linger, closed, occupancy, wr_extra, l1_cycle,
    ooo, mshrs, mshr_buf, mshr_len,
    heap_t, heap_i, pos,
):  # pragma: no cover - exercised via tests + compiled backends
    """Packed-array contention loop (numba-compilable, pure NumPy ops).

    One entry per miss event, streams concatenated with ``off`` bounds;
    ``wbank < 0`` marks clean evictions.  ``finish`` receives each packed
    stream's completion time.  ``heap_t``/``heap_i``/``pos``/``mshr_*``
    are caller-allocated scratch.  Algorithm, event order and FP
    evaluation order are exactly the simulator's Python loop: a
    (time, stream) min-heap used peek-style, with the root's decrease-key
    bound being the heap's second minimum — which in a binary heap is
    always one of the root's two children, so the bound (and hence the
    event order) is independent of the heap's internal layout.
    """
    n_streams = off.shape[0] - 1
    heap_n = n_streams
    for i in range(n_streams):
        heap_t[i] = t0[i]
        heap_i[i] = i
        pos[i] = off[i]
        mshr_len[i] = 0
    # Bottom-up heapify on the (t, i) keys.
    for k0 in range(heap_n // 2 - 1, -1, -1):
        k = k0
        kt = heap_t[k]
        ki = heap_i[k]
        while True:
            c = 2 * k + 1
            if c >= heap_n:
                break
            if c + 1 < heap_n and (
                heap_t[c + 1] < heap_t[c]
                or (heap_t[c + 1] == heap_t[c] and heap_i[c + 1] < heap_i[c])
            ):
                c += 1
            if heap_t[c] < kt or (heap_t[c] == kt and heap_i[c] < ki):
                heap_t[k] = heap_t[c]
                heap_i[k] = heap_i[c]
                k = c
            else:
                break
        heap_t[k] = kt
        heap_i[k] = ki

    inf = np.inf
    while heap_n > 0:
        t = heap_t[0]
        i = heap_i[0]
        j = pos[i]
        end = off[i + 1]
        mbase = i * mshrs
        mlen = mshr_len[i]
        # Decrease-key bound: the global second minimum, i.e. the
        # smaller of the root's children; +inf when this stream is alone.
        if heap_n > 1:
            c = 1
            if heap_n > 2 and (
                heap_t[2] < heap_t[1]
                or (heap_t[2] == heap_t[1] and heap_i[2] < heap_i[1])
            ):
                c = 2
            ct = heap_t[c]
            ci = heap_i[c]
        else:
            ct = inf
            ci = np.int64(-1)
        while True:
            blk = block[j]
            v = vault[j]
            bi = bank[j]
            # Miss access: timing half of StackedMemory.access.
            now = t + hop
            ready = bank_ready[bi]
            start = now if now > ready else ready
            open_row = bank_row[bi]
            row_open = open_row >= 0 and start <= bank_until[bi]
            if row_open and blk == open_row:
                data_at = start + t_cl + t_bl
                bank_ready[bi] = start + t_bl
            else:
                pre = t_rp if row_open else 0.0
                data_at = start + pre + closed
                bank_ready[bi] = start + pre + occupancy
            bank_row[bi] = blk
            bank_until[bi] = data_at + linger
            br = bus_ready[v]
            if data_at - t_bl < br:
                data_at = br + t_bl
            bus_ready[v] = data_at
            done = data_at + hop
            if ooo == 0:
                t = done + l1_cycle
            else:
                # Per-stream MSHR min-heap (completion times).
                k = mlen
                mlen += 1
                while k > 0:
                    p = (k - 1) // 2
                    if done < mshr_buf[mbase + p]:
                        mshr_buf[mbase + k] = mshr_buf[mbase + p]
                        k = p
                    else:
                        break
                mshr_buf[mbase + k] = done
                if mlen >= mshrs:
                    oldest = mshr_buf[mbase]
                    mlen -= 1
                    if mlen > 0:
                        last = mshr_buf[mbase + mlen]
                        k = 0
                        while True:
                            c = 2 * k + 1
                            if c >= mlen:
                                break
                            if (
                                c + 1 < mlen
                                and mshr_buf[mbase + c + 1]
                                < mshr_buf[mbase + c]
                            ):
                                c += 1
                            if mshr_buf[mbase + c] < last:
                                mshr_buf[mbase + k] = mshr_buf[mbase + c]
                                k = c
                            else:
                                break
                        mshr_buf[mbase + k] = last
                    t = (t if t >= oldest else oldest) + l1_cycle
                else:
                    t = t + l1_cycle
            wbi = wbank[j]
            if wbi >= 0:
                # Dirty-victim writeback: same pipeline, posted at the
                # miss completion time; does not block the PE.
                wblk = wblock[j]
                wv = wvault[j]
                now = t + hop
                ready = bank_ready[wbi]
                start = now if now > ready else ready
                open_row = bank_row[wbi]
                row_open = open_row >= 0 and start <= bank_until[wbi]
                if row_open and wblk == open_row:
                    data_at = start + t_cl + t_bl
                    bank_ready[wbi] = start + t_bl
                else:
                    pre = t_rp if row_open else 0.0
                    data_at = start + pre + closed
                    bank_ready[wbi] = start + pre + occupancy
                if wr_extra != 0.0:
                    # Posted-write asymmetry (NAND-class backends).
                    data_at = data_at + wr_extra
                    bank_ready[wbi] = bank_ready[wbi] + wr_extra
                bank_row[wbi] = wblk
                bank_until[wbi] = data_at + linger
                br = bus_ready[wv]
                if data_at - t_bl < br:
                    data_at = br + t_bl
                bus_ready[wv] = data_at
            dn = dnext[j]
            j += 1
            if j < end:
                tn = t + dn
                if tn < ct or (tn == ct and i < ci):
                    t = tn
                    continue
                pos[i] = j
                mshr_len[i] = mlen
                # heapreplace with the stream's new key.
                k = 0
                while True:
                    c = 2 * k + 1
                    if c >= heap_n:
                        break
                    if c + 1 < heap_n and (
                        heap_t[c + 1] < heap_t[c]
                        or (
                            heap_t[c + 1] == heap_t[c]
                            and heap_i[c + 1] < heap_i[c]
                        )
                    ):
                        c += 1
                    if heap_t[c] < tn or (
                        heap_t[c] == tn and heap_i[c] < i
                    ):
                        heap_t[k] = heap_t[c]
                        heap_i[k] = heap_i[c]
                        k = c
                    else:
                        break
                heap_t[k] = tn
                heap_i[k] = i
                break
            fin = t + tail[i]
            for q in range(mlen):
                if mshr_buf[mbase + q] > fin:
                    fin = mshr_buf[mbase + q]
            mshr_len[i] = 0
            finish[i] = fin
            # Pop the exhausted stream.
            heap_n -= 1
            if heap_n > 0:
                kt = heap_t[heap_n]
                ki = heap_i[heap_n]
                k = 0
                while True:
                    c = 2 * k + 1
                    if c >= heap_n:
                        break
                    if c + 1 < heap_n and (
                        heap_t[c + 1] < heap_t[c]
                        or (
                            heap_t[c + 1] == heap_t[c]
                            and heap_i[c + 1] < heap_i[c]
                        )
                    ):
                        c += 1
                    if heap_t[c] < kt or (
                        heap_t[c] == kt and heap_i[c] < ki
                    ):
                        heap_t[k] = heap_t[c]
                        heap_i[k] = heap_i[c]
                        k = c
                    else:
                        break
                heap_t[k] = kt
                heap_i[k] = ki
            break


#: Column order of the per-point float parameter table handed to
#: :func:`contend_packed_multi` (one row per design point).
PARAM_FIELDS = (
    "t_cl", "t_bl", "t_rp", "hop", "linger", "closed", "occupancy",
    "wr_extra", "l1_cycle",
)

#: Column order of the per-point integer parameter table: the PE model
#: switches plus the scratch-reset extents (bank / vault counts).
IPARAM_FIELDS = ("ooo", "mshrs", "n_banks", "n_vaults")


def _make_multi(single: Callable) -> Callable:
    """The multi-point loop over a single-point kernel body.

    Shared between the pure-Python reference and the numba build (numba
    compiles the closure with ``single`` being the jitted single-point
    kernel).  ``p_off`` bounds each design point's packed-stream window
    in the concatenated arrays; ``off`` entries are *absolute* event
    indices, so the per-point window ``off[s0:s1+1]`` indexes the global
    event columns directly.  Scratch arrays are sized for the largest
    point and re-initialised per point — each point starts from the
    exact idle-memory state a fresh :class:`StackedMemory` would have,
    which is what makes one batched invocation bit-identical to N
    separate ones.
    """

    def contend_packed_multi(
        p_off, off,
        block, vault, bank, wblock, wvault, wbank,
        dnext, t0, tail, finish,
        params, iparams,
        bank_ready, bank_row, bank_until, bus_ready,
        mshr_buf, mshr_len,
        heap_t, heap_i, pos,
    ):
        n_points = p_off.shape[0] - 1
        for p in range(n_points):
            s0 = p_off[p]
            s1 = p_off[p + 1]
            if s1 == s0:
                continue
            nb = iparams[p, 2]
            nv = iparams[p, 3]
            bank_ready[:nb] = 0.0
            bank_row[:nb] = -1
            bank_until[:nb] = -1.0
            bus_ready[:nv] = 0.0
            single(
                off[s0:s1 + 1],
                block, vault, bank, wblock, wvault, wbank,
                dnext, t0[s0:s1], tail[s0:s1], finish[s0:s1],
                bank_ready, bank_row, bank_until, bus_ready,
                params[p, 0], params[p, 1], params[p, 2], params[p, 3],
                params[p, 4], params[p, 5], params[p, 6], params[p, 7],
                params[p, 8],
                iparams[p, 0], iparams[p, 1],
                mshr_buf, mshr_len,
                heap_t, heap_i, pos,
            )

    return contend_packed_multi


#: Pure-Python reference of the multi-point kernel (also the numba source).
contend_packed_multi = _make_multi(contend_packed)


_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

typedef int64_t i64;

static void sift_down(double *ht, i64 *hi, i64 n, i64 k) {
    double t = ht[k];
    i64 v = hi[k];
    for (;;) {
        i64 c = 2 * k + 1;
        if (c >= n) break;
        if (c + 1 < n && (ht[c + 1] < ht[c] ||
                          (ht[c + 1] == ht[c] && hi[c + 1] < hi[c]))) c++;
        if (ht[c] < t || (ht[c] == t && hi[c] < v)) {
            ht[k] = ht[c];
            hi[k] = hi[c];
            k = c;
        } else break;
    }
    ht[k] = t;
    hi[k] = v;
}

void contend_packed(
    const i64 *off,
    const i64 *block, const i64 *vault, const i64 *bank,
    const i64 *wblock, const i64 *wvault, const i64 *wbank,
    const double *dnext, const double *t0, const double *tail,
    double *finish,
    double *bank_ready, i64 *bank_row, double *bank_until,
    double *bus_ready,
    double t_cl, double t_bl, double t_rp, double hop,
    double linger, double closed, double occupancy, double wr_extra,
    double l1_cycle,
    i64 ooo, i64 mshrs, double *mshr_buf, i64 *mshr_len,
    double *heap_t, i64 *heap_i, i64 *pos, i64 n_streams)
{
    i64 heap_n = n_streams;
    for (i64 i = 0; i < n_streams; i++) {
        heap_t[i] = t0[i];
        heap_i[i] = i;
        pos[i] = off[i];
        mshr_len[i] = 0;
    }
    for (i64 k = heap_n / 2 - 1; k >= 0; k--)
        sift_down(heap_t, heap_i, heap_n, k);

    while (heap_n > 0) {
        double t = heap_t[0];
        i64 i = heap_i[0];
        i64 j = pos[i];
        i64 end = off[i + 1];
        double *mbuf = mshr_buf + i * mshrs;
        i64 mlen = mshr_len[i];
        double ct;
        i64 ci;
        if (heap_n > 1) {
            i64 c = 1;
            if (heap_n > 2 && (heap_t[2] < heap_t[1] ||
                               (heap_t[2] == heap_t[1] &&
                                heap_i[2] < heap_i[1]))) c = 2;
            ct = heap_t[c];
            ci = heap_i[c];
        } else {
            ct = INFINITY;
            ci = -1;
        }
        for (;;) {
            i64 blk = block[j];
            i64 v = vault[j];
            i64 bi = bank[j];
            double now = t + hop;
            double ready = bank_ready[bi];
            double start = now > ready ? now : ready;
            i64 open_row = bank_row[bi];
            int row_open = open_row >= 0 && start <= bank_until[bi];
            double data_at;
            if (row_open && blk == open_row) {
                data_at = start + t_cl + t_bl;
                bank_ready[bi] = start + t_bl;
            } else {
                double pre = row_open ? t_rp : 0.0;
                data_at = start + pre + closed;
                bank_ready[bi] = start + pre + occupancy;
            }
            bank_row[bi] = blk;
            bank_until[bi] = data_at + linger;
            double br = bus_ready[v];
            if (data_at - t_bl < br) data_at = br + t_bl;
            bus_ready[v] = data_at;
            double done = data_at + hop;
            if (!ooo) {
                t = done + l1_cycle;
            } else {
                i64 k = mlen++;
                while (k > 0) {
                    i64 p = (k - 1) / 2;
                    if (done < mbuf[p]) { mbuf[k] = mbuf[p]; k = p; }
                    else break;
                }
                mbuf[k] = done;
                if (mlen >= mshrs) {
                    double oldest = mbuf[0];
                    mlen--;
                    if (mlen > 0) {
                        double last = mbuf[mlen];
                        k = 0;
                        for (;;) {
                            i64 c = 2 * k + 1;
                            if (c >= mlen) break;
                            if (c + 1 < mlen && mbuf[c + 1] < mbuf[c]) c++;
                            if (mbuf[c] < last) { mbuf[k] = mbuf[c]; k = c; }
                            else break;
                        }
                        mbuf[k] = last;
                    }
                    t = (t >= oldest ? t : oldest) + l1_cycle;
                } else {
                    t = t + l1_cycle;
                }
            }
            i64 wbi = wbank[j];
            if (wbi >= 0) {
                i64 wblk = wblock[j];
                i64 wv = wvault[j];
                now = t + hop;
                ready = bank_ready[wbi];
                start = now > ready ? now : ready;
                open_row = bank_row[wbi];
                row_open = open_row >= 0 && start <= bank_until[wbi];
                if (row_open && wblk == open_row) {
                    data_at = start + t_cl + t_bl;
                    bank_ready[wbi] = start + t_bl;
                } else {
                    double pre = row_open ? t_rp : 0.0;
                    data_at = start + pre + closed;
                    bank_ready[wbi] = start + pre + occupancy;
                }
                if (wr_extra != 0.0) {
                    /* posted-write asymmetry (NAND-class backends) */
                    data_at = data_at + wr_extra;
                    bank_ready[wbi] = bank_ready[wbi] + wr_extra;
                }
                bank_row[wbi] = wblk;
                bank_until[wbi] = data_at + linger;
                br = bus_ready[wv];
                if (data_at - t_bl < br) data_at = br + t_bl;
                bus_ready[wv] = data_at;
            }
            double dn = dnext[j];
            j++;
            if (j < end) {
                double tn = t + dn;
                if (tn < ct || (tn == ct && i < ci)) { t = tn; continue; }
                pos[i] = j;
                mshr_len[i] = mlen;
                heap_t[0] = tn;
                heap_i[0] = i;
                sift_down(heap_t, heap_i, heap_n, 0);
                break;
            }
            double fin = t + tail[i];
            for (i64 q = 0; q < mlen; q++)
                if (mbuf[q] > fin) fin = mbuf[q];
            mshr_len[i] = 0;
            finish[i] = fin;
            heap_n--;
            if (heap_n > 0) {
                heap_t[0] = heap_t[heap_n];
                heap_i[0] = heap_i[heap_n];
                sift_down(heap_t, heap_i, heap_n, 0);
            }
            break;
        }
    }
}

void contend_packed_multi(
    const i64 *p_off,
    const i64 *off,
    const i64 *block, const i64 *vault, const i64 *bank,
    const i64 *wblock, const i64 *wvault, const i64 *wbank,
    const double *dnext, const double *t0, const double *tail,
    double *finish,
    const double *params, const i64 *iparams,
    double *bank_ready, i64 *bank_row, double *bank_until,
    double *bus_ready,
    double *mshr_buf, i64 *mshr_len,
    double *heap_t, i64 *heap_i, i64 *pos, i64 n_points)
{
    for (i64 p = 0; p < n_points; p++) {
        i64 s0 = p_off[p];
        i64 s1 = p_off[p + 1];
        if (s1 == s0) continue;
        const double *pp = params + p * 9;
        const i64 *ip = iparams + p * 4;
        i64 nb = ip[2];
        i64 nv = ip[3];
        for (i64 b = 0; b < nb; b++) {
            bank_ready[b] = 0.0;
            bank_row[b] = -1;
            bank_until[b] = -1.0;
        }
        for (i64 v = 0; v < nv; v++) bus_ready[v] = 0.0;
        contend_packed(
            off + s0, block, vault, bank, wblock, wvault, wbank,
            dnext, t0 + s0, tail + s0, finish + s0,
            bank_ready, bank_row, bank_until, bus_ready,
            pp[0], pp[1], pp[2], pp[3], pp[4], pp[5], pp[6], pp[7], pp[8],
            ip[0], ip[1], mshr_buf, mshr_len,
            heap_t, heap_i, pos, s1 - s0);
    }
}
"""


def _build_numba() -> Callable | None:
    try:
        import numba  # noqa: F401 - optional dependency
    except ImportError:
        return None
    try:
        return numba.njit(cache=True, fastmath=False)(contend_packed)
    except Exception as exc:  # pragma: no cover - defensive
        log.warning("numba JIT unavailable", extra={"ctx": {"error": str(exc)}})
        return None


def _build_numba_multi(single: Callable) -> Callable | None:
    """numba-compile the multi-point loop over the jitted single kernel.

    ``cache=True`` is not usable here: the closure captures the jitted
    single-point dispatcher, which numba cannot persist to its on-disk
    cache — the (cheap) outer loop recompiles per process instead.
    """
    try:
        import numba  # noqa: F401 - optional dependency
    except ImportError:  # pragma: no cover - numba gone mid-process
        return None
    try:
        return numba.njit(cache=False, fastmath=False)(_make_multi(single))
    except Exception as exc:  # pragma: no cover - defensive
        log.warning(
            "numba multi-point JIT unavailable",
            extra={"ctx": {"error": str(exc)}},
        )
        return None


def _cache_dir() -> str:
    path = os.environ.get(CACHE_ENV_VAR, "").strip() or os.path.join(
        tempfile.gettempdir(), "repro-simjit"
    )
    os.makedirs(path, exist_ok=True)
    return path


_CC_LIB: ctypes.CDLL | None = None
_CC_TRIED = False


def _load_cc_lib() -> ctypes.CDLL | None:
    """Compile (once) and load the shared object holding both C kernels."""
    global _CC_LIB, _CC_TRIED
    if _CC_TRIED:
        return _CC_LIB
    _CC_TRIED = True
    compiler = (
        shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    try:
        cache = _cache_dir()
        so_path = os.path.join(cache, f"contend-{digest}.so")
        if not os.path.exists(so_path):
            src_path = os.path.join(cache, f"contend-{digest}.c")
            with open(src_path, "w") as fh:
                fh.write(_C_SOURCE)
            tmp_path = so_path + f".tmp{os.getpid()}"
            # -ffp-contract=off: no FMA contraction, so the doubles match
            # CPython's float arithmetic operation for operation.
            subprocess.run(
                [
                    compiler, "-O2", "-fPIC", "-shared",
                    "-ffp-contract=off", "-o", tmp_path, src_path,
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, so_path)
        _CC_LIB = ctypes.CDLL(so_path)
    except (OSError, subprocess.SubprocessError) as exc:
        log.warning(
            "C kernel build failed; falling back to Python loop",
            extra={"ctx": {"compiler": compiler, "error": str(exc)}},
        )
        return None
    return _CC_LIB


def _build_cc() -> Callable | None:
    lib = _load_cc_lib()
    if lib is None:
        return None
    fn = lib.contend_packed
    fn.restype = None
    dp = ctypes.POINTER(ctypes.c_double)
    ip = ctypes.POINTER(ctypes.c_int64)
    fn.argtypes = (
        [ip] + [ip] * 6 + [dp] * 4
        + [dp, ip, dp, dp]
        + [ctypes.c_double] * 9
        + [ctypes.c_int64, ctypes.c_int64, dp, ip]
        + [dp, ip, ip, ctypes.c_int64]
    )

    def _as(arr: np.ndarray, ptr_type):
        return arr.ctypes.data_as(ptr_type)

    def kernel(
        off, block, vault, bank, wblock, wvault, wbank,
        dnext, t0, tail, finish,
        bank_ready, bank_row, bank_until, bus_ready,
        t_cl, t_bl, t_rp, hop, linger, closed, occupancy, wr_extra,
        l1_cycle,
        ooo, mshrs, mshr_buf, mshr_len, heap_t, heap_i, pos,
    ) -> None:
        fn(
            _as(off, ip), _as(block, ip), _as(vault, ip), _as(bank, ip),
            _as(wblock, ip), _as(wvault, ip), _as(wbank, ip),
            _as(dnext, dp), _as(t0, dp), _as(tail, dp), _as(finish, dp),
            _as(bank_ready, dp), _as(bank_row, ip), _as(bank_until, dp),
            _as(bus_ready, dp),
            t_cl, t_bl, t_rp, hop, linger, closed, occupancy, wr_extra,
            l1_cycle,
            int(ooo), int(mshrs), _as(mshr_buf, dp), _as(mshr_len, ip),
            _as(heap_t, dp), _as(heap_i, ip), _as(pos, ip),
            len(off) - 1,
        )

    return kernel


def _build_cc_multi() -> Callable | None:
    lib = _load_cc_lib()
    if lib is None:
        return None
    fn = lib.contend_packed_multi
    fn.restype = None
    dp = ctypes.POINTER(ctypes.c_double)
    ip = ctypes.POINTER(ctypes.c_int64)
    fn.argtypes = (
        [ip, ip] + [ip] * 6 + [dp] * 4
        + [dp, ip]
        + [dp, ip, dp, dp]
        + [dp, ip]
        + [dp, ip, ip, ctypes.c_int64]
    )

    def _as(arr: np.ndarray, ptr_type):
        return arr.ctypes.data_as(ptr_type)

    def kernel(
        p_off, off, block, vault, bank, wblock, wvault, wbank,
        dnext, t0, tail, finish, params, iparams,
        bank_ready, bank_row, bank_until, bus_ready,
        mshr_buf, mshr_len, heap_t, heap_i, pos,
    ) -> None:
        fn(
            _as(p_off, ip), _as(off, ip),
            _as(block, ip), _as(vault, ip), _as(bank, ip),
            _as(wblock, ip), _as(wvault, ip), _as(wbank, ip),
            _as(dnext, dp), _as(t0, dp), _as(tail, dp), _as(finish, dp),
            _as(params, dp), _as(iparams, ip),
            _as(bank_ready, dp), _as(bank_row, ip), _as(bank_until, dp),
            _as(bus_ready, dp),
            _as(mshr_buf, dp), _as(mshr_len, ip),
            _as(heap_t, dp), _as(heap_i, ip), _as(pos, ip),
            len(p_off) - 1,
        )

    return kernel


_RESOLVED: tuple[Callable | None, str | None] | None = None


def get_kernel() -> tuple[Callable | None, str | None]:
    """The compiled contention kernel as ``(callable, backend_name)``.

    Resolution is attempted once per process: numba first (portable,
    no toolchain needed), then the system C compiler; ``(None, None)``
    when neither is available.  The callable has the exact signature of
    :func:`contend_packed`.
    """
    global _RESOLVED
    if _RESOLVED is None:
        kernel = _build_numba()
        if kernel is not None:
            _RESOLVED = (kernel, "numba")
        else:
            kernel = _build_cc()
            _RESOLVED = (kernel, "cc") if kernel is not None else (None, None)
        if _RESOLVED[0] is not None:
            log.info(
                "native contention kernel ready",
                extra={"ctx": {"backend": _RESOLVED[1]}},
            )
    return _RESOLVED


_RESOLVED_MULTI: tuple[Callable | None, str | None] | None = None


def get_batch_kernel() -> tuple[Callable | None, str | None]:
    """The compiled *multi-point* kernel as ``(callable, backend_name)``.

    Shares backend resolution with :func:`get_kernel` (the single-point
    kernel is the body the multi loop calls per point); ``(None, None)``
    when no compiled backend is available — callers fall back to running
    the points one by one through the Python loop.
    """
    global _RESOLVED_MULTI
    if _RESOLVED_MULTI is None:
        single, backend = get_kernel()
        if single is None:
            _RESOLVED_MULTI = (None, None)
        elif backend == "numba":
            multi = _build_numba_multi(single)
            _RESOLVED_MULTI = (
                (multi, "numba") if multi is not None else (None, None)
            )
        else:
            multi = _build_cc_multi()
            _RESOLVED_MULTI = (
                (multi, "cc") if multi is not None else (None, None)
            )
    return _RESOLVED_MULTI
