"""The trace-driven NMC simulator (paper phase 2).

Execution model, matching the Table 3 NMC system and the modelling level of
Ramulator-PIM for this paper's experiments:

* each software thread is statically assigned to a PE (round-robin when
  there are more threads than PEs; extra threads time-multiplex);
* PEs are single-issue and in-order: every instruction occupies the pipe
  for its opcode latency, and memory instructions *block* until the L1 (or
  the stacked DRAM, on a miss) returns the line;
* per-PE L1s are write-back/write-allocate; misses and dirty evictions go
  to the vault whose address range they fall into;
* vault/bank contention between PEs is resolved exactly, by processing all
  PEs' memory events in global time order (heap-driven).

Two engines implement this model with identical results:

* ``reference`` — one heap event per memory access, stepping the
  :class:`~repro.nmcsim.cache.Cache` model per access (the original,
  obviously-correct formulation);
* ``fast`` (default) — two-phase: **phase A** classifies every PE
  stream's hits, misses, writebacks and end-of-kernel flushes up front
  with the vectorized stack-distance classifier
  (:mod:`repro.nmcsim.classify`, exact for any associativity), then
  **phase B** runs the exact contention loop over *only* the
  miss/writeback events, with hit latencies folded into the compute
  segments.

Event times in both engines are computed from the same prefix-sum
expressions (``base_t + (pref[k+1] - pref[base+1]) + n_hits * l1``), so
the engines agree bit for bit — not merely within tolerance.

Two further levers sit on top of the fast engine:

* **geometry memos** — phase A's products are pure functions of
  (trace, architecture-slice): PE streams depend only on the PE count /
  issue width / frequency / line size, classifications only on the L1
  geometry, and the packed phase-B event arrays on the DRAM geometry and
  clock as well.  Each is cached on the trace's ``_memo`` side table
  under its own key, so DoE campaign points that share a slice skip the
  corresponding work entirely (``sim.memo.*`` counters; disable with
  ``REPRO_SIM_MEMO=0``).
* **native phase B** — with ``REPRO_SIM_JIT=1`` the contention loop runs
  as a compiled kernel (:mod:`repro.nmcsim._native`: numba if
  importable, else a C translation built with the system compiler),
  byte-identical to the Python loop; without a usable backend the
  Python loop is used and results are unchanged.

The simulator returns IPC (total instructions / makespan cycles),
execution time and the full energy breakdown — the labels NAPEL trains
on.
"""

from __future__ import annotations

import heapq
import os
import time
import warnings
import weakref
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from ..config import SIM_ENGINES, NMCConfig, default_nmc_config
from ..errors import ConfigError, SimulationError
from ..ir import OPCODE_LATENCY, InstructionTrace, Opcode
from ..obs import get_logger, metrics, tracer
from ._native import get_batch_kernel, get_kernel
from .cache import Cache, CacheStats
from .classify import classify_lru
from .dram import StackedMemory
from .energy import compute_energy
from .memostore import active_store, store_key, store_status
from .results import SimulationResult

log = get_logger("repro.nmcsim")

#: Environment variable selecting the simulation engine.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Environment variable opting into the compiled phase-B kernel.
JIT_ENV_VAR = "REPRO_SIM_JIT"

#: Environment variable disabling the phase-A geometry memos ("0" = off).
MEMO_ENV_VAR = "REPRO_SIM_MEMO"

#: Environment variable capping each in-process memo kind's entry count
#: (overrides the per-kind defaults in :data:`_MEMO_CAPS`).
MEMO_CAP_ENV_VAR = "REPRO_SIM_MEMO_CAP"

#: Environment variable disabling the campaign-level batched replay
#: ("0" = per-point replay; anything else, or unset, = batched).
BATCH_ENV_VAR = "REPRO_SIM_BATCH"

#: Valid engine names; ``fast`` is the default.
ENGINES = SIM_ENGINES

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def resolve_engine(engine: str | None = None) -> str:
    """The effective engine name: argument, ``$REPRO_SIM_ENGINE``, or fast."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR, "").strip() or "fast"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown simulation engine {engine!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    return engine


def jit_requested() -> bool:
    """Whether ``$REPRO_SIM_JIT`` opts into the compiled phase-B kernel."""
    return os.environ.get(JIT_ENV_VAR, "").strip().lower() in _TRUTHY


def _active_kernel() -> Callable | None:
    """The compiled contention kernel, or None (not requested/available)."""
    if not jit_requested():
        return None
    kernel, _ = get_kernel()
    return kernel


def jit_status() -> dict:
    """JIT provenance for manifests and benchmark records.

    ``backend`` is the compiled backend actually in use (``"numba"`` or
    ``"cc"``), or None when the JIT is not requested or no backend could
    be built (the pure-Python loop runs in that case).
    """
    requested = jit_requested()
    backend = None
    if requested:
        kernel, name = get_kernel()
        backend = name if kernel is not None else None
    return {"requested": requested, "backend": backend}


# --------------------------------------------------------------- memos

_MEMO_KINDS = ("streams", "classify", "events")

#: ``repro.obs`` counter names fed by the phase-A memo layers — the
#: in-process geometry memos plus the persistent cross-process store
#: (exported so the campaign runner can aggregate worker deltas into
#: manifests).
MEMO_COUNTER_NAMES = tuple(
    f"sim.memo.{kind}.{outcome}"
    for kind in _MEMO_KINDS
    for outcome in ("hits", "misses")
) + tuple(
    f"sim.memo.store.{outcome}"
    for outcome in ("hits", "misses", "writes", "errors")
)

#: Per-trace LRU capacity of each memo kind.  Streams only vary with the
#: coarse PE slice (few distinct values per campaign); classification and
#: event bundles track swept geometries, so they keep a few more entries.
#: ``$REPRO_SIM_MEMO_CAP`` overrides all three with one entry count.
_MEMO_CAPS = {"streams": 2, "classify": 4, "events": 4}

#: Traces carrying live memo side tables, tracked weakly so
#: :func:`simulation_memo_summary` can report approximate byte sizes
#: without extending any trace's lifetime.
_MEMO_TRACES: "weakref.WeakSet[InstructionTrace]" = weakref.WeakSet()


def memo_enabled() -> bool:
    """Whether the phase-A geometry memos are active (default yes)."""
    return os.environ.get(MEMO_ENV_VAR, "").strip() != "0"


def _memo_cap(kind: str) -> int:
    """Entry cap of one memo kind (``$REPRO_SIM_MEMO_CAP`` override)."""
    raw = os.environ.get(MEMO_CAP_ENV_VAR, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _MEMO_CAPS[kind]


def _memo_lookup(trace: InstructionTrace, kind: str, key: tuple, build):
    """Geometry-keyed lookup in the trace's ``_memo`` side table.

    Each kind gets its own small LRU (:data:`_MEMO_CAPS`, overridable
    with ``$REPRO_SIM_MEMO_CAP``); hits and misses are counted as
    ``sim.memo.<kind>.<hits|misses>``.  The memo lives on the trace
    object, so its lifetime is bounded by the campaign-level trace memo
    that already bounds trace lifetimes.
    """
    if not memo_enabled():
        return build()
    _MEMO_TRACES.add(trace)
    memo: OrderedDict = trace._memo.setdefault(f"sim.{kind}", OrderedDict())
    value = memo.get(key)
    if value is not None:
        memo.move_to_end(key)
        metrics().inc(f"sim.memo.{kind}.hits")
        return value
    value = build()
    memo[key] = value
    metrics().inc(f"sim.memo.{kind}.misses")
    cap = _memo_cap(kind)
    while len(memo) > cap:
        memo.popitem(last=False)
    return value


def _memo_touch(trace: InstructionTrace, kind: str, key: tuple) -> None:
    """Refresh (and count) a memo entry if present; never builds.

    The events memo subsumes the streams and classify products, so a hit
    on it means those kinds' work was skipped too — touching them keeps
    their LRU order and hit counters identical to the pre-batched flow,
    which looked all three up every run.  Entries absent because the
    product came from the persistent store are silently left absent.
    """
    if not memo_enabled():
        return
    memo = trace._memo.get(f"sim.{kind}")
    if memo is not None and key in memo:
        memo.move_to_end(key)
        metrics().inc(f"sim.memo.{kind}.hits")


def _approx_nbytes(obj, _depth: int = 0) -> int:
    """Rough resident size of a memo value (arrays dominate by design).

    Walks arrays, containers and slotted objects; long homogeneous lists
    (packed event tuples) are extrapolated from their first element
    instead of walked, keeping the report cheap.
    """
    if _depth > 6 or obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.generic)):
        return 8
    if isinstance(obj, dict):
        return 16 * len(obj) + sum(
            _approx_nbytes(v, _depth + 1) for v in obj.values()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        n = len(obj)
        if n > 256:
            first = next(iter(obj), None)
            return 8 * n + n * _approx_nbytes(first, _depth + 1)
        return 8 * n + sum(_approx_nbytes(v, _depth + 1) for v in obj)
    slots = getattr(type(obj), "__slots__", None)
    if slots:
        return sum(
            _approx_nbytes(getattr(obj, name, None), _depth + 1)
            for name in slots
            if name != "__weakref__"
        )
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return sum(_approx_nbytes(v, _depth + 1) for v in attrs.values())
    return 8


def simulation_memo_bytes() -> dict[str, int]:
    """Approximate resident bytes per memo kind across live traces."""
    totals = dict.fromkeys(_MEMO_KINDS, 0)
    for trace in list(_MEMO_TRACES):
        for kind in _MEMO_KINDS:
            memo = trace._memo.get(f"sim.{kind}")
            if memo:
                totals[kind] += _approx_nbytes(memo)
    return totals


def simulation_memo_summary() -> dict:
    """Memo hit/miss counters as a manifest-ready mapping.

    ``classification_hit_ratio`` is the headline number: the fraction of
    simulation runs whose phase-A classification was served from the
    geometry memo instead of recomputed.  ``store`` carries the
    persistent cross-process store's counters (zero when disabled) and
    ``bytes`` the approximate resident size of each in-process kind.
    """
    m = metrics()
    out: dict = {}
    for kind in _MEMO_KINDS:
        out[kind] = {
            "hits": m.count(f"sim.memo.{kind}.hits"),
            "misses": m.count(f"sim.memo.{kind}.misses"),
        }
    total = out["classify"]["hits"] + out["classify"]["misses"]
    out["classification_hit_ratio"] = (
        out["classify"]["hits"] / total if total else 0.0
    )
    out["store"] = store_status()
    out["bytes"] = simulation_memo_bytes()
    return out


def simulation_batch_summary() -> dict:
    """Batched-replay counters as a manifest-ready mapping."""
    m = metrics()
    calls = m.count("sim.batch.calls")
    points = m.count("sim.batch.points")
    return {
        "calls": calls,
        "points": points,
        "points_per_call": points / calls if calls else 0.0,
    }


def batch_enabled(batch: bool | None = None) -> bool:
    """Whether campaign-level batched replay is on (default yes).

    An explicit argument wins; otherwise ``$REPRO_SIM_BATCH=0`` opts
    out.  Batched and per-point replay are bit-identical — the switch
    exists for A/B benchmarking and debugging, not correctness.
    """
    if batch is not None:
        return bool(batch)
    return os.environ.get(BATCH_ENV_VAR, "").strip() != "0"


#: numpy lookup table: opcode value -> execute latency (cycles).
_LATENCY_LUT = np.zeros(max(int(op) for op in Opcode) + 1, dtype=np.int64)
for _op, _lat in OPCODE_LATENCY.items():
    _LATENCY_LUT[int(_op)] = _lat

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ATOMIC = int(Opcode.ATOMIC)


class _PEStream:
    """Pre-digested per-PE instruction stream.

    ``compute_ns[k]`` is the non-memory execution time preceding memory op
    ``k`` (entry ``n_mem`` is the tail after the last memory op); ``pref``
    is its prefix sum (``pref[k+1]`` = compute time before op ``k``
    completes its preceding segment); ``lines`` and ``writes`` describe
    the memory ops themselves and stay NumPy arrays end to end.  The
    array columns are the memoizable *digest* (shared across runs via
    the streams memo); everything else is per-run mutable state.

    Timing state is normalized to *miss anchors*: ``base_t`` is the
    completion time of the last miss (0.0 initially) and ``base_k`` its
    op index (-1 initially); every later event time derives from them via
    :meth:`issue_ns`, which is the expression both engines share.
    ``outstanding`` is a min-heap of in-flight miss completion times for
    the out-of-order PE model.
    """

    __slots__ = (
        "pe", "next_op", "compute_ns", "pref", "lines", "writes",
        "cache", "finish_ns", "n_instructions", "outstanding",
        "base_t", "base_k",
    )

    def __init__(
        self,
        pe: int,
        compute_ns: np.ndarray,
        pref: np.ndarray,
        lines: np.ndarray,
        writes: np.ndarray,
        n_instructions: int,
    ) -> None:
        self.pe = pe
        self.next_op = 0
        self.compute_ns = compute_ns
        self.pref = pref
        self.lines = lines
        self.writes = writes
        self.cache: Cache | None = None
        self.finish_ns = 0.0
        self.n_instructions = n_instructions
        self.outstanding: list[float] = []
        self.base_t = 0.0
        self.base_k = -1

    @property
    def n_mem(self) -> int:
        return len(self.lines)

    def issue_ns(self, k: int, l1_cycle_ns: float) -> float:
        """Issue time of memory op ``k`` (``k == n_mem``: kernel finish).

        All ops in ``(base_k, k)`` are hits by construction, each adding
        one L1 cycle; the expression (and its floating-point evaluation
        order) is shared verbatim with the fast engine's vectorized
        delta computation, which is what makes the engines bit-identical.
        """
        return self.base_t + (
            (self.pref[k + 1] - self.pref[self.base_k + 1])
            + (k - self.base_k - 1) * l1_cycle_ns
        )


def _stream_digest(
    pe: int,
    opcode: np.ndarray,
    addr: np.ndarray,
    cycle_ns: float,
    line_shift: int,
    issue_width: int = 1,
) -> tuple:
    """The immutable array columns of one PE stream (memoizable)."""
    lat = _LATENCY_LUT[opcode]
    is_mem = (opcode == _LOAD) | (opcode == _STORE) | (opcode == _ATOMIC)
    mem_pos = np.flatnonzero(is_mem)
    lat_nonmem = np.where(is_mem, 0, lat)
    if issue_width > 1:
        # Multi-issue cores retire several independent ops per cycle;
        # first-order model: compute segments shrink by the issue width.
        lat_nonmem = lat_nonmem / issue_width
    pref = np.concatenate(([0], np.cumsum(lat_nonmem)))
    # Compute time between consecutive memory ops (and before the first /
    # after the last).  lat_nonmem is zero at memory positions, so prefix
    # differences at the positions give exactly the in-between sums.
    bounds = np.concatenate(([0], mem_pos, [len(opcode)]))
    compute_cycles = pref[bounds[1:]] - pref[bounds[:-1]]
    lines = (addr[mem_pos] >> np.uint64(line_shift)).astype(np.int64)
    writes = (opcode[mem_pos] == _STORE) | (opcode[mem_pos] == _ATOMIC)
    compute_ns = compute_cycles.astype(np.float64) * cycle_ns
    return (
        pe,
        compute_ns,
        np.concatenate(([0.0], np.cumsum(compute_ns))),
        lines,
        writes,
        len(opcode),
    )


class _EventBundle:
    """Packed phase-B inputs for one (trace, architecture-slice) pair.

    Miss/writeback events of all streams concatenated into flat arrays
    (``off`` holds per-packed-stream bounds, ``sidx`` maps packed slots
    back to stream indices), plus the order-independent aggregates that
    phase A pre-counts (DRAM traffic, no-miss stream finish times).
    Everything here is immutable across runs — the bundle is what the
    events memo caches.
    """

    __slots__ = (
        "sidx", "off", "block", "vault", "bank",
        "wblock", "wvault", "wbank", "dnext", "t0", "tail",
        "finish0", "n_reads", "n_writes", "vault_counts",
        "_events_lists",
    )

    def __init__(self) -> None:
        # Built as a list, normalised to an int64 array at the end of
        # _build_events (and on store decode) — batched replay indexes
        # and concatenates it.
        self.sidx: list[int] | np.ndarray = []
        self.finish0: dict[int, float] = {}
        self.n_reads = 0
        self.n_writes = 0
        self._events_lists: list[list[tuple]] | None = None

    @property
    def n_packed(self) -> int:
        return len(self.sidx)

    def events_lists(self) -> list[list[tuple]]:
        """Per-packed-stream Python event tuples (pure-Python loop food).

        Built lazily from the packed arrays on the first run that falls
        back to the interpreter loop, then cached on the bundle (tuples
        of plain scalars: cheap indexing and comparisons; float64 ->
        float is exact).
        """
        if self._events_lists is None:
            built = []
            off = self.off
            for slot in range(self.n_packed):
                lo, hi = int(off[slot]), int(off[slot + 1])
                built.append(list(zip(
                    self.block[lo:hi].tolist(),
                    self.vault[lo:hi].tolist(),
                    self.bank[lo:hi].tolist(),
                    self.wblock[lo:hi].tolist(),
                    self.wvault[lo:hi].tolist(),
                    self.wbank[lo:hi].tolist(),
                    self.dnext[lo:hi].tolist(),
                )))
            self._events_lists = built
        return self._events_lists


class _PhaseA:
    """The complete phase-A product of one (trace, architecture-slice).

    Everything the fast engine needs downstream of classification: the
    packed event bundle, the aggregate L1 statistics, the end-of-kernel
    flush write count and the stream count.  This is the unit both the
    in-process events memo and the persistent cross-process store cache —
    a warm hit skips stream digestion, classification *and* event
    packing entirely.
    """

    __slots__ = ("bundle", "stats", "flush_writes", "n_streams")

    def __init__(
        self,
        bundle: _EventBundle,
        stats: tuple[int, int, int, int],
        flush_writes: int,
        n_streams: int,
    ) -> None:
        self.bundle = bundle
        #: (hits, misses, writebacks, flushes) — CacheStats field order.
        self.stats = stats
        self.flush_writes = flush_writes
        self.n_streams = n_streams


def _events_key(cfg: NMCConfig) -> tuple:
    """The architecture slice phase A depends on (events-memo key)."""
    return (
        cfg.backend,
        cfg.n_pes, cfg.line_bytes, cfg.l1_sets, cfg.l1_ways,
        cfg.issue_width, cfg.frequency_ghz, cfg.n_vaults,
        cfg.banks_per_vault, cfg.row_buffer_bytes,
    )


_BUNDLE_INT_COLS = (
    "sidx", "off", "block", "vault", "bank", "wblock", "wvault", "wbank",
)
_BUNDLE_FLOAT_COLS = ("dnext", "t0", "tail")

#: Segment order inside a store entry's two flat blobs.  Every int64
#: array (bundle columns, finish0 indices, vault counts, scalar metadata)
#: concatenates into ``ints`` and every float64 array into ``floats``,
#: with a ``lens`` header to split them back — loading 3 archive members
#: per entry instead of 16 keeps warm-store lookups cheap.
_STORE_INT_SEGS = _BUNDLE_INT_COLS + ("f0_idx", "vault_counts", "meta")
_STORE_FLOAT_SEGS = _BUNDLE_FLOAT_COLS + ("f0_val",)
_META_LEN = 8  # n_streams, n_reads, n_writes, flush_writes, 4 stats


def _encode_phase_a(product: _PhaseA) -> dict[str, np.ndarray]:
    """Flatten a phase-A product into three arrays for the memo store."""
    b = product.bundle
    n0 = len(b.finish0)
    parts = {name: getattr(b, name) for name in _BUNDLE_INT_COLS}
    parts.update({name: getattr(b, name) for name in _BUNDLE_FLOAT_COLS})
    parts["f0_idx"] = np.fromiter(b.finish0.keys(), dtype=np.int64, count=n0)
    parts["f0_val"] = np.fromiter(b.finish0.values(), dtype=np.float64, count=n0)
    parts["vault_counts"] = b.vault_counts
    parts["meta"] = np.asarray(
        [
            product.n_streams, b.n_reads, b.n_writes,
            product.flush_writes, *product.stats,
        ],
        dtype=np.int64,
    )
    ints = [
        np.ascontiguousarray(parts[name], dtype=np.int64)
        for name in _STORE_INT_SEGS
    ]
    floats = [
        np.ascontiguousarray(parts[name], dtype=np.float64)
        for name in _STORE_FLOAT_SEGS
    ]
    return {
        "lens": np.asarray(
            [len(a) for a in ints] + [len(a) for a in floats],
            dtype=np.int64,
        ),
        "ints": np.concatenate(ints) if ints else np.empty(0, np.int64),
        "floats": (
            np.concatenate(floats) if floats else np.empty(0, np.float64)
        ),
    }


def _split_segments(
    blob: np.ndarray, lens: Sequence[int]
) -> list[np.ndarray]:
    """Split a flat blob back into its segments (views, no copies)."""
    if len(lens) and min(lens) < 0:
        raise ValueError(f"negative segment length in {list(lens)}")
    if sum(lens) != len(blob):
        raise ValueError(
            f"segment lengths {list(lens)} do not cover blob of {len(blob)}"
        )
    bounds = np.cumsum([0, *lens])
    return [blob[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]


def _decode_phase_a(data: Mapping[str, np.ndarray]) -> _PhaseA | None:
    """Rebuild a phase-A product from store arrays (None on bad shape)."""
    try:
        lens = np.ascontiguousarray(data["lens"], dtype=np.int64)
        if len(lens) != len(_STORE_INT_SEGS) + len(_STORE_FLOAT_SEGS):
            raise ValueError(f"bad segment count {len(lens)}")
        n_ints = len(_STORE_INT_SEGS)
        ints = _split_segments(
            np.ascontiguousarray(data["ints"], dtype=np.int64),
            lens[:n_ints],
        )
        floats = _split_segments(
            np.ascontiguousarray(data["floats"], dtype=np.float64),
            lens[n_ints:],
        )
        parts = dict(zip(_STORE_INT_SEGS, ints))
        parts.update(zip(_STORE_FLOAT_SEGS, floats))
        bundle = _EventBundle()
        for name in _BUNDLE_INT_COLS + _BUNDLE_FLOAT_COLS:
            setattr(bundle, name, parts[name])
        bundle.finish0 = {
            int(i): float(v)
            for i, v in zip(parts["f0_idx"], parts["f0_val"])
        }
        bundle.vault_counts = parts["vault_counts"]
        meta = parts["meta"]
        if len(meta) != _META_LEN:
            raise ValueError(f"bad metadata length {len(meta)}")
        bundle.n_reads = int(meta[1])
        bundle.n_writes = int(meta[2])
        return _PhaseA(
            bundle,
            (int(meta[4]), int(meta[5]), int(meta[6]), int(meta[7])),
            int(meta[3]),
            int(meta[0]),
        )
    except (KeyError, ValueError, IndexError, TypeError) as exc:
        warnings.warn(
            f"sim memo store entry decoded to an invalid phase-A product "
            f"({exc!r}); recomputing",
            RuntimeWarning,
            stacklevel=2,
        )
        metrics().inc("sim.memo.store.errors")
        return None


class NMCSimulator:
    """Simulates kernel traces on one NMC architecture configuration.

    ``engine`` selects the execution engine (``"fast"`` two-phase or
    ``"reference"`` per-access; ``None`` honours ``$REPRO_SIM_ENGINE``,
    default fast).  Both engines produce identical
    :class:`SimulationResult` values; see :mod:`repro.nmcsim.classify`.
    """

    def __init__(
        self,
        config: NMCConfig | None = None,
        *,
        engine: str | None = None,
    ) -> None:
        self.config = config or default_nmc_config()
        self.config.validate()
        self.engine = resolve_engine(engine)

    def run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        """Simulate one trace; returns IPC, time and energy."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        with metrics().timer("phase.simulate") as span:
            result = self._run(trace, workload=workload, parameters=parameters)
        metrics().inc("nmcsim.runs")
        log.debug(
            "simulation done",
            extra={"ctx": {
                "workload": workload or "(unnamed)",
                "engine": self.engine,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "seconds": round(span.elapsed_s or 0.0, 3),
            }},
        )
        return result

    def run_batch(
        self,
        items: Sequence[
            tuple[InstructionTrace, str, Mapping[str, float] | None]
        ],
    ) -> list[SimulationResult]:
        """Simulate many traces on this configuration, phase B batched.

        ``items`` holds ``(trace, workload, parameters)`` tuples; see
        :func:`simulate_batch` for the batching and equivalence
        contract.
        """
        return simulate_batch(
            [
                (trace, self.config, workload, parameters)
                for trace, workload, parameters in items
            ],
            engine=self.engine,
        )

    # ----------------------------------------------------------- shared

    def _stream_digests(self, trace: InstructionTrace) -> list[tuple]:
        """Round-robin threads onto PEs; threads sharing a PE execute
        back-to-back (time multiplexed)."""
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        tids = trace.thread_ids
        # One stable argsort groups the trace by thread id while keeping
        # per-thread program order — same sub-arrays as a boolean mask
        # per tid, without T full-column scans.
        order = np.argsort(trace.tid, kind="stable")
        sorted_tid = trace.tid[order]
        starts = np.searchsorted(sorted_tid, tids, side="left")
        ends = np.searchsorted(sorted_tid, tids, side="right")
        per_pe_cols: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for idx, tid in enumerate(tids):
            pe = idx % cfg.n_pes
            sel = order[starts[idx]:ends[idx]]
            per_pe_cols.setdefault(pe, []).append(
                (trace.opcode[sel], trace.addr[sel])
            )
        digests: list[tuple] = []
        for pe, parts in sorted(per_pe_cols.items()):
            opcode = np.concatenate([p[0] for p in parts])
            addr = np.concatenate([p[1] for p in parts])
            digests.append(
                _stream_digest(
                    pe, opcode, addr, cfg.cycle_ns, line_shift,
                    issue_width=cfg.issue_width,
                )
            )
        return digests

    def _build_streams(self, trace: InstructionTrace) -> list[_PEStream]:
        cfg = self.config
        digests = _memo_lookup(
            trace,
            "streams",
            (cfg.n_pes, cfg.issue_width, cfg.frequency_ghz, cfg.line_bytes),
            lambda: self._stream_digests(trace),
        )
        # Fresh per-run wrappers around the shared (immutable) columns.
        return [_PEStream(*d) for d in digests]

    def _run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        # Opt-in simulated-hardware timeline (None unless REPRO_TRACE_HW
        # is set): per-PE busy/stall slices, vault occupancy and cache
        # counter tracks, all on the simulated nanosecond clock.  The
        # timeline needs one event per access, which is exactly what the
        # fast engine elides — so hardware-traced runs always take the
        # reference path (results are identical either way).
        hw = tracer().hw_timeline()
        engine = self.engine
        if hw is not None and engine == "fast":
            engine = "reference"
        memory = StackedMemory(self.config, timeline=hw)

        if engine == "fast":
            product = self._phase_a(trace, memory)
            bundle = product.bundle
            memory.add_counts(
                reads=bundle.n_reads,
                writes=bundle.n_writes,
                vault_counts=bundle.vault_counts,
            )
            with metrics().timer("phase.simulate.contend"):
                packed_finish = self._contend_product(bundle, memory)
            return self._finalize(
                trace, memory, product, packed_finish, workload, parameters
            )

        streams = self._build_streams(trace)
        cache_stats, flush_writes = self._contend_reference(
            streams, memory, hw
        )
        memory.writes += flush_writes
        makespan_ns = max(s.finish_ns for s in streams)
        return self._result(
            trace, memory, cache_stats, makespan_ns, len(streams),
            workload, parameters, hw=hw, streams=streams,
        )

    def _finalize(
        self,
        trace: InstructionTrace,
        memory: StackedMemory,
        product: _PhaseA,
        packed_finish: np.ndarray | None,
        workload: str,
        parameters: Mapping[str, float] | None,
    ) -> SimulationResult:
        """Turn a phase-A product + phase-B finish times into a result.

        Shared by the per-point fast path and the batched replay path —
        literally the same code, which is half of the bit-equivalence
        argument (the other half being the kernels themselves).
        """
        memory.writes += product.flush_writes
        makespan_ns = 0.0
        for v in product.bundle.finish0.values():
            if v > makespan_ns:
                makespan_ns = v
        if packed_finish is not None and len(packed_finish):
            peak = float(packed_finish.max())
            if peak > makespan_ns:
                makespan_ns = peak
        return self._result(
            trace, memory, CacheStats(*product.stats), makespan_ns,
            product.n_streams, workload, parameters,
        )

    def _result(
        self,
        trace: InstructionTrace,
        memory: StackedMemory,
        cache_stats: CacheStats,
        makespan_ns: float,
        n_pes_used: int,
        workload: str,
        parameters: Mapping[str, float] | None,
        *,
        hw=None,
        streams: list[_PEStream] | None = None,
    ) -> SimulationResult:
        cfg = self.config
        cycle_ns = cfg.cycle_ns
        line_shift = cfg.line_bytes.bit_length() - 1
        if makespan_ns <= 0:
            raise SimulationError("simulation produced a non-positive makespan")
        cycles = max(1, int(round(makespan_ns / cycle_ns)))
        instructions = len(trace)
        ipc = instructions / cycles

        dram_stats = memory.stats()
        if hw is not None and streams is not None:
            for s in streams:
                assert s.cache is not None
                hw.counter(
                    f"pe{s.pe}.cache",
                    s.cache.stats.counter_values(),
                    makespan_ns,
                )
            hw.close()

        offload_bytes = float(
            trace.footprint_lines(line_shift) * cfg.line_bytes
        )

        time_s = makespan_ns * 1e-9
        energy = compute_energy(
            cfg,
            trace.opcode_counts(),
            l1_accesses=cache_stats.accesses,
            dram_accesses=dram_stats.accesses,
            exec_time_s=time_s,
            offload_bytes=offload_bytes,
            dram_writes=dram_stats.writes,
        )
        return SimulationResult(
            workload=workload,
            instructions=instructions,
            cycles=cycles,
            time_s=time_s,
            ipc=ipc,
            energy=energy,
            cache=cache_stats,
            dram=dram_stats,
            n_pes_used=n_pes_used,
            parameters=dict(parameters or {}),
        )

    # -------------------------------------------------- reference engine

    def _contend_reference(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
        hw,
    ) -> tuple[CacheStats, int]:
        """One heap event per memory access, stepping the Cache model.

        In-order PEs block on every miss.  Out-of-order PEs ("ooo") keep
        issuing past misses until their MSHRs fill; when the MSHR file is
        full, the PE stalls until the oldest outstanding miss returns.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns  # one-cycle L1 access
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(streams):
            s.cache = Cache.l1_for(cfg)
            if s.n_mem:
                heapq.heappush(heap, (s.issue_ns(0, l1_cycle_ns), i))
            else:
                s.finish_ns = float(s.compute_ns[0])
        l1_misses = 0
        # Event loop: always advance the PE whose next memory access comes
        # earliest in global time, so bank/bus contention is seen in order.
        while heap:
            t, i = heapq.heappop(heap)
            s = streams[i]
            k = s.next_op
            if hw is not None:
                compute = float(s.compute_ns[k])
                if compute > 0:
                    hw.slice(s.pe, "pe.busy", t - compute, t)
            line = int(s.lines[k])
            is_write = bool(s.writes[k])
            hit, writeback = s.cache.access(line, is_write)
            if hit:
                pass  # one L1 cycle, folded into the issue expression
            else:
                done = memory.access(t, line << line_shift, is_write)
                if not ooo:
                    if hw is not None:
                        l1_misses += 1
                        hw.slice(s.pe, "pe.stall", t, done, reason="l1_miss")
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    t = done + l1_cycle_ns
                else:
                    if hw is not None:
                        l1_misses += 1
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    heapq.heappush(s.outstanding, done)
                    if len(s.outstanding) >= mshrs:
                        # MSHRs full: stall until the oldest miss completes.
                        oldest = heapq.heappop(s.outstanding)
                        if hw is not None and oldest > t:
                            hw.slice(
                                s.pe, "pe.stall", t, oldest,
                                reason="mshr_full",
                            )
                        t = max(t, oldest) + l1_cycle_ns
                    else:
                        t += l1_cycle_ns  # issue continues under the miss
                # The miss completion re-anchors all later event times.
                s.base_t = t
                s.base_k = k
                if writeback is not None:
                    # Dirty eviction: posted write, does not block the PE
                    # but occupies the bank (and pays the backend's
                    # write-asymmetry penalty, if any).
                    memory.access(
                        t, writeback << line_shift, True, is_writeback=True
                    )
            s.next_op = k + 1
            if s.next_op < s.n_mem:
                heapq.heappush(
                    heap, (s.issue_ns(s.next_op, l1_cycle_ns), i)
                )
            else:
                finish = s.issue_ns(s.n_mem, l1_cycle_ns)
                if s.outstanding:
                    finish = max(finish, max(s.outstanding))
                    s.outstanding.clear()
                s.finish_ns = finish

        # Dirty lines still resident are flushed back at kernel completion:
        # flush() counts each line once in the cache's writeback stats, and
        # the matching DRAM write traffic (and thus DRAM access energy) is
        # added by the caller — once per flushed line, same as an eviction.
        flush_writes = 0
        cache_stats = CacheStats()
        for s in streams:
            assert s.cache is not None
            flush_writes += s.cache.flush()
            cache_stats.merge(s.cache.stats)
        return cache_stats, flush_writes

    # ------------------------------------------------------- fast engine

    def _build_events(
        self,
        streams: list[_PEStream],
        cls_list: list,
        memory: StackedMemory,
    ) -> _EventBundle:
        """Pack every stream's miss/writeback events into flat arrays.

        Everything deterministic is computed here, vectorized: issue-gap
        deltas (the exact :meth:`_PEStream.issue_ns` operations), DRAM
        routing (the Fibonacci hash is stateless, so ``route_array``
        covers misses and victims alike) and the order-independent
        traffic totals.  Only bank/bus timing is left for phase B.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns
        banks_pv = cfg.banks_per_vault
        shift = np.uint64(line_shift)
        bundle = _EventBundle()
        vault_counts = np.zeros(cfg.n_vaults, dtype=np.int64)
        cols: list[tuple] = []
        t0: list[float] = []
        tail: list[float] = []
        for i, s in enumerate(streams):
            cls = cls_list[i]
            mp = np.flatnonzero(~cls.hit)
            if not len(mp):
                # No misses: purely deterministic stream (base_t = 0).
                bundle.finish0[i] = (
                    float(s.compute_ns[0]) if s.n_mem == 0
                    else float(s.issue_ns(s.n_mem, l1_cycle_ns))
                )
                continue
            # Deterministic gap from the previous miss completion to this
            # miss's issue: the in-between compute segments plus one L1
            # cycle per intervening hit — evaluated with the exact
            # operations of issue_ns().
            mp1 = mp + 1
            comp = s.pref[mp1] - s.pref[np.concatenate(([0], mp1[:-1]))]
            gaps = np.diff(np.concatenate(([-1], mp))) - 1
            delta = comp + gaps * l1_cycle_ns
            dnext = np.empty(len(mp), dtype=np.float64)
            dnext[:-1] = delta[1:]
            dnext[-1] = 0.0
            mv, mb, mblk = memory.route_array(
                s.lines[mp].astype(np.uint64) << shift
            )
            wb = cls.wb_line[mp]
            has_wb = wb >= 0
            wv, wbk, wblk = memory.route_array(
                np.where(has_wb, wb, 0).astype(np.uint64) << shift
            )
            bundle.sidx.append(i)
            t0.append(float(delta[0]))
            tail.append(float(
                (s.pref[s.n_mem + 1] - s.pref[mp[-1] + 1])
                + (s.n_mem - 1 - mp[-1]) * l1_cycle_ns
            ))
            cols.append((
                mblk, mv, mv * banks_pv + mb,
                wblk, wv, np.where(has_wb, wv * banks_pv + wbk, -1),
                dnext,
            ))
            # DRAM traffic totals are order-independent: count them once
            # here rather than per event.
            miss_writes = int(np.count_nonzero(s.writes[mp]))
            n_wb = int(np.count_nonzero(has_wb))
            bundle.n_reads += len(mp) - miss_writes
            bundle.n_writes += miss_writes + n_wb
            vault_counts += np.bincount(mv, minlength=len(vault_counts))
            vault_counts += np.bincount(
                wv[has_wb], minlength=len(vault_counts)
            )
        bundle.vault_counts = vault_counts
        n_events = [len(c[0]) for c in cols]
        bundle.off = np.concatenate(
            ([0], np.cumsum(np.asarray(n_events, dtype=np.int64)))
        ).astype(np.int64)
        names = ("block", "vault", "bank", "wblock", "wvault", "wbank")
        for col, name in enumerate(names):
            packed = (
                np.concatenate([c[col] for c in cols]).astype(np.int64)
                if cols else np.empty(0, dtype=np.int64)
            )
            setattr(bundle, name, packed)
        bundle.dnext = (
            np.concatenate([c[6] for c in cols])
            if cols else np.empty(0, dtype=np.float64)
        )
        bundle.t0 = np.asarray(t0, dtype=np.float64)
        bundle.tail = np.asarray(tail, dtype=np.float64)
        bundle.sidx = np.asarray(bundle.sidx, dtype=np.int64)
        return bundle

    def _compute_phase_a(self, trace: InstructionTrace) -> _PhaseA:
        """Run phase A from scratch: digest, classify, pack events.

        Phase A classifies every stream's accesses against its L1 (hits,
        misses, dirty-victim writebacks, flush set) without any timing
        and packs the miss events.  Phase B then replays only the misses
        through the global-time heap — the same issue-time expressions
        and the same sequence of memory-pipeline updates as the
        reference engine, because hits never touch shared state.
        """
        cfg = self.config
        streams = self._build_streams(trace)
        cls_list = _memo_lookup(
            trace,
            "classify",
            (cfg.n_pes, cfg.line_bytes, cfg.l1_sets, cfg.l1_ways),
            lambda: [
                classify_lru(
                    s.lines, s.writes,
                    n_sets=cfg.l1_sets, ways=cfg.l1_ways,
                )
                for s in streams
            ],
        )
        cache_stats = CacheStats()
        flush_writes = 0
        for cls in cls_list:
            cache_stats.merge(cls.stats)
            flush_writes += len(cls.flush_lines)
        # Routing only reads immutable geometry, so a throwaway memory
        # instance serves (the caller's StackedMemory carries run state).
        bundle = self._build_events(streams, cls_list, StackedMemory(cfg))
        return _PhaseA(
            bundle,
            (
                cache_stats.hits, cache_stats.misses,
                cache_stats.writebacks, cache_stats.flushes,
            ),
            flush_writes,
            len(streams),
        )

    def _phase_a(self, trace: InstructionTrace, memory: StackedMemory) -> _PhaseA:
        """The phase-A product, via the memo stack.

        Lookup order: in-process events memo on the trace, then the
        persistent cross-process store (when configured), then a fresh
        computation (which also populates the store).  All three paths
        yield the identical product — the store round-trips the exact
        float64/int64 arrays.
        """
        del memory  # routing state is geometry-only; see _compute_phase_a
        cfg = self.config
        key = _events_key(cfg)
        built = False

        def build() -> _PhaseA:
            nonlocal built
            built = True
            store = active_store()
            if store is None:
                return self._compute_phase_a(trace)
            skey = store_key(trace, key)
            data = store.get(skey)
            if data is not None:
                product = _decode_phase_a(data)
                if product is not None:
                    return product
            product = self._compute_phase_a(trace)
            store.put(skey, _encode_phase_a(product))
            return product

        with metrics().timer("phase.simulate.classify"):
            product = _memo_lookup(trace, "events", key, build)
            if not built:
                _memo_touch(
                    trace, "streams",
                    (cfg.n_pes, cfg.issue_width, cfg.frequency_ghz,
                     cfg.line_bytes),
                )
                _memo_touch(
                    trace, "classify",
                    (cfg.n_pes, cfg.line_bytes, cfg.l1_sets, cfg.l1_ways),
                )
            return product

    def _contend_product(
        self, bundle: _EventBundle, memory: StackedMemory
    ) -> np.ndarray:
        """Phase B for one point: packed finish times (empty if no misses)."""
        if not bundle.n_packed:
            return np.empty(0, dtype=np.float64)
        cfg = self.config
        kernel = _active_kernel()
        if kernel is not None:
            return self._contend_native(bundle, memory, kernel)
        return _contend_python_bundle(
            bundle, memory,
            ooo=cfg.pe_type == "ooo",
            mshrs=cfg.mshr_entries,
            l1_cycle_ns=cfg.cycle_ns,
        )

    def _contend_native(
        self,
        bundle: _EventBundle,
        memory: StackedMemory,
        kernel: Callable,
    ) -> np.ndarray:
        """Run phase B through the compiled kernel (packed arrays).

        The kernel is handed fresh state arrays matching StackedMemory's
        initial timing state; nothing reads that state after the run
        (DRAM statistics are count-based and pre-credited in phase A),
        so it does not need to be copied back.
        """
        cfg = self.config
        n = bundle.n_packed
        mshrs = cfg.mshr_entries
        n_banks = cfg.n_vaults * cfg.banks_per_vault
        finish = np.empty(n, dtype=np.float64)
        kernel(
            bundle.off,
            bundle.block, bundle.vault, bundle.bank,
            bundle.wblock, bundle.wvault, bundle.wbank,
            bundle.dnext, bundle.t0, bundle.tail, finish,
            np.zeros(n_banks, dtype=np.float64),
            np.full(n_banks, -1, dtype=np.int64),
            np.full(n_banks, -1.0, dtype=np.float64),
            np.zeros(cfg.n_vaults, dtype=np.float64),
            memory._t_cl, memory._t_bl, memory._t_rp, memory._hop,
            memory._linger, memory._closed, memory._occupancy,
            memory._wr_extra, cfg.cycle_ns,
            1 if cfg.pe_type == "ooo" else 0, mshrs,
            np.empty(n * mshrs, dtype=np.float64),
            np.empty(n, dtype=np.int64),
            np.empty(n, dtype=np.float64),
            np.empty(n, dtype=np.int64),
            np.empty(n, dtype=np.int64),
        )
        return finish


def _contend_python_bundle(
    bundle: _EventBundle,
    memory: StackedMemory,
    *,
    ooo: bool,
    mshrs: int,
    l1_cycle_ns: float,
) -> np.ndarray:
    """Phase-B contention loop, pure Python (no compiled backend).

    Operates on packed slots throughout.  The heap orders events by
    (time, slot); slot order equals original stream-index order because
    ``sidx`` is strictly increasing, so ties break identically to the
    reference engine's (time, stream index) order and the replay is
    bit-identical whichever indexing is used.
    """
    n = bundle.n_packed
    ev_lists = bundle.events_lists()
    t0 = bundle.t0.tolist()
    tails = bundle.tail.tolist()
    next_evt = [0] * n
    outstanding: list[list[float]] = [[] for _ in range(n)]
    finish_arr = np.empty(n, dtype=np.float64)
    # The per-miss loop below inlines the timing half of
    # StackedMemory.access (bank + vault bus, see dram/hmc.py);
    # routing and traffic counting were pre-computed vectorized
    # in phase A.  Every expression keeps the exact evaluation
    # order of the method, so the floats are identical; the fast
    # engine never carries a hardware timeline (see _run), so
    # that branch is dropped.
    bus_ready = memory._bus_ready
    bank_ready = memory._bank_ready
    bank_row = memory._bank_row
    bank_until = memory._bank_until
    t_cl = memory._t_cl
    t_bl = memory._t_bl
    t_rp = memory._t_rp
    hop = memory._hop
    linger = memory._linger
    closed = memory._closed
    occupancy = memory._occupancy
    wr_extra = memory._wr_extra

    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    heap: list[tuple[float, int]] = []
    for slot in range(n):
        heappush(heap, (t0[slot], slot))
    # The heap is used peek-style: the root is the event being
    # processed, and it is only rewritten when the active stream
    # stops being globally next — one heapreplace per stream
    # switch instead of a pop + push per event.  The event order
    # is exactly the reference engine's (time, stream index)
    # order: a stream keeps the floor only while its next miss
    # precedes both heap children (the decrease-key invariant).
    inf = float("inf")
    while heap:
        t, i = heap[0]
        j = next_evt[i]
        ev_i = ev_lists[i]
        n_i = len(ev_i)
        out_i = outstanding[i]
        # The children of the root are invariant while this
        # stream keeps the floor, so the decrease-key bound is
        # computed once per activation.  With no other stream
        # pending the bound is +inf: run to completion.
        n_h = len(heap)
        if n_h > 1:
            child = heap[1]
            if n_h > 2 and heap[2] < child:
                child = heap[2]
            ct, ci = child
        else:
            ct, ci = inf, -1
        while True:
            block, vault, bi, wblk, wv, wbi, dnext = ev_i[j]
            # Miss access: the timing half of StackedMemory
            # .access, inlined (hottest path in the simulator).
            now = t + hop
            ready = bank_ready[bi]
            start = now if now > ready else ready
            open_row = bank_row[bi]
            row_open = open_row >= 0 and start <= bank_until[bi]
            if row_open and block == open_row:
                data_at = start + t_cl + t_bl
                bank_ready[bi] = start + t_bl
            else:
                pre = t_rp if row_open else 0.0
                data_at = start + pre + closed
                bank_ready[bi] = start + pre + occupancy
            bank_row[bi] = block
            bank_until[bi] = data_at + linger
            br = bus_ready[vault]
            if data_at - t_bl < br:
                data_at = br + t_bl
            bus_ready[vault] = data_at
            done = data_at + hop
            if not ooo:
                t = done + l1_cycle_ns
            else:
                heappush(out_i, done)
                if len(out_i) >= mshrs:
                    oldest = heappop(out_i)
                    t = max(t, oldest) + l1_cycle_ns
                else:
                    t += l1_cycle_ns
            if wbi >= 0:
                # Dirty-victim writeback: same inlined pipeline,
                # posted at the miss completion time.
                now = t + hop
                ready = bank_ready[wbi]
                start = now if now > ready else ready
                open_row = bank_row[wbi]
                row_open = (
                    open_row >= 0 and start <= bank_until[wbi]
                )
                if row_open and wblk == open_row:
                    data_at = start + t_cl + t_bl
                    bank_ready[wbi] = start + t_bl
                else:
                    pre = t_rp if row_open else 0.0
                    data_at = start + pre + closed
                    bank_ready[wbi] = start + pre + occupancy
                if wr_extra:
                    data_at += wr_extra
                    bank_ready[wbi] += wr_extra
                bank_row[wbi] = wblk
                bank_until[wbi] = data_at + linger
                br = bus_ready[wv]
                if data_at - t_bl < br:
                    data_at = br + t_bl
                bus_ready[wv] = data_at
            j += 1
            if j < n_i:
                tn = t + dnext
                # Decrease-key check: the root is this stream's
                # own (stale) entry, so (tn, i) may stay on the
                # floor as long as it precedes both children.
                if tn < ct or (tn == ct and i < ci):
                    t = tn
                    continue
                heapreplace(heap, (tn, i))
                break
            finish = t + tails[i]
            if out_i:
                finish = max(finish, max(out_i))
                out_i.clear()
            finish_arr[i] = finish
            heappop(heap)
            break
        next_evt[i] = j
    return finish_arr


def simulate(
    trace: InstructionTrace,
    config: NMCConfig | None = None,
    *,
    workload: str = "",
    parameters: Mapping[str, float] | None = None,
    engine: str | None = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` on ``config`` (Table 3 default)."""
    return NMCSimulator(config, engine=engine).run(
        trace, workload=workload, parameters=parameters
    )


# ------------------------------------------------------- batched replay

#: Bucket bounds of the ``sim.batch.points_per_call`` histogram (batch
#: sizes, not latencies).
_BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _contend_native_multi(
    entries: Sequence[tuple[_EventBundle, StackedMemory, NMCConfig]],
    kernel: Callable,
) -> list[np.ndarray]:
    """Replay every entry's phase B in ONE compiled kernel invocation.

    Concatenates the points' packed event columns into global arrays,
    rebases each point's ``off`` table to absolute event indices, and
    tabulates the per-point float/int parameters
    (:data:`repro.nmcsim._native.PARAM_FIELDS` /
    :data:`~repro.nmcsim._native.IPARAM_FIELDS`).  Scratch arrays are
    sized for the largest point; the kernel re-initialises them per
    point, so each point replays from the exact idle-memory state a
    fresh :class:`StackedMemory` holds — bit-identical to N separate
    single-point calls.  Returns each point's finish-time slice.
    """
    n_packed = np.asarray([e[0].n_packed for e in entries], dtype=np.int64)
    p_off = np.asarray(
        np.concatenate(([0], np.cumsum(n_packed))), dtype=np.int64
    )
    total = int(p_off[-1])
    ev_counts = np.asarray(
        [len(e[0].block) for e in entries], dtype=np.int64
    )
    ev_base = np.asarray(
        np.concatenate(([0], np.cumsum(ev_counts))), dtype=np.int64
    )
    off = np.asarray(
        np.concatenate(
            [b.off[:-1] + base
             for (b, _m, _c), base in zip(entries, ev_base)]
            + [ev_base[-1:]]
        ),
        dtype=np.int64,
    )

    def cat(name: str, dtype) -> np.ndarray:
        # np.asarray leaves the concatenated (contiguous) result alone
        # when the dtype already matches — no astype copy on the hot path.
        return np.asarray(
            np.concatenate([getattr(e[0], name) for e in entries]),
            dtype=dtype,
        )

    params = np.empty((len(entries), 9), dtype=np.float64)
    iparams = np.empty((len(entries), 4), dtype=np.int64)
    for p, (_b, memory, cfg) in enumerate(entries):
        params[p] = (
            memory._t_cl, memory._t_bl, memory._t_rp, memory._hop,
            memory._linger, memory._closed, memory._occupancy,
            memory._wr_extra, cfg.cycle_ns,
        )
        iparams[p] = (
            1 if cfg.pe_type == "ooo" else 0,
            cfg.mshr_entries,
            cfg.n_vaults * cfg.banks_per_vault,
            cfg.n_vaults,
        )
    max_banks = int(iparams[:, 2].max())
    max_vaults = int(iparams[:, 3].max())
    max_streams = int(n_packed.max())
    max_mshr_buf = int((n_packed * iparams[:, 1]).max())
    finish = np.empty(total, dtype=np.float64)
    kernel(
        p_off, off,
        cat("block", np.int64), cat("vault", np.int64),
        cat("bank", np.int64), cat("wblock", np.int64),
        cat("wvault", np.int64), cat("wbank", np.int64),
        cat("dnext", np.float64), cat("t0", np.float64),
        cat("tail", np.float64), finish,
        params, iparams,
        np.empty(max_banks, dtype=np.float64),
        np.empty(max_banks, dtype=np.int64),
        np.empty(max_banks, dtype=np.float64),
        np.empty(max_vaults, dtype=np.float64),
        np.empty(max_mshr_buf, dtype=np.float64),
        np.empty(max_streams, dtype=np.int64),
        np.empty(max_streams, dtype=np.float64),
        np.empty(max_streams, dtype=np.int64),
        np.empty(max_streams, dtype=np.int64),
    )
    return [
        finish[p_off[p]:p_off[p + 1]] for p in range(len(entries))
    ]


def simulate_batch(
    points: Sequence[
        tuple[InstructionTrace, NMCConfig | None, str, Mapping[str, float] | None]
    ],
    *,
    engine: str | None = None,
) -> list[SimulationResult]:
    """Simulate many design points with phase B batched into one call.

    ``points`` holds ``(trace, config, workload, parameters)`` tuples
    (``config=None`` means the Table 3 default).  Results are returned
    in input order and are bit-identical to running each point through
    :meth:`NMCSimulator.run` — the batching only amortises kernel
    dispatch, never changes event order (points are independent: each
    replays against its own idle memory state).

    Per point, the usual ``phase.simulate`` span (wrapping phase A) and
    ``nmcsim.runs`` count are emitted, so campaign-level observability
    contracts hold in both modes; the shared phase-B invocation is
    instrumented with ``sim.batch.*`` counters/histograms only.

    Non-fast engines and hardware-timeline runs fall back to per-point
    :meth:`~NMCSimulator.run` calls (identical results, no batching).
    """
    if not points:
        return []
    resolved = resolve_engine(engine)
    sims: dict[int, NMCSimulator] = {}

    def sim_for(cfg: NMCConfig | None) -> NMCSimulator:
        sim = sims.get(id(cfg))
        if sim is None:
            sim = NMCSimulator(cfg, engine=resolved)
            sims[id(cfg)] = sim
        return sim

    if resolved != "fast" or tracer().hw_enabled:
        return [
            sim_for(cfg).run(trace, workload=workload, parameters=parameters)
            for trace, cfg, workload, parameters in points
        ]

    # Schedule phase A so points sharing a trace (and then an
    # architecture slice) run back to back: the per-trace memo LRUs
    # stay warm however the caller ordered the sweep.
    trace_rank: dict[int, int] = {}
    for trace, _cfg, _w, _p in points:
        trace_rank.setdefault(id(trace), len(trace_rank))

    def order_key(i: int):
        trace, cfg, _w, _p = points[i]
        c = sim_for(cfg).config
        return (
            trace_rank[id(trace)],
            (c.n_pes, c.line_bytes, c.l1_sets, c.l1_ways),
            _events_key(c),
            i,
        )

    prepared: list[tuple[NMCSimulator, StackedMemory, _PhaseA] | None] = (
        [None] * len(points)
    )
    for i in sorted(range(len(points)), key=order_key):
        trace, cfg, _workload, _parameters = points[i]
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        sim = sim_for(cfg)
        with metrics().timer("phase.simulate"):
            memory = StackedMemory(sim.config)
            product = sim._phase_a(trace, memory)
            bundle = product.bundle
            memory.add_counts(
                reads=bundle.n_reads,
                writes=bundle.n_writes,
                vault_counts=bundle.vault_counts,
            )
        prepared[i] = (sim, memory, product)

    packed = [
        i for i in range(len(points))
        if prepared[i][2].bundle.n_packed  # type: ignore[index]
    ]
    m = metrics()
    t_start = time.perf_counter()
    finishes: dict[int, np.ndarray] = {}
    if packed:
        single = _active_kernel()
        kernel = get_batch_kernel()[0] if single is not None else None
        if kernel is not None:
            entries = [
                (prepared[i][2].bundle, prepared[i][1], prepared[i][0].config)
                for i in packed
            ]
            finishes = dict(zip(packed, _contend_native_multi(entries, kernel)))
        elif single is not None:
            for i in packed:
                sim, memory, product = prepared[i]
                finishes[i] = sim._contend_native(
                    product.bundle, memory, single
                )
        else:
            for i in packed:
                sim, memory, product = prepared[i]
                cfg = sim.config
                finishes[i] = _contend_python_bundle(
                    product.bundle, memory,
                    ooo=cfg.pe_type == "ooo",
                    mshrs=cfg.mshr_entries,
                    l1_cycle_ns=cfg.cycle_ns,
                )
    m.inc("sim.batch.calls")
    m.inc("sim.batch.points", len(points))
    m.observe(
        "sim.batch.points_per_call", float(len(points)),
        bounds=_BATCH_SIZE_BOUNDS,
    )
    m.observe("sim.batch.contend_s", time.perf_counter() - t_start)

    results: list[SimulationResult] = []
    for i, (trace, _cfg, workload, parameters) in enumerate(points):
        sim, memory, product = prepared[i]
        results.append(
            sim._finalize(
                trace, memory, product, finishes.get(i), workload, parameters
            )
        )
        m.inc("nmcsim.runs")
    return results
