"""The trace-driven NMC simulator (paper phase 2).

Execution model, matching the Table 3 NMC system and the modelling level of
Ramulator-PIM for this paper's experiments:

* each software thread is statically assigned to a PE (round-robin when
  there are more threads than PEs; extra threads time-multiplex);
* PEs are single-issue and in-order: every instruction occupies the pipe
  for its opcode latency, and memory instructions *block* until the L1 (or
  the stacked DRAM, on a miss) returns the line;
* per-PE L1s are write-back/write-allocate; misses and dirty evictions go
  to the vault whose address range they fall into;
* vault/bank contention between PEs is resolved exactly, by processing all
  PEs' memory events in global time order (heap-driven).

The simulator returns IPC (total instructions / makespan cycles), execution
time and the full energy breakdown — the labels NAPEL trains on.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from ..config import NMCConfig, default_nmc_config
from ..errors import SimulationError
from ..ir import OPCODE_LATENCY, InstructionTrace, Opcode
from ..obs import get_logger, metrics, tracer
from .cache import Cache, CacheStats
from .dram import StackedMemory
from .energy import compute_energy
from .results import SimulationResult

log = get_logger("repro.nmcsim")

#: numpy lookup table: opcode value -> execute latency (cycles).
_LATENCY_LUT = np.zeros(max(int(op) for op in Opcode) + 1, dtype=np.int64)
for _op, _lat in OPCODE_LATENCY.items():
    _LATENCY_LUT[int(_op)] = _lat

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ATOMIC = int(Opcode.ATOMIC)


class _PEStream:
    """Pre-digested per-PE instruction stream.

    ``compute_ns[k]`` is the non-memory execution time preceding memory op
    ``k`` (entry ``n_mem`` is the tail after the last memory op); ``lines``
    and ``writes`` describe the memory ops themselves.  ``outstanding``
    holds in-flight miss completion times for the out-of-order PE model.
    """

    __slots__ = (
        "pe", "time_ns", "next_op", "compute_ns", "lines", "writes",
        "cache", "finish_ns", "n_instructions", "outstanding",
    )

    def __init__(
        self,
        pe: int,
        compute_ns: np.ndarray,
        lines: np.ndarray,
        writes: np.ndarray,
        cache: Cache,
        n_instructions: int,
    ) -> None:
        self.pe = pe
        self.time_ns = 0.0
        self.next_op = 0
        self.compute_ns = compute_ns
        self.lines = lines.tolist()
        self.writes = writes.tolist()
        self.cache = cache
        self.finish_ns = 0.0
        self.n_instructions = n_instructions
        self.outstanding: list[float] = []

    @property
    def n_mem(self) -> int:
        return len(self.lines)


def _build_stream(
    pe: int,
    opcode: np.ndarray,
    addr: np.ndarray,
    cycle_ns: float,
    line_shift: int,
    cache: Cache,
    issue_width: int = 1,
) -> _PEStream:
    lat = _LATENCY_LUT[opcode]
    is_mem = (opcode == _LOAD) | (opcode == _STORE) | (opcode == _ATOMIC)
    mem_pos = np.flatnonzero(is_mem)
    lat_nonmem = np.where(is_mem, 0, lat)
    if issue_width > 1:
        # Multi-issue cores retire several independent ops per cycle;
        # first-order model: compute segments shrink by the issue width.
        lat_nonmem = lat_nonmem / issue_width
    pref = np.concatenate(([0], np.cumsum(lat_nonmem)))
    # Compute time between consecutive memory ops (and before the first /
    # after the last).  lat_nonmem is zero at memory positions, so prefix
    # differences at the positions give exactly the in-between sums.
    bounds = np.concatenate(([0], mem_pos, [len(opcode)]))
    compute_cycles = pref[bounds[1:]] - pref[bounds[:-1]]
    lines = (addr[mem_pos] >> np.uint64(line_shift)).astype(np.int64)
    writes = (opcode[mem_pos] == _STORE) | (opcode[mem_pos] == _ATOMIC)
    return _PEStream(
        pe=pe,
        compute_ns=compute_cycles.astype(np.float64) * cycle_ns,
        lines=lines,
        writes=writes,
        cache=cache,
        n_instructions=len(opcode),
    )


class NMCSimulator:
    """Simulates kernel traces on one NMC architecture configuration."""

    def __init__(self, config: NMCConfig | None = None) -> None:
        self.config = config or default_nmc_config()
        self.config.validate()

    def run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        """Simulate one trace; returns IPC, time and energy."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        with metrics().timer("phase.simulate") as span:
            result = self._run(trace, workload=workload, parameters=parameters)
        metrics().inc("nmcsim.runs")
        log.debug(
            "simulation done",
            extra={"ctx": {
                "workload": workload or "(unnamed)",
                "instructions": result.instructions,
                "cycles": result.cycles,
                "seconds": round(span.elapsed_s or 0.0, 3),
            }},
        )
        return result

    def _run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        cfg = self.config
        cycle_ns = cfg.cycle_ns
        line_shift = cfg.line_bytes.bit_length() - 1
        # Opt-in simulated-hardware timeline (None unless REPRO_TRACE_HW
        # is set): per-PE busy/stall slices, vault occupancy and cache
        # counter tracks, all on the simulated nanosecond clock.
        hw = tracer().hw_timeline()
        memory = StackedMemory(cfg, timeline=hw)

        # Assign threads to PEs round-robin; threads sharing a PE execute
        # back-to-back (time multiplexed).
        tids = trace.thread_ids
        streams: list[_PEStream] = []
        per_pe_cols: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for idx, tid in enumerate(tids):
            pe = idx % cfg.n_pes
            sub = trace.tid == tid
            per_pe_cols.setdefault(pe, []).append(
                (trace.opcode[sub], trace.addr[sub])
            )
        for pe, parts in sorted(per_pe_cols.items()):
            opcode = np.concatenate([p[0] for p in parts])
            addr = np.concatenate([p[1] for p in parts])
            streams.append(
                _build_stream(
                    pe, opcode, addr, cycle_ns, line_shift,
                    Cache.l1_for(cfg), issue_width=cfg.issue_width,
                )
            )

        # Event loop: always advance the PE whose next memory access comes
        # earliest in global time, so bank/bus contention is seen in order.
        #
        # In-order PEs block on every miss.  Out-of-order PEs ("ooo") keep
        # issuing past misses until their MSHRs fill; when the MSHR file is
        # full, the PE stalls until the oldest outstanding miss returns.
        l1_cycle_ns = cycle_ns  # one-cycle L1 access
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(streams):
            if s.n_mem:
                heapq.heappush(heap, (s.time_ns + float(s.compute_ns[0]), i))
            else:
                s.finish_ns = float(s.compute_ns[0])
        l1_misses = 0
        while heap:
            t, i = heapq.heappop(heap)
            s = streams[i]
            k = s.next_op
            if hw is not None:
                compute = float(s.compute_ns[k])
                if compute > 0:
                    hw.slice(s.pe, "pe.busy", t - compute, t)
            line = s.lines[k]
            is_write = s.writes[k]
            hit, writeback = s.cache.access(line, is_write)
            if hit:
                t += l1_cycle_ns
            elif not ooo:
                done = memory.access(t, line << line_shift, bool(is_write))
                if hw is not None:
                    l1_misses += 1
                    hw.slice(s.pe, "pe.stall", t, done, reason="l1_miss")
                    hw.counter("l1.misses", {"misses": l1_misses}, done)
                t = done + l1_cycle_ns
            else:
                done = memory.access(t, line << line_shift, bool(is_write))
                if hw is not None:
                    l1_misses += 1
                    hw.counter("l1.misses", {"misses": l1_misses}, done)
                s.outstanding.append(done)
                if len(s.outstanding) >= mshrs:
                    # MSHRs full: stall until the oldest miss completes.
                    oldest = min(s.outstanding)
                    s.outstanding.remove(oldest)
                    if hw is not None and oldest > t:
                        hw.slice(s.pe, "pe.stall", t, oldest, reason="mshr_full")
                    t = max(t, oldest) + l1_cycle_ns
                else:
                    t += l1_cycle_ns  # issue continues under the miss
            if writeback is not None:
                # Dirty eviction: posted write, does not block the PE but
                # occupies the bank.
                memory.access(t, writeback << line_shift, True)
            s.next_op = k + 1
            if s.next_op < s.n_mem:
                heapq.heappush(
                    heap, (t + float(s.compute_ns[s.next_op]), i)
                )
            else:
                finish = t + float(s.compute_ns[s.n_mem])
                if s.outstanding:
                    finish = max(finish, max(s.outstanding))
                    s.outstanding.clear()
                s.finish_ns = finish

        makespan_ns = max(s.finish_ns for s in streams)
        if makespan_ns <= 0:
            raise SimulationError("simulation produced a non-positive makespan")
        cycles = max(1, int(round(makespan_ns / cycle_ns)))
        instructions = len(trace)
        ipc = instructions / cycles

        # Dirty lines still resident are flushed back at kernel completion:
        # flush() counts each line once in the cache's writeback stats, and
        # the matching DRAM write traffic (and thus DRAM access energy) is
        # added below — once per flushed line, same as an eviction.
        flush_writes = sum(s.cache.flush() for s in streams)
        memory.writes += flush_writes
        # Aggregate statistics (after the flush so it is included).
        cache_stats = CacheStats()
        for s in streams:
            cache_stats.merge(s.cache.stats)
        dram_stats = memory.stats()
        if hw is not None:
            for s in streams:
                hw.counter(
                    f"pe{s.pe}.cache",
                    s.cache.stats.counter_values(),
                    makespan_ns,
                )
            hw.close()

        addrs, _sizes, _w = trace.memory_accesses()
        footprint_lines = len(np.unique(addrs >> np.uint64(line_shift)))
        offload_bytes = float(footprint_lines * cfg.line_bytes)

        time_s = makespan_ns * 1e-9
        energy = compute_energy(
            cfg,
            trace.opcode_counts(),
            l1_accesses=cache_stats.accesses,
            dram_accesses=dram_stats.accesses,
            exec_time_s=time_s,
            offload_bytes=offload_bytes,
        )
        return SimulationResult(
            workload=workload,
            instructions=instructions,
            cycles=cycles,
            time_s=time_s,
            ipc=ipc,
            energy=energy,
            cache=cache_stats,
            dram=dram_stats,
            n_pes_used=len(streams),
            parameters=dict(parameters or {}),
        )


def simulate(
    trace: InstructionTrace,
    config: NMCConfig | None = None,
    *,
    workload: str = "",
    parameters: Mapping[str, float] | None = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` on ``config`` (Table 3 default)."""
    return NMCSimulator(config).run(
        trace, workload=workload, parameters=parameters
    )
