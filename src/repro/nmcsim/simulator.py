"""The trace-driven NMC simulator (paper phase 2).

Execution model, matching the Table 3 NMC system and the modelling level of
Ramulator-PIM for this paper's experiments:

* each software thread is statically assigned to a PE (round-robin when
  there are more threads than PEs; extra threads time-multiplex);
* PEs are single-issue and in-order: every instruction occupies the pipe
  for its opcode latency, and memory instructions *block* until the L1 (or
  the stacked DRAM, on a miss) returns the line;
* per-PE L1s are write-back/write-allocate; misses and dirty evictions go
  to the vault whose address range they fall into;
* vault/bank contention between PEs is resolved exactly, by processing all
  PEs' memory events in global time order (heap-driven).

Two engines implement this model with identical results:

* ``reference`` — one heap event per memory access, stepping the
  :class:`~repro.nmcsim.cache.Cache` model per access (the original,
  obviously-correct formulation);
* ``fast`` (default) — two-phase: **phase A** classifies every PE
  stream's hits, misses, writebacks and end-of-kernel flushes up front
  with the vectorized stack-distance classifier
  (:mod:`repro.nmcsim.classify`, exact for any associativity), then
  **phase B** runs the exact contention loop over *only* the
  miss/writeback events, with hit latencies folded into the compute
  segments.

Event times in both engines are computed from the same prefix-sum
expressions (``base_t + (pref[k+1] - pref[base+1]) + n_hits * l1``), so
the engines agree bit for bit — not merely within tolerance.

Two further levers sit on top of the fast engine:

* **geometry memos** — phase A's products are pure functions of
  (trace, architecture-slice): PE streams depend only on the PE count /
  issue width / frequency / line size, classifications only on the L1
  geometry, and the packed phase-B event arrays on the DRAM geometry and
  clock as well.  Each is cached on the trace's ``_memo`` side table
  under its own key, so DoE campaign points that share a slice skip the
  corresponding work entirely (``sim.memo.*`` counters; disable with
  ``REPRO_SIM_MEMO=0``).
* **native phase B** — with ``REPRO_SIM_JIT=1`` the contention loop runs
  as a compiled kernel (:mod:`repro.nmcsim._native`: numba if
  importable, else a C translation built with the system compiler),
  byte-identical to the Python loop; without a usable backend the
  Python loop is used and results are unchanged.

The simulator returns IPC (total instructions / makespan cycles),
execution time and the full energy breakdown — the labels NAPEL trains
on.
"""

from __future__ import annotations

import heapq
import os
from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from ..config import SIM_ENGINES, NMCConfig, default_nmc_config
from ..errors import ConfigError, SimulationError
from ..ir import OPCODE_LATENCY, InstructionTrace, Opcode
from ..obs import get_logger, metrics, tracer
from ._native import get_kernel
from .cache import Cache, CacheStats
from .classify import classify_lru
from .dram import StackedMemory
from .energy import compute_energy
from .results import SimulationResult

log = get_logger("repro.nmcsim")

#: Environment variable selecting the simulation engine.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Environment variable opting into the compiled phase-B kernel.
JIT_ENV_VAR = "REPRO_SIM_JIT"

#: Environment variable disabling the phase-A geometry memos ("0" = off).
MEMO_ENV_VAR = "REPRO_SIM_MEMO"

#: Valid engine names; ``fast`` is the default.
ENGINES = SIM_ENGINES

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def resolve_engine(engine: str | None = None) -> str:
    """The effective engine name: argument, ``$REPRO_SIM_ENGINE``, or fast."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR, "").strip() or "fast"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown simulation engine {engine!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    return engine


def jit_requested() -> bool:
    """Whether ``$REPRO_SIM_JIT`` opts into the compiled phase-B kernel."""
    return os.environ.get(JIT_ENV_VAR, "").strip().lower() in _TRUTHY


def _active_kernel() -> Callable | None:
    """The compiled contention kernel, or None (not requested/available)."""
    if not jit_requested():
        return None
    kernel, _ = get_kernel()
    return kernel


def jit_status() -> dict:
    """JIT provenance for manifests and benchmark records.

    ``backend`` is the compiled backend actually in use (``"numba"`` or
    ``"cc"``), or None when the JIT is not requested or no backend could
    be built (the pure-Python loop runs in that case).
    """
    requested = jit_requested()
    backend = None
    if requested:
        kernel, name = get_kernel()
        backend = name if kernel is not None else None
    return {"requested": requested, "backend": backend}


# --------------------------------------------------------------- memos

_MEMO_KINDS = ("streams", "classify", "events")

#: ``repro.obs`` counter names fed by the phase-A memo layers (exported
#: so the campaign runner can aggregate worker deltas into manifests).
MEMO_COUNTER_NAMES = tuple(
    f"sim.memo.{kind}.{outcome}"
    for kind in _MEMO_KINDS
    for outcome in ("hits", "misses")
)

#: Per-trace LRU capacity of each memo kind.  Streams only vary with the
#: coarse PE slice (few distinct values per campaign); classification and
#: event bundles track swept geometries, so they keep a few more entries.
_MEMO_CAPS = {"streams": 2, "classify": 4, "events": 4}


def memo_enabled() -> bool:
    """Whether the phase-A geometry memos are active (default yes)."""
    return os.environ.get(MEMO_ENV_VAR, "").strip() != "0"


def _memo_lookup(trace: InstructionTrace, kind: str, key: tuple, build):
    """Geometry-keyed lookup in the trace's ``_memo`` side table.

    Each kind gets its own small LRU (:data:`_MEMO_CAPS`); hits and
    misses are counted as ``sim.memo.<kind>.<hits|misses>``.  The memo
    lives on the trace object, so its lifetime is bounded by the
    campaign-level trace memo that already bounds trace lifetimes.
    """
    if not memo_enabled():
        return build()
    memo: OrderedDict = trace._memo.setdefault(f"sim.{kind}", OrderedDict())
    value = memo.get(key)
    if value is not None:
        memo.move_to_end(key)
        metrics().inc(f"sim.memo.{kind}.hits")
        return value
    value = build()
    memo[key] = value
    metrics().inc(f"sim.memo.{kind}.misses")
    while len(memo) > _MEMO_CAPS[kind]:
        memo.popitem(last=False)
    return value


def simulation_memo_summary() -> dict:
    """Memo hit/miss counters as a manifest-ready mapping.

    ``classification_hit_ratio`` is the headline number: the fraction of
    simulation runs whose phase-A classification was served from the
    geometry memo instead of recomputed.
    """
    m = metrics()
    out: dict = {}
    for kind in _MEMO_KINDS:
        out[kind] = {
            "hits": m.count(f"sim.memo.{kind}.hits"),
            "misses": m.count(f"sim.memo.{kind}.misses"),
        }
    total = out["classify"]["hits"] + out["classify"]["misses"]
    out["classification_hit_ratio"] = (
        out["classify"]["hits"] / total if total else 0.0
    )
    return out


#: numpy lookup table: opcode value -> execute latency (cycles).
_LATENCY_LUT = np.zeros(max(int(op) for op in Opcode) + 1, dtype=np.int64)
for _op, _lat in OPCODE_LATENCY.items():
    _LATENCY_LUT[int(_op)] = _lat

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ATOMIC = int(Opcode.ATOMIC)


class _PEStream:
    """Pre-digested per-PE instruction stream.

    ``compute_ns[k]`` is the non-memory execution time preceding memory op
    ``k`` (entry ``n_mem`` is the tail after the last memory op); ``pref``
    is its prefix sum (``pref[k+1]`` = compute time before op ``k``
    completes its preceding segment); ``lines`` and ``writes`` describe
    the memory ops themselves and stay NumPy arrays end to end.  The
    array columns are the memoizable *digest* (shared across runs via
    the streams memo); everything else is per-run mutable state.

    Timing state is normalized to *miss anchors*: ``base_t`` is the
    completion time of the last miss (0.0 initially) and ``base_k`` its
    op index (-1 initially); every later event time derives from them via
    :meth:`issue_ns`, which is the expression both engines share.
    ``outstanding`` is a min-heap of in-flight miss completion times for
    the out-of-order PE model.
    """

    __slots__ = (
        "pe", "next_op", "compute_ns", "pref", "lines", "writes",
        "cache", "finish_ns", "n_instructions", "outstanding",
        "base_t", "base_k",
        "events", "n_events", "first_delta", "tail_ns", "next_evt",
    )

    def __init__(
        self,
        pe: int,
        compute_ns: np.ndarray,
        pref: np.ndarray,
        lines: np.ndarray,
        writes: np.ndarray,
        n_instructions: int,
    ) -> None:
        self.pe = pe
        self.next_op = 0
        self.compute_ns = compute_ns
        self.pref = pref
        self.lines = lines
        self.writes = writes
        self.cache: Cache | None = None
        self.finish_ns = 0.0
        self.n_instructions = n_instructions
        self.outstanding: list[float] = []
        self.base_t = 0.0
        self.base_k = -1
        # Phase-B (fast engine) miss-compressed event stream: one tuple
        # per miss — its pre-routed DRAM coordinates (block, vault, flat
        # bank index), those of its dirty victim (victim bank -1 when
        # clean), and the deterministic issue gap to the *next* miss
        # (``first_delta`` carries the gap to the first one).
        self.events: list[tuple] = []
        self.n_events = 0
        self.first_delta = 0.0
        self.tail_ns = 0.0
        self.next_evt = 0

    @property
    def n_mem(self) -> int:
        return len(self.lines)

    def issue_ns(self, k: int, l1_cycle_ns: float) -> float:
        """Issue time of memory op ``k`` (``k == n_mem``: kernel finish).

        All ops in ``(base_k, k)`` are hits by construction, each adding
        one L1 cycle; the expression (and its floating-point evaluation
        order) is shared verbatim with the fast engine's vectorized
        delta computation, which is what makes the engines bit-identical.
        """
        return self.base_t + (
            (self.pref[k + 1] - self.pref[self.base_k + 1])
            + (k - self.base_k - 1) * l1_cycle_ns
        )


def _stream_digest(
    pe: int,
    opcode: np.ndarray,
    addr: np.ndarray,
    cycle_ns: float,
    line_shift: int,
    issue_width: int = 1,
) -> tuple:
    """The immutable array columns of one PE stream (memoizable)."""
    lat = _LATENCY_LUT[opcode]
    is_mem = (opcode == _LOAD) | (opcode == _STORE) | (opcode == _ATOMIC)
    mem_pos = np.flatnonzero(is_mem)
    lat_nonmem = np.where(is_mem, 0, lat)
    if issue_width > 1:
        # Multi-issue cores retire several independent ops per cycle;
        # first-order model: compute segments shrink by the issue width.
        lat_nonmem = lat_nonmem / issue_width
    pref = np.concatenate(([0], np.cumsum(lat_nonmem)))
    # Compute time between consecutive memory ops (and before the first /
    # after the last).  lat_nonmem is zero at memory positions, so prefix
    # differences at the positions give exactly the in-between sums.
    bounds = np.concatenate(([0], mem_pos, [len(opcode)]))
    compute_cycles = pref[bounds[1:]] - pref[bounds[:-1]]
    lines = (addr[mem_pos] >> np.uint64(line_shift)).astype(np.int64)
    writes = (opcode[mem_pos] == _STORE) | (opcode[mem_pos] == _ATOMIC)
    compute_ns = compute_cycles.astype(np.float64) * cycle_ns
    return (
        pe,
        compute_ns,
        np.concatenate(([0.0], np.cumsum(compute_ns))),
        lines,
        writes,
        len(opcode),
    )


class _EventBundle:
    """Packed phase-B inputs for one (trace, architecture-slice) pair.

    Miss/writeback events of all streams concatenated into flat arrays
    (``off`` holds per-packed-stream bounds, ``sidx`` maps packed slots
    back to stream indices), plus the order-independent aggregates that
    phase A pre-counts (DRAM traffic, no-miss stream finish times).
    Everything here is immutable across runs — the bundle is what the
    events memo caches.
    """

    __slots__ = (
        "sidx", "off", "block", "vault", "bank",
        "wblock", "wvault", "wbank", "dnext", "t0", "tail",
        "finish0", "n_reads", "n_writes", "vault_counts",
        "_events_lists",
    )

    def __init__(self) -> None:
        self.sidx: list[int] = []
        self.finish0: dict[int, float] = {}
        self.n_reads = 0
        self.n_writes = 0
        self._events_lists: list[list[tuple]] | None = None

    @property
    def n_packed(self) -> int:
        return len(self.sidx)

    def events_lists(self) -> list[list[tuple]]:
        """Per-packed-stream Python event tuples (pure-Python loop food).

        Built lazily from the packed arrays on the first run that falls
        back to the interpreter loop, then cached on the bundle (tuples
        of plain scalars: cheap indexing and comparisons; float64 ->
        float is exact).
        """
        if self._events_lists is None:
            built = []
            off = self.off
            for slot in range(self.n_packed):
                lo, hi = int(off[slot]), int(off[slot + 1])
                built.append(list(zip(
                    self.block[lo:hi].tolist(),
                    self.vault[lo:hi].tolist(),
                    self.bank[lo:hi].tolist(),
                    self.wblock[lo:hi].tolist(),
                    self.wvault[lo:hi].tolist(),
                    self.wbank[lo:hi].tolist(),
                    self.dnext[lo:hi].tolist(),
                )))
            self._events_lists = built
        return self._events_lists


class NMCSimulator:
    """Simulates kernel traces on one NMC architecture configuration.

    ``engine`` selects the execution engine (``"fast"`` two-phase or
    ``"reference"`` per-access; ``None`` honours ``$REPRO_SIM_ENGINE``,
    default fast).  Both engines produce identical
    :class:`SimulationResult` values; see :mod:`repro.nmcsim.classify`.
    """

    def __init__(
        self,
        config: NMCConfig | None = None,
        *,
        engine: str | None = None,
    ) -> None:
        self.config = config or default_nmc_config()
        self.config.validate()
        self.engine = resolve_engine(engine)

    def run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        """Simulate one trace; returns IPC, time and energy."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        with metrics().timer("phase.simulate") as span:
            result = self._run(trace, workload=workload, parameters=parameters)
        metrics().inc("nmcsim.runs")
        log.debug(
            "simulation done",
            extra={"ctx": {
                "workload": workload or "(unnamed)",
                "engine": self.engine,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "seconds": round(span.elapsed_s or 0.0, 3),
            }},
        )
        return result

    # ----------------------------------------------------------- shared

    def _stream_digests(self, trace: InstructionTrace) -> list[tuple]:
        """Round-robin threads onto PEs; threads sharing a PE execute
        back-to-back (time multiplexed)."""
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        tids = trace.thread_ids
        # One stable argsort groups the trace by thread id while keeping
        # per-thread program order — same sub-arrays as a boolean mask
        # per tid, without T full-column scans.
        order = np.argsort(trace.tid, kind="stable")
        sorted_tid = trace.tid[order]
        starts = np.searchsorted(sorted_tid, tids, side="left")
        ends = np.searchsorted(sorted_tid, tids, side="right")
        per_pe_cols: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for idx, tid in enumerate(tids):
            pe = idx % cfg.n_pes
            sel = order[starts[idx]:ends[idx]]
            per_pe_cols.setdefault(pe, []).append(
                (trace.opcode[sel], trace.addr[sel])
            )
        digests: list[tuple] = []
        for pe, parts in sorted(per_pe_cols.items()):
            opcode = np.concatenate([p[0] for p in parts])
            addr = np.concatenate([p[1] for p in parts])
            digests.append(
                _stream_digest(
                    pe, opcode, addr, cfg.cycle_ns, line_shift,
                    issue_width=cfg.issue_width,
                )
            )
        return digests

    def _build_streams(self, trace: InstructionTrace) -> list[_PEStream]:
        cfg = self.config
        digests = _memo_lookup(
            trace,
            "streams",
            (cfg.n_pes, cfg.issue_width, cfg.frequency_ghz, cfg.line_bytes),
            lambda: self._stream_digests(trace),
        )
        # Fresh per-run wrappers around the shared (immutable) columns.
        return [_PEStream(*d) for d in digests]

    def _run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        cfg = self.config
        cycle_ns = cfg.cycle_ns
        line_shift = cfg.line_bytes.bit_length() - 1
        # Opt-in simulated-hardware timeline (None unless REPRO_TRACE_HW
        # is set): per-PE busy/stall slices, vault occupancy and cache
        # counter tracks, all on the simulated nanosecond clock.  The
        # timeline needs one event per access, which is exactly what the
        # fast engine elides — so hardware-traced runs always take the
        # reference path (results are identical either way).
        hw = tracer().hw_timeline()
        engine = self.engine
        if hw is not None and engine == "fast":
            engine = "reference"
        memory = StackedMemory(cfg, timeline=hw)
        streams = self._build_streams(trace)

        if engine == "fast":
            cache_stats, flush_writes = self._contend_fast(
                trace, streams, memory
            )
        else:
            cache_stats, flush_writes = self._contend_reference(
                streams, memory, hw
            )
        memory.writes += flush_writes

        makespan_ns = max(s.finish_ns for s in streams)
        if makespan_ns <= 0:
            raise SimulationError("simulation produced a non-positive makespan")
        cycles = max(1, int(round(makespan_ns / cycle_ns)))
        instructions = len(trace)
        ipc = instructions / cycles

        dram_stats = memory.stats()
        if hw is not None:
            for s in streams:
                assert s.cache is not None
                hw.counter(
                    f"pe{s.pe}.cache",
                    s.cache.stats.counter_values(),
                    makespan_ns,
                )
            hw.close()

        offload_bytes = float(
            trace.footprint_lines(line_shift) * cfg.line_bytes
        )

        time_s = makespan_ns * 1e-9
        energy = compute_energy(
            cfg,
            trace.opcode_counts(),
            l1_accesses=cache_stats.accesses,
            dram_accesses=dram_stats.accesses,
            exec_time_s=time_s,
            offload_bytes=offload_bytes,
            dram_writes=dram_stats.writes,
        )
        return SimulationResult(
            workload=workload,
            instructions=instructions,
            cycles=cycles,
            time_s=time_s,
            ipc=ipc,
            energy=energy,
            cache=cache_stats,
            dram=dram_stats,
            n_pes_used=len(streams),
            parameters=dict(parameters or {}),
        )

    # -------------------------------------------------- reference engine

    def _contend_reference(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
        hw,
    ) -> tuple[CacheStats, int]:
        """One heap event per memory access, stepping the Cache model.

        In-order PEs block on every miss.  Out-of-order PEs ("ooo") keep
        issuing past misses until their MSHRs fill; when the MSHR file is
        full, the PE stalls until the oldest outstanding miss returns.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns  # one-cycle L1 access
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(streams):
            s.cache = Cache.l1_for(cfg)
            if s.n_mem:
                heapq.heappush(heap, (s.issue_ns(0, l1_cycle_ns), i))
            else:
                s.finish_ns = float(s.compute_ns[0])
        l1_misses = 0
        # Event loop: always advance the PE whose next memory access comes
        # earliest in global time, so bank/bus contention is seen in order.
        while heap:
            t, i = heapq.heappop(heap)
            s = streams[i]
            k = s.next_op
            if hw is not None:
                compute = float(s.compute_ns[k])
                if compute > 0:
                    hw.slice(s.pe, "pe.busy", t - compute, t)
            line = int(s.lines[k])
            is_write = bool(s.writes[k])
            hit, writeback = s.cache.access(line, is_write)
            if hit:
                pass  # one L1 cycle, folded into the issue expression
            else:
                done = memory.access(t, line << line_shift, is_write)
                if not ooo:
                    if hw is not None:
                        l1_misses += 1
                        hw.slice(s.pe, "pe.stall", t, done, reason="l1_miss")
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    t = done + l1_cycle_ns
                else:
                    if hw is not None:
                        l1_misses += 1
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    heapq.heappush(s.outstanding, done)
                    if len(s.outstanding) >= mshrs:
                        # MSHRs full: stall until the oldest miss completes.
                        oldest = heapq.heappop(s.outstanding)
                        if hw is not None and oldest > t:
                            hw.slice(
                                s.pe, "pe.stall", t, oldest,
                                reason="mshr_full",
                            )
                        t = max(t, oldest) + l1_cycle_ns
                    else:
                        t += l1_cycle_ns  # issue continues under the miss
                # The miss completion re-anchors all later event times.
                s.base_t = t
                s.base_k = k
                if writeback is not None:
                    # Dirty eviction: posted write, does not block the PE
                    # but occupies the bank (and pays the backend's
                    # write-asymmetry penalty, if any).
                    memory.access(
                        t, writeback << line_shift, True, is_writeback=True
                    )
            s.next_op = k + 1
            if s.next_op < s.n_mem:
                heapq.heappush(
                    heap, (s.issue_ns(s.next_op, l1_cycle_ns), i)
                )
            else:
                finish = s.issue_ns(s.n_mem, l1_cycle_ns)
                if s.outstanding:
                    finish = max(finish, max(s.outstanding))
                    s.outstanding.clear()
                s.finish_ns = finish

        # Dirty lines still resident are flushed back at kernel completion:
        # flush() counts each line once in the cache's writeback stats, and
        # the matching DRAM write traffic (and thus DRAM access energy) is
        # added by the caller — once per flushed line, same as an eviction.
        flush_writes = 0
        cache_stats = CacheStats()
        for s in streams:
            assert s.cache is not None
            flush_writes += s.cache.flush()
            cache_stats.merge(s.cache.stats)
        return cache_stats, flush_writes

    # ------------------------------------------------------- fast engine

    def _build_events(
        self,
        streams: list[_PEStream],
        cls_list: list,
        memory: StackedMemory,
    ) -> _EventBundle:
        """Pack every stream's miss/writeback events into flat arrays.

        Everything deterministic is computed here, vectorized: issue-gap
        deltas (the exact :meth:`_PEStream.issue_ns` operations), DRAM
        routing (the Fibonacci hash is stateless, so ``route_array``
        covers misses and victims alike) and the order-independent
        traffic totals.  Only bank/bus timing is left for phase B.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns
        banks_pv = cfg.banks_per_vault
        shift = np.uint64(line_shift)
        bundle = _EventBundle()
        vault_counts = np.zeros(cfg.n_vaults, dtype=np.int64)
        cols: list[tuple] = []
        t0: list[float] = []
        tail: list[float] = []
        for i, s in enumerate(streams):
            cls = cls_list[i]
            mp = np.flatnonzero(~cls.hit)
            if not len(mp):
                # No misses: purely deterministic stream (base_t = 0).
                bundle.finish0[i] = (
                    float(s.compute_ns[0]) if s.n_mem == 0
                    else float(s.issue_ns(s.n_mem, l1_cycle_ns))
                )
                continue
            # Deterministic gap from the previous miss completion to this
            # miss's issue: the in-between compute segments plus one L1
            # cycle per intervening hit — evaluated with the exact
            # operations of issue_ns().
            mp1 = mp + 1
            comp = s.pref[mp1] - s.pref[np.concatenate(([0], mp1[:-1]))]
            gaps = np.diff(np.concatenate(([-1], mp))) - 1
            delta = comp + gaps * l1_cycle_ns
            dnext = np.empty(len(mp), dtype=np.float64)
            dnext[:-1] = delta[1:]
            dnext[-1] = 0.0
            mv, mb, mblk = memory.route_array(
                s.lines[mp].astype(np.uint64) << shift
            )
            wb = cls.wb_line[mp]
            has_wb = wb >= 0
            wv, wbk, wblk = memory.route_array(
                np.where(has_wb, wb, 0).astype(np.uint64) << shift
            )
            bundle.sidx.append(i)
            t0.append(float(delta[0]))
            tail.append(float(
                (s.pref[s.n_mem + 1] - s.pref[mp[-1] + 1])
                + (s.n_mem - 1 - mp[-1]) * l1_cycle_ns
            ))
            cols.append((
                mblk, mv, mv * banks_pv + mb,
                wblk, wv, np.where(has_wb, wv * banks_pv + wbk, -1),
                dnext,
            ))
            # DRAM traffic totals are order-independent: count them once
            # here rather than per event.
            miss_writes = int(np.count_nonzero(s.writes[mp]))
            n_wb = int(np.count_nonzero(has_wb))
            bundle.n_reads += len(mp) - miss_writes
            bundle.n_writes += miss_writes + n_wb
            vault_counts += np.bincount(mv, minlength=len(vault_counts))
            vault_counts += np.bincount(
                wv[has_wb], minlength=len(vault_counts)
            )
        bundle.vault_counts = vault_counts
        n_events = [len(c[0]) for c in cols]
        bundle.off = np.concatenate(
            ([0], np.cumsum(np.asarray(n_events, dtype=np.int64)))
        ).astype(np.int64)
        names = ("block", "vault", "bank", "wblock", "wvault", "wbank")
        for col, name in enumerate(names):
            packed = (
                np.concatenate([c[col] for c in cols]).astype(np.int64)
                if cols else np.empty(0, dtype=np.int64)
            )
            setattr(bundle, name, packed)
        bundle.dnext = (
            np.concatenate([c[6] for c in cols])
            if cols else np.empty(0, dtype=np.float64)
        )
        bundle.t0 = np.asarray(t0, dtype=np.float64)
        bundle.tail = np.asarray(tail, dtype=np.float64)
        return bundle

    def _contend_fast(
        self,
        trace: InstructionTrace,
        streams: list[_PEStream],
        memory: StackedMemory,
    ) -> tuple[CacheStats, int]:
        """Two-phase: vectorized classification, then a miss-only loop.

        Phase A classifies every stream's accesses against its L1 (hits,
        misses, dirty-victim writebacks, flush set) without any timing
        and packs the miss events; both products are served from the
        geometry memos when a previous run on this trace shares the
        relevant architecture slice.  Phase B replays only the misses
        through the global-time heap — the same issue-time expressions
        and the same sequence of memory-pipeline updates as the
        reference engine, because hits never touch shared state.
        """
        cfg = self.config
        l1_cycle_ns = cfg.cycle_ns
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries

        with metrics().timer("phase.simulate.classify"):
            cls_list = _memo_lookup(
                trace,
                "classify",
                (cfg.n_pes, cfg.line_bytes, cfg.l1_sets, cfg.l1_ways),
                lambda: [
                    classify_lru(
                        s.lines, s.writes,
                        n_sets=cfg.l1_sets, ways=cfg.l1_ways,
                    )
                    for s in streams
                ],
            )
            cache_stats = CacheStats()
            flush_writes = 0
            for cls in cls_list:
                cache_stats.merge(cls.stats)
                flush_writes += len(cls.flush_lines)
            bundle = _memo_lookup(
                trace,
                "events",
                (
                    cfg.backend,
                    cfg.n_pes, cfg.line_bytes, cfg.l1_sets, cfg.l1_ways,
                    cfg.issue_width, cfg.frequency_ghz, cfg.n_vaults,
                    cfg.banks_per_vault, cfg.row_buffer_bytes,
                ),
                lambda: self._build_events(streams, cls_list, memory),
            )
        memory.add_counts(
            reads=bundle.n_reads,
            writes=bundle.n_writes,
            vault_counts=bundle.vault_counts,
        )

        with metrics().timer("phase.simulate.contend"):
            kernel = _active_kernel()
            if kernel is not None and bundle.n_packed:
                self._contend_native(
                    streams, memory, bundle, kernel,
                    ooo=ooo, mshrs=mshrs, l1_cycle_ns=l1_cycle_ns,
                )
            elif bundle.n_packed:
                self._contend_python(
                    streams, memory, bundle,
                    ooo=ooo, mshrs=mshrs, l1_cycle_ns=l1_cycle_ns,
                )
            for i, fin in bundle.finish0.items():
                streams[i].finish_ns = fin
        return cache_stats, flush_writes

    def _contend_native(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
        bundle: _EventBundle,
        kernel: Callable,
        *,
        ooo: bool,
        mshrs: int,
        l1_cycle_ns: float,
    ) -> None:
        """Run phase B through the compiled kernel (packed arrays).

        The kernel is handed fresh state arrays matching StackedMemory's
        initial timing state; nothing reads that state after the run
        (DRAM statistics are count-based and pre-credited in phase A),
        so it does not need to be copied back.
        """
        cfg = self.config
        n = bundle.n_packed
        n_banks = cfg.n_vaults * cfg.banks_per_vault
        finish = np.empty(n, dtype=np.float64)
        kernel(
            bundle.off,
            bundle.block, bundle.vault, bundle.bank,
            bundle.wblock, bundle.wvault, bundle.wbank,
            bundle.dnext, bundle.t0, bundle.tail, finish,
            np.zeros(n_banks, dtype=np.float64),
            np.full(n_banks, -1, dtype=np.int64),
            np.full(n_banks, -1.0, dtype=np.float64),
            np.zeros(cfg.n_vaults, dtype=np.float64),
            memory._t_cl, memory._t_bl, memory._t_rp, memory._hop,
            memory._linger, memory._closed, memory._occupancy,
            memory._wr_extra, l1_cycle_ns,
            1 if ooo else 0, mshrs,
            np.empty(n * mshrs, dtype=np.float64),
            np.empty(n, dtype=np.int64),
            np.empty(n, dtype=np.float64),
            np.empty(n, dtype=np.int64),
            np.empty(n, dtype=np.int64),
        )
        for slot, i in enumerate(bundle.sidx):
            streams[i].finish_ns = float(finish[slot])

    def _contend_python(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
        bundle: _EventBundle,
        *,
        ooo: bool,
        mshrs: int,
        l1_cycle_ns: float,
    ) -> None:
        """Phase-B contention loop, pure Python (no compiled backend)."""
        ev_lists = bundle.events_lists()
        t0 = bundle.t0.tolist()
        tails = bundle.tail.tolist()
        for slot, i in enumerate(bundle.sidx):
            s = streams[i]
            s.events = ev_lists[slot]
            s.n_events = len(s.events)
            s.first_delta = t0[slot]
            s.tail_ns = tails[slot]
            s.next_evt = 0
        # The per-miss loop below inlines the timing half of
        # StackedMemory.access (bank + vault bus, see dram/hmc.py);
        # routing and traffic counting were pre-computed vectorized
        # in phase A.  Every expression keeps the exact evaluation
        # order of the method, so the floats are identical; the fast
        # engine never carries a hardware timeline (see _run), so
        # that branch is dropped.
        bus_ready = memory._bus_ready
        bank_ready = memory._bank_ready
        bank_row = memory._bank_row
        bank_until = memory._bank_until
        t_cl = memory._t_cl
        t_bl = memory._t_bl
        t_rp = memory._t_rp
        hop = memory._hop
        linger = memory._linger
        closed = memory._closed
        occupancy = memory._occupancy
        wr_extra = memory._wr_extra

        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        heap: list[tuple[float, int]] = []
        for i in bundle.sidx:
            s = streams[i]
            heappush(heap, (s.base_t + s.first_delta, i))
        # The heap is used peek-style: the root is the event being
        # processed, and it is only rewritten when the active stream
        # stops being globally next — one heapreplace per stream
        # switch instead of a pop + push per event.  The event order
        # is exactly the reference engine's (time, stream index)
        # order: a stream keeps the floor only while its next miss
        # precedes both heap children (the decrease-key invariant).
        inf = float("inf")
        while heap:
            t, i = heap[0]
            s = streams[i]
            j = s.next_evt
            ev_i = s.events
            n_i = s.n_events
            out_i = s.outstanding
            # The children of the root are invariant while this
            # stream keeps the floor, so the decrease-key bound is
            # computed once per activation.  With no other stream
            # pending the bound is +inf: run to completion.
            n_h = len(heap)
            if n_h > 1:
                child = heap[1]
                if n_h > 2 and heap[2] < child:
                    child = heap[2]
                ct, ci = child
            else:
                ct, ci = inf, -1
            while True:
                block, vault, bi, wblk, wv, wbi, dnext = ev_i[j]
                # Miss access: the timing half of StackedMemory
                # .access, inlined (hottest path in the simulator).
                now = t + hop
                ready = bank_ready[bi]
                start = now if now > ready else ready
                open_row = bank_row[bi]
                row_open = open_row >= 0 and start <= bank_until[bi]
                if row_open and block == open_row:
                    data_at = start + t_cl + t_bl
                    bank_ready[bi] = start + t_bl
                else:
                    pre = t_rp if row_open else 0.0
                    data_at = start + pre + closed
                    bank_ready[bi] = start + pre + occupancy
                bank_row[bi] = block
                bank_until[bi] = data_at + linger
                br = bus_ready[vault]
                if data_at - t_bl < br:
                    data_at = br + t_bl
                bus_ready[vault] = data_at
                done = data_at + hop
                if not ooo:
                    t = done + l1_cycle_ns
                else:
                    heappush(out_i, done)
                    if len(out_i) >= mshrs:
                        oldest = heappop(out_i)
                        t = max(t, oldest) + l1_cycle_ns
                    else:
                        t += l1_cycle_ns
                if wbi >= 0:
                    # Dirty-victim writeback: same inlined pipeline,
                    # posted at the miss completion time.
                    now = t + hop
                    ready = bank_ready[wbi]
                    start = now if now > ready else ready
                    open_row = bank_row[wbi]
                    row_open = (
                        open_row >= 0 and start <= bank_until[wbi]
                    )
                    if row_open and wblk == open_row:
                        data_at = start + t_cl + t_bl
                        bank_ready[wbi] = start + t_bl
                    else:
                        pre = t_rp if row_open else 0.0
                        data_at = start + pre + closed
                        bank_ready[wbi] = start + pre + occupancy
                    if wr_extra:
                        data_at += wr_extra
                        bank_ready[wbi] += wr_extra
                    bank_row[wbi] = wblk
                    bank_until[wbi] = data_at + linger
                    br = bus_ready[wv]
                    if data_at - t_bl < br:
                        data_at = br + t_bl
                    bus_ready[wv] = data_at
                j += 1
                if j < n_i:
                    tn = t + dnext
                    # Decrease-key check: the root is this stream's
                    # own (stale) entry, so (tn, i) may stay on the
                    # floor as long as it precedes both children.
                    if tn < ct or (tn == ct and i < ci):
                        t = tn
                        continue
                    heapreplace(heap, (tn, i))
                    break
                finish = t + s.tail_ns
                if out_i:
                    finish = max(finish, max(out_i))
                    out_i.clear()
                s.finish_ns = finish
                heappop(heap)
                break
            s.next_evt = j


def simulate(
    trace: InstructionTrace,
    config: NMCConfig | None = None,
    *,
    workload: str = "",
    parameters: Mapping[str, float] | None = None,
    engine: str | None = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` on ``config`` (Table 3 default)."""
    return NMCSimulator(config, engine=engine).run(
        trace, workload=workload, parameters=parameters
    )
