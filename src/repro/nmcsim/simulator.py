"""The trace-driven NMC simulator (paper phase 2).

Execution model, matching the Table 3 NMC system and the modelling level of
Ramulator-PIM for this paper's experiments:

* each software thread is statically assigned to a PE (round-robin when
  there are more threads than PEs; extra threads time-multiplex);
* PEs are single-issue and in-order: every instruction occupies the pipe
  for its opcode latency, and memory instructions *block* until the L1 (or
  the stacked DRAM, on a miss) returns the line;
* per-PE L1s are write-back/write-allocate; misses and dirty evictions go
  to the vault whose address range they fall into;
* vault/bank contention between PEs is resolved exactly, by processing all
  PEs' memory events in global time order (heap-driven).

Two engines implement this model with identical results:

* ``reference`` — one heap event per memory access, stepping the
  :class:`~repro.nmcsim.cache.Cache` model per access (the original,
  obviously-correct formulation);
* ``fast`` (default) — two-phase: **phase A** classifies every PE
  stream's hits, misses, writebacks and end-of-kernel flushes up front
  with the vectorized stack-distance classifier
  (:mod:`repro.nmcsim.classify`), then **phase B** runs the exact
  contention loop over *only* the miss/writeback events, with hit
  latencies folded into the compute segments.

Event times in both engines are computed from the same prefix-sum
expressions (``base_t + (pref[k+1] - pref[base+1]) + n_hits * l1``), so
the engines agree bit for bit — not merely within tolerance.  The
simulator returns IPC (total instructions / makespan cycles), execution
time and the full energy breakdown — the labels NAPEL trains on.
"""

from __future__ import annotations

import heapq
import os
from typing import Mapping

import numpy as np

from ..config import SIM_ENGINES, NMCConfig, default_nmc_config
from ..errors import ConfigError, SimulationError
from ..ir import OPCODE_LATENCY, InstructionTrace, Opcode
from ..obs import get_logger, metrics, tracer
from .cache import Cache, CacheStats
from .classify import classify_lru
from .dram import StackedMemory
from .energy import compute_energy
from .results import SimulationResult

log = get_logger("repro.nmcsim")

#: Environment variable selecting the simulation engine.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

#: Valid engine names; ``fast`` is the default.
ENGINES = SIM_ENGINES


def resolve_engine(engine: str | None = None) -> str:
    """The effective engine name: argument, ``$REPRO_SIM_ENGINE``, or fast."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR, "").strip() or "fast"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown simulation engine {engine!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    return engine


#: numpy lookup table: opcode value -> execute latency (cycles).
_LATENCY_LUT = np.zeros(max(int(op) for op in Opcode) + 1, dtype=np.int64)
for _op, _lat in OPCODE_LATENCY.items():
    _LATENCY_LUT[int(_op)] = _lat

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ATOMIC = int(Opcode.ATOMIC)


class _PEStream:
    """Pre-digested per-PE instruction stream.

    ``compute_ns[k]`` is the non-memory execution time preceding memory op
    ``k`` (entry ``n_mem`` is the tail after the last memory op); ``pref``
    is its prefix sum (``pref[k+1]`` = compute time before op ``k``
    completes its preceding segment); ``lines`` and ``writes`` describe
    the memory ops themselves and stay NumPy arrays end to end.

    Timing state is normalized to *miss anchors*: ``base_t`` is the
    completion time of the last miss (0.0 initially) and ``base_k`` its
    op index (-1 initially); every later event time derives from them via
    :meth:`issue_ns`, which is the expression both engines share.
    ``outstanding`` is a min-heap of in-flight miss completion times for
    the out-of-order PE model.
    """

    __slots__ = (
        "pe", "next_op", "compute_ns", "pref", "lines", "writes",
        "cache", "finish_ns", "n_instructions", "outstanding",
        "base_t", "base_k",
        "miss_pos", "events", "n_events", "first_delta", "tail_ns",
        "next_evt",
    )

    def __init__(
        self,
        pe: int,
        compute_ns: np.ndarray,
        lines: np.ndarray,
        writes: np.ndarray,
        n_instructions: int,
    ) -> None:
        self.pe = pe
        self.next_op = 0
        self.compute_ns = compute_ns
        self.pref = np.concatenate(([0.0], np.cumsum(compute_ns)))
        self.lines = lines
        self.writes = writes
        self.cache: Cache | None = None
        self.finish_ns = 0.0
        self.n_instructions = n_instructions
        self.outstanding: list[float] = []
        self.base_t = 0.0
        self.base_k = -1
        # Phase-B (fast engine) miss-compressed event stream: one tuple
        # per miss — its pre-routed DRAM coordinates (block, vault, flat
        # bank index), those of its dirty victim (victim bank -1 when
        # clean), and the deterministic issue gap to the *next* miss
        # (``first_delta`` carries the gap to the first one).
        self.miss_pos: np.ndarray | None = None
        self.events: list[tuple] = []
        self.n_events = 0
        self.first_delta = 0.0
        self.tail_ns = 0.0
        self.next_evt = 0

    @property
    def n_mem(self) -> int:
        return len(self.lines)

    def issue_ns(self, k: int, l1_cycle_ns: float) -> float:
        """Issue time of memory op ``k`` (``k == n_mem``: kernel finish).

        All ops in ``(base_k, k)`` are hits by construction, each adding
        one L1 cycle; the expression (and its floating-point evaluation
        order) is shared verbatim with the fast engine's vectorized
        delta computation, which is what makes the engines bit-identical.
        """
        return self.base_t + (
            (self.pref[k + 1] - self.pref[self.base_k + 1])
            + (k - self.base_k - 1) * l1_cycle_ns
        )


def _build_stream(
    pe: int,
    opcode: np.ndarray,
    addr: np.ndarray,
    cycle_ns: float,
    line_shift: int,
    issue_width: int = 1,
) -> _PEStream:
    lat = _LATENCY_LUT[opcode]
    is_mem = (opcode == _LOAD) | (opcode == _STORE) | (opcode == _ATOMIC)
    mem_pos = np.flatnonzero(is_mem)
    lat_nonmem = np.where(is_mem, 0, lat)
    if issue_width > 1:
        # Multi-issue cores retire several independent ops per cycle;
        # first-order model: compute segments shrink by the issue width.
        lat_nonmem = lat_nonmem / issue_width
    pref = np.concatenate(([0], np.cumsum(lat_nonmem)))
    # Compute time between consecutive memory ops (and before the first /
    # after the last).  lat_nonmem is zero at memory positions, so prefix
    # differences at the positions give exactly the in-between sums.
    bounds = np.concatenate(([0], mem_pos, [len(opcode)]))
    compute_cycles = pref[bounds[1:]] - pref[bounds[:-1]]
    lines = (addr[mem_pos] >> np.uint64(line_shift)).astype(np.int64)
    writes = (opcode[mem_pos] == _STORE) | (opcode[mem_pos] == _ATOMIC)
    return _PEStream(
        pe=pe,
        compute_ns=compute_cycles.astype(np.float64) * cycle_ns,
        lines=lines,
        writes=writes,
        n_instructions=len(opcode),
    )


class NMCSimulator:
    """Simulates kernel traces on one NMC architecture configuration.

    ``engine`` selects the execution engine (``"fast"`` two-phase or
    ``"reference"`` per-access; ``None`` honours ``$REPRO_SIM_ENGINE``,
    default fast).  Both engines produce identical
    :class:`SimulationResult` values; see :mod:`repro.nmcsim.classify`.
    """

    def __init__(
        self,
        config: NMCConfig | None = None,
        *,
        engine: str | None = None,
    ) -> None:
        self.config = config or default_nmc_config()
        self.config.validate()
        self.engine = resolve_engine(engine)

    def run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        """Simulate one trace; returns IPC, time and energy."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        with metrics().timer("phase.simulate") as span:
            result = self._run(trace, workload=workload, parameters=parameters)
        metrics().inc("nmcsim.runs")
        log.debug(
            "simulation done",
            extra={"ctx": {
                "workload": workload or "(unnamed)",
                "engine": self.engine,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "seconds": round(span.elapsed_s or 0.0, 3),
            }},
        )
        return result

    # ----------------------------------------------------------- shared

    def _build_streams(self, trace: InstructionTrace) -> list[_PEStream]:
        """Round-robin threads onto PEs; threads sharing a PE execute
        back-to-back (time multiplexed)."""
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        tids = trace.thread_ids
        # One stable argsort groups the trace by thread id while keeping
        # per-thread program order — same sub-arrays as a boolean mask
        # per tid, without T full-column scans.
        order = np.argsort(trace.tid, kind="stable")
        sorted_tid = trace.tid[order]
        starts = np.searchsorted(sorted_tid, tids, side="left")
        ends = np.searchsorted(sorted_tid, tids, side="right")
        per_pe_cols: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        for idx, tid in enumerate(tids):
            pe = idx % cfg.n_pes
            sel = order[starts[idx]:ends[idx]]
            per_pe_cols.setdefault(pe, []).append(
                (trace.opcode[sel], trace.addr[sel])
            )
        streams: list[_PEStream] = []
        for pe, parts in sorted(per_pe_cols.items()):
            opcode = np.concatenate([p[0] for p in parts])
            addr = np.concatenate([p[1] for p in parts])
            streams.append(
                _build_stream(
                    pe, opcode, addr, cfg.cycle_ns, line_shift,
                    issue_width=cfg.issue_width,
                )
            )
        return streams

    def _run(
        self,
        trace: InstructionTrace,
        *,
        workload: str = "",
        parameters: Mapping[str, float] | None = None,
    ) -> SimulationResult:
        cfg = self.config
        cycle_ns = cfg.cycle_ns
        line_shift = cfg.line_bytes.bit_length() - 1
        # Opt-in simulated-hardware timeline (None unless REPRO_TRACE_HW
        # is set): per-PE busy/stall slices, vault occupancy and cache
        # counter tracks, all on the simulated nanosecond clock.  The
        # timeline needs one event per access, which is exactly what the
        # fast engine elides — so hardware-traced runs always take the
        # reference path (results are identical either way).
        hw = tracer().hw_timeline()
        engine = self.engine
        if hw is not None and engine == "fast":
            engine = "reference"
        memory = StackedMemory(cfg, timeline=hw)
        streams = self._build_streams(trace)

        if engine == "fast":
            cache_stats, flush_writes = self._contend_fast(streams, memory)
        else:
            cache_stats, flush_writes = self._contend_reference(
                streams, memory, hw
            )
        memory.writes += flush_writes

        makespan_ns = max(s.finish_ns for s in streams)
        if makespan_ns <= 0:
            raise SimulationError("simulation produced a non-positive makespan")
        cycles = max(1, int(round(makespan_ns / cycle_ns)))
        instructions = len(trace)
        ipc = instructions / cycles

        dram_stats = memory.stats()
        if hw is not None:
            for s in streams:
                assert s.cache is not None
                hw.counter(
                    f"pe{s.pe}.cache",
                    s.cache.stats.counter_values(),
                    makespan_ns,
                )
            hw.close()

        offload_bytes = float(
            trace.footprint_lines(line_shift) * cfg.line_bytes
        )

        time_s = makespan_ns * 1e-9
        energy = compute_energy(
            cfg,
            trace.opcode_counts(),
            l1_accesses=cache_stats.accesses,
            dram_accesses=dram_stats.accesses,
            exec_time_s=time_s,
            offload_bytes=offload_bytes,
        )
        return SimulationResult(
            workload=workload,
            instructions=instructions,
            cycles=cycles,
            time_s=time_s,
            ipc=ipc,
            energy=energy,
            cache=cache_stats,
            dram=dram_stats,
            n_pes_used=len(streams),
            parameters=dict(parameters or {}),
        )

    # -------------------------------------------------- reference engine

    def _contend_reference(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
        hw,
    ) -> tuple[CacheStats, int]:
        """One heap event per memory access, stepping the Cache model.

        In-order PEs block on every miss.  Out-of-order PEs ("ooo") keep
        issuing past misses until their MSHRs fill; when the MSHR file is
        full, the PE stalls until the oldest outstanding miss returns.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns  # one-cycle L1 access
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(streams):
            s.cache = Cache.l1_for(cfg)
            if s.n_mem:
                heapq.heappush(heap, (s.issue_ns(0, l1_cycle_ns), i))
            else:
                s.finish_ns = float(s.compute_ns[0])
        l1_misses = 0
        # Event loop: always advance the PE whose next memory access comes
        # earliest in global time, so bank/bus contention is seen in order.
        while heap:
            t, i = heapq.heappop(heap)
            s = streams[i]
            k = s.next_op
            if hw is not None:
                compute = float(s.compute_ns[k])
                if compute > 0:
                    hw.slice(s.pe, "pe.busy", t - compute, t)
            line = int(s.lines[k])
            is_write = bool(s.writes[k])
            hit, writeback = s.cache.access(line, is_write)
            if hit:
                pass  # one L1 cycle, folded into the issue expression
            else:
                done = memory.access(t, line << line_shift, is_write)
                if not ooo:
                    if hw is not None:
                        l1_misses += 1
                        hw.slice(s.pe, "pe.stall", t, done, reason="l1_miss")
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    t = done + l1_cycle_ns
                else:
                    if hw is not None:
                        l1_misses += 1
                        hw.counter("l1.misses", {"misses": l1_misses}, done)
                    heapq.heappush(s.outstanding, done)
                    if len(s.outstanding) >= mshrs:
                        # MSHRs full: stall until the oldest miss completes.
                        oldest = heapq.heappop(s.outstanding)
                        if hw is not None and oldest > t:
                            hw.slice(
                                s.pe, "pe.stall", t, oldest,
                                reason="mshr_full",
                            )
                        t = max(t, oldest) + l1_cycle_ns
                    else:
                        t += l1_cycle_ns  # issue continues under the miss
                # The miss completion re-anchors all later event times.
                s.base_t = t
                s.base_k = k
                if writeback is not None:
                    # Dirty eviction: posted write, does not block the PE
                    # but occupies the bank.
                    memory.access(t, writeback << line_shift, True)
            s.next_op = k + 1
            if s.next_op < s.n_mem:
                heapq.heappush(
                    heap, (s.issue_ns(s.next_op, l1_cycle_ns), i)
                )
            else:
                finish = s.issue_ns(s.n_mem, l1_cycle_ns)
                if s.outstanding:
                    finish = max(finish, max(s.outstanding))
                    s.outstanding.clear()
                s.finish_ns = finish

        # Dirty lines still resident are flushed back at kernel completion:
        # flush() counts each line once in the cache's writeback stats, and
        # the matching DRAM write traffic (and thus DRAM access energy) is
        # added by the caller — once per flushed line, same as an eviction.
        flush_writes = 0
        cache_stats = CacheStats()
        for s in streams:
            assert s.cache is not None
            flush_writes += s.cache.flush()
            cache_stats.merge(s.cache.stats)
        return cache_stats, flush_writes

    # ------------------------------------------------------- fast engine

    def _contend_fast(
        self,
        streams: list[_PEStream],
        memory: StackedMemory,
    ) -> tuple[CacheStats, int]:
        """Two-phase: vectorized classification, then a miss-only loop.

        Phase A classifies every stream's accesses against its L1 (hits,
        misses, dirty-victim writebacks, flush set) without any timing.
        Phase B replays only the misses through the global-time heap —
        the same issue-time expressions and the same sequence of
        ``memory.access`` calls as the reference engine, because hits
        never touch shared state.
        """
        cfg = self.config
        line_shift = cfg.line_bytes.bit_length() - 1
        l1_cycle_ns = cfg.cycle_ns
        ooo = cfg.pe_type == "ooo"
        mshrs = cfg.mshr_entries

        cache_stats = CacheStats()
        flush_writes = 0
        banks_pv = cfg.banks_per_vault
        shift = np.uint64(line_shift)
        vault_counts = np.zeros(cfg.n_vaults, dtype=np.int64)
        n_reads = 0
        n_writes = 0
        with metrics().timer("phase.simulate.classify"):
            for s in streams:
                cls = classify_lru(
                    s.lines, s.writes,
                    n_sets=cfg.l1_sets, ways=cfg.l1_ways,
                )
                cache_stats.merge(cls.stats)
                flush_writes += len(cls.flush_lines)
                mp = np.flatnonzero(~cls.hit)
                s.miss_pos = mp
                if len(mp):
                    # Deterministic gap from the previous miss completion
                    # to this miss's issue: the in-between compute
                    # segments plus one L1 cycle per intervening hit —
                    # evaluated with the exact operations of issue_ns().
                    mp1 = mp + 1
                    comp = s.pref[mp1] - s.pref[
                        np.concatenate(([0], mp1[:-1]))
                    ]
                    gaps = np.diff(np.concatenate(([-1], mp))) - 1
                    delta = (comp + gaps * l1_cycle_ns).tolist()
                    s.tail_ns = float(
                        (s.pref[s.n_mem + 1] - s.pref[mp[-1] + 1])
                        + (s.n_mem - 1 - mp[-1]) * l1_cycle_ns
                    )
                    # Pre-route every miss (and dirty victim) to its DRAM
                    # coordinates: the Fibonacci hash is stateless, so it
                    # vectorizes, leaving only bank/bus timing to phase B.
                    mv, mb, mblk = memory.route_array(
                        s.lines[mp].astype(np.uint64) << shift
                    )
                    wb = cls.wb_line[mp]
                    has_wb = wb >= 0
                    wv, wbk, wblk = memory.route_array(
                        np.where(has_wb, wb, 0).astype(np.uint64) << shift
                    )
                    # One tuple per miss, carrying the issue gap of the
                    # *next* miss so scheduling needs no second lookup
                    # (tolist() gives plain Python scalars: cheap
                    # indexing and heap comparisons; float64 -> float is
                    # exact).
                    s.first_delta = delta[0]
                    s.events = list(zip(
                        mblk.tolist(),
                        mv.tolist(),
                        (mv * banks_pv + mb).tolist(),
                        wblk.tolist(),
                        wv.tolist(),
                        np.where(has_wb, wv * banks_pv + wbk, -1).tolist(),
                        delta[1:] + [0.0],
                    ))
                    s.n_events = len(mp)
                    # DRAM traffic totals are order-independent, so they
                    # are counted here rather than per event.
                    miss_writes = int(np.count_nonzero(s.writes[mp]))
                    n_wb = int(np.count_nonzero(has_wb))
                    n_reads += len(mp) - miss_writes
                    n_writes += miss_writes + n_wb
                    vault_counts += np.bincount(
                        mv, minlength=len(vault_counts)
                    )
                    vault_counts += np.bincount(
                        wv[has_wb], minlength=len(vault_counts)
                    )
                else:
                    # No misses: purely deterministic stream.
                    s.finish_ns = (
                        float(s.compute_ns[0]) if s.n_mem == 0
                        else s.issue_ns(s.n_mem, l1_cycle_ns)
                    )
                s.next_evt = 0
        memory.add_counts(
            reads=n_reads, writes=n_writes, vault_counts=vault_counts
        )

        with metrics().timer("phase.simulate.contend"):
            # The per-miss loop below inlines the timing half of
            # StackedMemory.access (bank + vault bus, see dram/hmc.py);
            # routing and traffic counting were pre-computed vectorized
            # in phase A.  Every expression keeps the exact evaluation
            # order of the method, so the floats are identical; the fast
            # engine never carries a hardware timeline (see _run), so
            # that branch is dropped.
            bus_ready = memory._bus_ready
            bank_ready = memory._bank_ready
            bank_row = memory._bank_row
            bank_until = memory._bank_until
            t_cl = memory._t_cl
            t_bl = memory._t_bl
            t_rp = memory._t_rp
            hop = memory._hop
            linger = memory._linger
            closed = memory._closed
            occupancy = memory._occupancy

            heappush = heapq.heappush
            heappop = heapq.heappop
            heapreplace = heapq.heapreplace
            heap: list[tuple[float, int]] = []
            for i, s in enumerate(streams):
                if s.n_events:
                    heappush(heap, (s.base_t + s.first_delta, i))
            # The heap is used peek-style: the root is the event being
            # processed, and it is only rewritten when the active stream
            # stops being globally next — one heapreplace per stream
            # switch instead of a pop + push per event.  The event order
            # is exactly the reference engine's (time, stream index)
            # order: a stream keeps the floor only while its next miss
            # precedes both heap children (the decrease-key invariant).
            inf = float("inf")
            while heap:
                t, i = heap[0]
                s = streams[i]
                j = s.next_evt
                ev_i = s.events
                n_i = s.n_events
                out_i = s.outstanding
                # The children of the root are invariant while this
                # stream keeps the floor, so the decrease-key bound is
                # computed once per activation.  With no other stream
                # pending the bound is +inf: run to completion.
                n_h = len(heap)
                if n_h > 1:
                    child = heap[1]
                    if n_h > 2 and heap[2] < child:
                        child = heap[2]
                    ct, ci = child
                else:
                    ct, ci = inf, -1
                while True:
                    block, vault, bi, wblk, wv, wbi, dnext = ev_i[j]
                    # Miss access: the timing half of StackedMemory
                    # .access, inlined (hottest path in the simulator).
                    now = t + hop
                    ready = bank_ready[bi]
                    start = now if now > ready else ready
                    open_row = bank_row[bi]
                    row_open = open_row >= 0 and start <= bank_until[bi]
                    if row_open and block == open_row:
                        data_at = start + t_cl + t_bl
                        bank_ready[bi] = start + t_bl
                    else:
                        pre = t_rp if row_open else 0.0
                        data_at = start + pre + closed
                        bank_ready[bi] = start + pre + occupancy
                    bank_row[bi] = block
                    bank_until[bi] = data_at + linger
                    br = bus_ready[vault]
                    if data_at - t_bl < br:
                        data_at = br + t_bl
                    bus_ready[vault] = data_at
                    done = data_at + hop
                    if not ooo:
                        t = done + l1_cycle_ns
                    else:
                        heappush(out_i, done)
                        if len(out_i) >= mshrs:
                            oldest = heappop(out_i)
                            t = max(t, oldest) + l1_cycle_ns
                        else:
                            t += l1_cycle_ns
                    if wbi >= 0:
                        # Dirty-victim writeback: same inlined pipeline,
                        # posted at the miss completion time.
                        now = t + hop
                        ready = bank_ready[wbi]
                        start = now if now > ready else ready
                        open_row = bank_row[wbi]
                        row_open = (
                            open_row >= 0 and start <= bank_until[wbi]
                        )
                        if row_open and wblk == open_row:
                            data_at = start + t_cl + t_bl
                            bank_ready[wbi] = start + t_bl
                        else:
                            pre = t_rp if row_open else 0.0
                            data_at = start + pre + closed
                            bank_ready[wbi] = start + pre + occupancy
                        bank_row[wbi] = wblk
                        bank_until[wbi] = data_at + linger
                        br = bus_ready[wv]
                        if data_at - t_bl < br:
                            data_at = br + t_bl
                        bus_ready[wv] = data_at
                    j += 1
                    if j < n_i:
                        tn = t + dnext
                        # Decrease-key check: the root is this stream's
                        # own (stale) entry, so (tn, i) may stay on the
                        # floor as long as it precedes both children.
                        if tn < ct or (tn == ct and i < ci):
                            t = tn
                            continue
                        heapreplace(heap, (tn, i))
                        break
                    finish = t + s.tail_ns
                    if out_i:
                        finish = max(finish, max(out_i))
                        out_i.clear()
                    s.finish_ns = finish
                    heappop(heap)
                    break
                s.next_evt = j
        return cache_stats, flush_writes


def simulate(
    trace: InstructionTrace,
    config: NMCConfig | None = None,
    *,
    workload: str = "",
    parameters: Mapping[str, float] | None = None,
    engine: str | None = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` on ``config`` (Table 3 default)."""
    return NMCSimulator(config, engine=engine).run(
        trace, workload=workload, parameters=parameters
    )
