"""A single DRAM bank under the closed-page-with-timeout policy.

Every access activates the row, performs the column access and transfers
the burst.  The controller keeps the row open for a short linger window
(``row_linger_ns``); within the window:

* an access to the *same* row is a row-buffer hit (CAS + burst only);
* an access to a *different* row must first precharge the open row
  (explicit ``tRP``), then activate.

Once the window expires the controller auto-precharges in the background,
so a later access pays only the activation.  With ``row_linger_ns = 0``
this degenerates to a strict closed-row policy.
"""

from __future__ import annotations

from ...config import DRAMTiming


class Bank:
    """Timing state of one bank (all times in nanoseconds)."""

    __slots__ = ("ready_at", "accesses", "row_hits", "open_row", "row_open_until")

    def __init__(self) -> None:
        self.ready_at = 0.0
        self.accesses = 0
        self.row_hits = 0
        self.open_row = -1
        self.row_open_until = -1.0

    def access(self, now_ns: float, row: int, timing: DRAMTiming) -> float:
        """Issue one access to ``row`` at ``now_ns``.

        Returns the time at which the requested data is available.
        """
        start = now_ns if now_ns > self.ready_at else self.ready_at
        self.accesses += 1
        row_open = self.open_row >= 0 and start <= self.row_open_until
        if row_open and row == self.open_row:
            # Row-buffer hit: column access + burst only.
            self.row_hits += 1
            data_at = start + timing.t_cl_ns + timing.t_bl_ns
            self.ready_at = start + timing.t_bl_ns
        else:
            # Row conflict pays an explicit precharge; an expired row was
            # already auto-precharged in the background.
            pre = timing.t_rp_ns if row_open else 0.0
            data_at = start + pre + timing.closed_row_access_ns()
            self.ready_at = start + pre + max(
                timing.t_ras_ns, timing.t_rcd_ns + timing.t_cl_ns
            )
        self.open_row = row
        self.row_open_until = data_at + timing.row_linger_ns
        return data_at
