"""A vault: one vertical DRAM partition with its own controller and TSV bus.

Each vault owns ``banks_per_vault`` banks (spread over the stacked layers)
and a data bus (the TSV column) that serialises the bursts of concurrent
bank accesses.  The vault controller is FCFS — requests are served in
arrival order, which is what the event-driven simulator guarantees by
construction.
"""

from __future__ import annotations

from ...config import DRAMTiming
from .bank import Bank


class Vault:
    """Timing state of one vault (all times in nanoseconds)."""

    __slots__ = ("banks", "bus_ready_at", "accesses")

    def __init__(self, banks_per_vault: int) -> None:
        self.banks = [Bank() for _ in range(banks_per_vault)]
        self.bus_ready_at = 0.0
        self.accesses = 0

    def access(
        self, now_ns: float, bank_idx: int, row: int, timing: DRAMTiming
    ) -> float:
        """One line access through this vault; returns data-ready time."""
        self.accesses += 1
        bank = self.banks[bank_idx % len(self.banks)]
        data_at = bank.access(now_ns, row, timing)
        # The burst must additionally win the vault TSV bus.
        burst_start = data_at - timing.t_bl_ns
        if burst_start < self.bus_ready_at:
            data_at = self.bus_ready_at + timing.t_bl_ns
        self.bus_ready_at = data_at
        return data_at
