"""3D-stacked DRAM model: vaults, banks, closed-row timing."""

from .bank import Bank
from .hmc import StackedMemory, VaultStats
from .vault import Vault

__all__ = ["Bank", "Vault", "StackedMemory", "VaultStats"]
