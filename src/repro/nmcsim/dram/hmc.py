"""The stacked-memory cube: address mapping and vault dispatch.

Address interleaving follows the HMC convention: consecutive
row-buffer-sized blocks (256 B) rotate across vaults, then across banks
within the vault.  This spreads streaming accesses over all vaults and
banks, which is what gives 3D-stacked memory its internal bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...config import NMCConfig
from ...obs.trace import HW_TID_VAULT_BASE


@dataclass
class VaultStats:
    """Aggregate DRAM statistics after a simulation."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    max_vault_accesses: int = 0

    @property
    def activates(self) -> int:
        """Row activations: one per access under the closed-row policy."""
        return self.accesses


class StackedMemory:
    """Vaults + address mapping of the 3D-stacked DRAM cube.

    ``timeline`` (a :class:`repro.obs.HardwareTimeline`, optional) receives
    one ``vault.access`` slice per DRAM access — the vault-occupancy lanes
    of the simulated-hardware trace.

    :meth:`access` sits on the hot path of both simulation engines (it is
    called once per L1 miss and writeback), so the per-bank and per-vault
    timing state is kept in flat lists rather than :class:`Bank` /
    :class:`Vault` object graphs — semantics (and the exact
    floating-point expressions, see :mod:`repro.nmcsim.simulator`) are
    those of the reference classes, which remain the readable model and
    keep their own unit tests.
    """

    def __init__(self, config: NMCConfig, timeline=None) -> None:
        self.config = config
        self.timing = config.timing
        self.timeline = timeline
        self._block_shift = config.row_buffer_bytes.bit_length() - 1
        self.reads = 0
        self.writes = 0
        n_vaults = config.n_vaults
        banks = config.banks_per_vault
        timing = config.timing
        # Flat per-vault / per-bank timing state (bank i of vault v lives
        # at index v * banks_per_vault + i).
        self._vault_accesses = [0] * n_vaults
        self._bus_ready = [0.0] * n_vaults
        self._bank_ready = [0.0] * (n_vaults * banks)
        self._bank_row = [-1] * (n_vaults * banks)
        self._bank_until = [-1.0] * (n_vaults * banks)
        # Timing constants hoisted out of the per-access path.  The sums
        # are the same floats Bank.access computes per call (deterministic
        # expressions of the same operands in the same order).
        self._t_cl = timing.t_cl_ns
        self._t_bl = timing.t_bl_ns
        self._t_rp = timing.t_rp_ns
        self._hop = timing.hop_ns
        self._linger = timing.row_linger_ns
        self._closed = timing.closed_row_access_ns()
        self._occupancy = max(
            timing.t_ras_ns, timing.t_rcd_ns + timing.t_cl_ns
        )
        # Posted-write (writeback) asymmetry: 0.0 on DRAM-class backends,
        # the program penalty on NAND-class ones.  Guarded by truthiness
        # on the hot path, so symmetric devices take no extra float ops.
        self._wr_extra = timing.t_wr_extra_ns

    def route(self, addr: int) -> tuple[int, int, int]:
        """Map a byte address to (vault index, bank index, row id).

        The block id (row-buffer-sized, 256 B) is hashed with a Fibonacci
        multiplicative hash before interleaving, so power-of-two strides do
        not camp on a single vault or bank.  Lines within the same block
        share a row (the row id), enabling row-buffer hits for streaming.
        """
        block = addr >> self._block_shift
        folded = (block * 0x9E3779B97F4A7C15 >> 17) & 0xFFFFFFFF
        vault = folded % self.config.n_vaults
        bank = (folded // self.config.n_vaults) % self.config.banks_per_vault
        return vault, bank, block

    def route_array(
        self, addrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`route`: (vault, bank, block) int64 arrays.

        ``addrs`` must be non-negative byte addresses.  The hash product
        is taken mod 2**64 (uint64 wrap-around); :meth:`route` keeps only
        bits 17..48 of the exact product, so the results are identical.
        """
        block = addrs.astype(np.uint64) >> np.uint64(self._block_shift)
        folded = (
            (block * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(17)
        ) & np.uint64(0xFFFFFFFF)
        vault = folded % np.uint64(self.config.n_vaults)
        bank = (
            folded // np.uint64(self.config.n_vaults)
        ) % np.uint64(self.config.banks_per_vault)
        return (
            vault.astype(np.int64),
            bank.astype(np.int64),
            block.astype(np.int64),
        )

    def add_counts(
        self, *, reads: int = 0, writes: int = 0, vault_counts=None
    ) -> None:
        """Credit access totals computed out-of-band.

        The fast simulation engine pre-counts its miss/writeback traffic
        vectorized (totals are order-independent) and drives only the
        timing state through the per-event loop.
        """
        self.reads += reads
        self.writes += writes
        if vault_counts is not None:
            acc = self._vault_accesses
            for vault, count in enumerate(vault_counts):
                acc[vault] += int(count)

    def access(
        self,
        now_ns: float,
        addr: int,
        is_write: bool,
        *,
        is_writeback: bool = False,
    ) -> float:
        """One cache-line access; returns the data-ready time (ns).

        The logic-layer interconnect hop to the vault and back is added
        here (PEs and vault controllers share the logic layer).  The body
        is :meth:`route` + :meth:`Vault.access` + :meth:`Bank.access`
        fused into one frame; every expression involving runtime state
        keeps the reference association order, so results are identical.

        ``is_writeback`` marks a posted dirty-line writeback — the only
        access class that actually *writes* the array under
        write-allocate (demand store misses are line fetches) and hence
        the one that pays the backend's write-asymmetry penalty
        (``DRAMTiming.t_wr_extra_ns``), both in data time and bank
        occupancy.
        """
        cfg = self.config
        block = addr >> self._block_shift
        folded = (block * 0x9E3779B97F4A7C15 >> 17) & 0xFFFFFFFF
        vault = folded % cfg.n_vaults
        banks = cfg.banks_per_vault
        bank = (folded // cfg.n_vaults) % banks
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        hop = self._hop
        now = now_ns + hop
        self._vault_accesses[vault] += 1
        # --- bank timing (Bank.access semantics) ---
        bi = vault * banks + bank
        ready = self._bank_ready[bi]
        start = now if now > ready else ready
        open_row = self._bank_row[bi]
        row_open = open_row >= 0 and start <= self._bank_until[bi]
        if row_open and block == open_row:
            # Row-buffer hit: column access + burst only.
            data_at = start + self._t_cl + self._t_bl
            self._bank_ready[bi] = start + self._t_bl
        else:
            # Row conflict pays an explicit precharge; an expired row was
            # already auto-precharged in the background.
            pre = self._t_rp if row_open else 0.0
            data_at = start + pre + self._closed
            self._bank_ready[bi] = start + pre + self._occupancy
        if is_writeback and self._wr_extra:
            data_at += self._wr_extra
            self._bank_ready[bi] += self._wr_extra
        self._bank_row[bi] = block
        # The linger window follows the bank-level data time, before the
        # burst is (possibly) delayed by the vault bus below.
        self._bank_until[bi] = data_at + self._linger
        # --- vault TSV bus (Vault.access semantics) ---
        bus_ready = self._bus_ready[vault]
        if data_at - self._t_bl < bus_ready:
            data_at = bus_ready + self._t_bl
        self._bus_ready[vault] = data_at
        if self.timeline is not None:
            self.timeline.slice(
                HW_TID_VAULT_BASE + vault,
                "vault.access",
                now,
                data_at,
                bank=bank,
                write=bool(is_write),
            )
        return data_at + hop

    def stats(self) -> VaultStats:
        accesses = self.reads + self.writes
        per_vault = self._vault_accesses
        return VaultStats(
            accesses=accesses,
            reads=self.reads,
            writes=self.writes,
            max_vault_accesses=max(per_vault) if per_vault else 0,
        )
