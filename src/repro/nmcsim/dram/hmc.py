"""The stacked-memory cube: address mapping and vault dispatch.

Address interleaving follows the HMC convention: consecutive
row-buffer-sized blocks (256 B) rotate across vaults, then across banks
within the vault.  This spreads streaming accesses over all vaults and
banks, which is what gives 3D-stacked memory its internal bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...config import NMCConfig
from ...obs.trace import HW_TID_VAULT_BASE


@dataclass
class VaultStats:
    """Aggregate DRAM statistics after a simulation."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    max_vault_accesses: int = 0

    @property
    def activates(self) -> int:
        """Row activations: one per access under the closed-row policy."""
        return self.accesses


class StackedMemory:
    """Vaults + address mapping of the 3D-stacked DRAM cube.

    ``timeline`` (a :class:`repro.obs.HardwareTimeline`, optional) receives
    one ``vault.access`` slice per DRAM access — the vault-occupancy lanes
    of the simulated-hardware trace.
    """

    def __init__(self, config: NMCConfig, timeline=None) -> None:
        from .vault import Vault  # local import to avoid cycle in docs builds

        self.config = config
        self.timing = config.timing
        self.timeline = timeline
        self.vaults = [
            Vault(config.banks_per_vault) for _ in range(config.n_vaults)
        ]
        self._block_shift = config.row_buffer_bytes.bit_length() - 1
        self.reads = 0
        self.writes = 0

    def route(self, addr: int) -> tuple[int, int, int]:
        """Map a byte address to (vault index, bank index, row id).

        The block id (row-buffer-sized, 256 B) is hashed with a Fibonacci
        multiplicative hash before interleaving, so power-of-two strides do
        not camp on a single vault or bank.  Lines within the same block
        share a row (the row id), enabling row-buffer hits for streaming.
        """
        block = addr >> self._block_shift
        folded = (block * 0x9E3779B97F4A7C15 >> 17) & 0xFFFFFFFF
        vault = folded % self.config.n_vaults
        bank = (folded // self.config.n_vaults) % self.config.banks_per_vault
        return vault, bank, block

    def access(self, now_ns: float, addr: int, is_write: bool) -> float:
        """One cache-line access; returns the data-ready time (ns).

        The logic-layer interconnect hop to the vault and back is added
        here (PEs and vault controllers share the logic layer).
        """
        vault_idx, bank_idx, row = self.route(addr)
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        hop = self.timing.hop_ns
        data_at = self.vaults[vault_idx].access(
            now_ns + hop, bank_idx, row, self.timing
        )
        if self.timeline is not None:
            self.timeline.slice(
                HW_TID_VAULT_BASE + vault_idx,
                "vault.access",
                now_ns + hop,
                data_at,
                bank=bank_idx,
                write=bool(is_write),
            )
        return data_at + hop

    def stats(self) -> VaultStats:
        accesses = self.reads + self.writes
        per_vault = [v.accesses for v in self.vaults]
        return VaultStats(
            accesses=accesses,
            reads=self.reads,
            writes=self.writes,
            max_vault_accesses=max(per_vault) if per_vault else 0,
        )
