"""The versioned feature schema: one authoritative feature identity.

NAPEL's model input is a ~400-column vector whose meaning used to be
spread over four implicit conventions: the profiler's 395-feature
catalog, the ``app.threads`` column, :data:`NMCConfig.ARCH_FEATURE_NAMES`
and the mechanistic ``prior.*`` estimates, concatenated positionally.
Any change to one of them silently invalidated every saved model and
campaign cache — the classic train/serve-skew failure mode.

This module pins the feature identity down:

* a :class:`FeatureBlock` is one ordered, named, typed group of columns
  (``profile``, ``app``, ``arch``, ``prior``);
* a :class:`FeatureSchema` is the ordered concatenation of blocks with a
  stable content hash, ``select()``/``index()``/``diff()`` helpers and a
  projection operator for aligning data produced under another schema;
* provider modules (:mod:`repro.profiler.features`, :mod:`repro.config`,
  :mod:`repro.core.dataset`) *register* their blocks here instead of
  being concatenated ad hoc; :func:`active_schema` assembles and caches
  the runtime schema in the canonical block order.

Model artifacts (:mod:`repro.core.serialization`) and campaign caches
(:mod:`repro.core.campaign`) embed the schema hash, so a feature that is
added, renamed, removed or reordered makes stale artifacts fail loudly
with a :class:`~repro.errors.SchemaMismatchError` naming the offending
columns instead of mispredicting silently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from .errors import ConfigError, SchemaMismatchError

#: Version of the schema *conventions* (block structure, hashing rules).
#: Bump when the meaning of the schema metadata itself changes, not when
#: features change — feature changes are what the content hash detects.
#: v2: the ``arch`` block grew the backend one-hot and backend-derived
#: scalar columns (``arch.backend.*``, ``arch.closed_row``,
#: ``arch.link_gbytes_per_s``, ``arch.rw_asymmetry``).
SCHEMA_FORMAT_VERSION = 2

#: Canonical block order of the assembled feature matrix.  Providers may
#: register in any import order; assembly always follows this sequence.
BLOCK_ORDER = ("profile", "app", "arch", "prior")


@dataclass(frozen=True)
class FeatureBlock:
    """One ordered, named, typed group of feature columns."""

    name: str
    features: tuple[str, ...]
    dtype: str = "float64"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", tuple(self.features))
        if not self.name:
            raise ConfigError("feature block needs a non-empty name")
        if not self.features:
            raise ConfigError(f"feature block {self.name!r} has no features")
        if len(set(self.features)) != len(self.features):
            dupes = sorted(
                {f for f in self.features if self.features.count(f) > 1}
            )
            raise ConfigError(
                f"feature block {self.name!r} has duplicate features: {dupes}"
            )

    def __len__(self) -> int:
        return len(self.features)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "features": list(self.features),
            "dtype": self.dtype,
            "description": self.description,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "FeatureBlock":
        return cls(
            name=str(data["name"]),
            features=tuple(str(f) for f in data["features"]),
            dtype=str(data.get("dtype", "float64")),
            description=str(data.get("description", "")),
        )


@dataclass(frozen=True)
class SchemaDiff:
    """The difference between a reference schema and another schema.

    ``missing`` — reference features the other schema lacks;
    ``extra`` — features only the other schema has;
    ``moved`` — features present in both but at different column indices.
    """

    missing: tuple[str, ...] = ()
    extra: tuple[str, ...] = ()
    moved: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.missing or self.extra or self.moved)

    def describe(self) -> str:
        if not self:
            return "schemas are identical"
        parts = []
        for label, names in (
            ("missing", self.missing),
            ("extra", self.extra),
            ("moved", self.moved),
        ):
            if names:
                shown = ", ".join(names[:8])
                if len(names) > 8:
                    shown += f", ... ({len(names)} total)"
                parts.append(f"{label}: {shown}")
        return "; ".join(parts)


class FeatureSchema:
    """An ordered, named, typed description of one feature matrix layout.

    Immutable once constructed.  Two schemas with the same blocks (names,
    features, dtypes, order) have the same :attr:`content_hash` — the key
    that model artifacts and campaign caches are validated against.
    ``version`` carries :data:`SCHEMA_FORMAT_VERSION` and is deliberately
    *not* part of the content hash: it versions the metadata conventions,
    not the feature identity.
    """

    def __init__(
        self,
        blocks: Iterable[FeatureBlock],
        *,
        version: int = SCHEMA_FORMAT_VERSION,
    ) -> None:
        self.blocks: tuple[FeatureBlock, ...] = tuple(blocks)
        if not self.blocks:
            raise ConfigError("a FeatureSchema needs at least one block")
        self.version = int(version)
        names: list[str] = []
        self._block_slices: dict[str, slice] = {}
        seen_blocks: set[str] = set()
        for block in self.blocks:
            if block.name in seen_blocks:
                raise ConfigError(f"duplicate feature block {block.name!r}")
            seen_blocks.add(block.name)
            start = len(names)
            names.extend(block.features)
            self._block_slices[block.name] = slice(start, len(names))
        self.names: tuple[str, ...] = tuple(names)
        if len(set(self.names)) != len(self.names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(
                f"feature name(s) appear in more than one block: {dupes}"
            )
        self._index: dict[str, int] = {n: i for i, n in enumerate(self.names)}

    # -------------------------------------------------------------- dunders

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeatureSchema):
            return NotImplemented
        return self.blocks == other.blocks and self.version == other.version

    def __hash__(self) -> int:
        return hash((self.blocks, self.version))

    def __repr__(self) -> str:
        blocks = ", ".join(f"{b.name}[{len(b)}]" for b in self.blocks)
        return (
            f"FeatureSchema(v{self.version}, {len(self)} features: {blocks}, "
            f"hash={self.content_hash[:12]})"
        )

    # -------------------------------------------------------------- lookups

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 over the block structure (names, order, dtypes)."""
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            canonical = json.dumps(
                [b.to_json_dict() for b in self.blocks],
                sort_keys=True,
                separators=(",", ":"),
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            self._content_hash = cached
        return cached

    def block(self, name: str) -> FeatureBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        known = [b.name for b in self.blocks]
        raise SchemaMismatchError(
            f"schema has no block {name!r} (blocks: {known})"
        )

    def block_slice(self, name: str) -> slice:
        """Column range of one block in the assembled matrix."""
        self.block(name)  # raise with a helpful message if absent
        return self._block_slices[name]

    def index(self, name: str) -> int:
        """Column index of one feature; SchemaMismatchError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaMismatchError(
                f"feature {name!r} is not in the schema",
                missing=(name,),
            ) from None

    def select(self, what: str | Iterable[str]) -> np.ndarray:
        """Column indices of a block name or an iterable of feature names."""
        if isinstance(what, str):
            sl = self.block_slice(what)
            return np.arange(sl.start, sl.stop, dtype=np.intp)
        return np.asarray([self.index(n) for n in what], dtype=np.intp)

    def subset(self, keep: Sequence[str] | np.ndarray) -> "FeatureSchema":
        """A new schema containing only the kept features.

        ``keep`` is either a boolean mask aligned with :attr:`names` or an
        iterable of feature names.  Blocks emptied by the selection are
        dropped; relative feature order is preserved.
        """
        arr = np.asarray(keep)
        if arr.dtype == bool:
            if arr.shape != (len(self),):
                raise SchemaMismatchError(
                    f"boolean mask has {arr.shape} entries for "
                    f"{len(self)} features"
                )
            kept = {n for n, k in zip(self.names, arr) if k}
        else:
            kept = {n for n in keep}
            unknown = sorted(kept - set(self.names))
            if unknown:
                raise SchemaMismatchError(
                    f"cannot subset to unknown features: {unknown[:8]}",
                    missing=tuple(unknown),
                )
        blocks = []
        for b in self.blocks:
            features = tuple(f for f in b.features if f in kept)
            if features:
                blocks.append(
                    FeatureBlock(
                        name=b.name,
                        features=features,
                        dtype=b.dtype,
                        description=b.description,
                    )
                )
        return FeatureSchema(blocks, version=self.version)

    # ------------------------------------------------------------ comparing

    def diff(self, other: "FeatureSchema") -> SchemaDiff:
        """How ``other`` differs from this (reference) schema."""
        mine, theirs = set(self.names), set(other.names)
        missing = tuple(n for n in self.names if n not in theirs)
        extra = tuple(n for n in other.names if n not in mine)
        moved = tuple(
            n
            for n in self.names
            if n in theirs and self._index[n] != other._index[n]
        )
        return SchemaDiff(missing=missing, extra=extra, moved=moved)

    def projection_from(self, source: "FeatureSchema") -> np.ndarray:
        """Indices reordering ``source``-layout columns into this layout.

        ``X_target = X_source[:, projection]``.  Raises
        :class:`SchemaMismatchError` if any of this schema's features is
        absent from ``source`` (a projection cannot invent columns).
        """
        diff = self.diff(source)
        if diff.missing:
            raise SchemaMismatchError(
                "cannot project: source schema lacks required feature(s) — "
                + diff.describe(),
                missing=diff.missing,
                extra=diff.extra,
                moved=diff.moved,
            )
        return np.asarray(
            [source._index[n] for n in self.names], dtype=np.intp
        )

    def validate_matrix(self, X: np.ndarray, *, context: str = "") -> None:
        """Raise unless ``X`` has exactly one column per schema feature."""
        X = np.asarray(X)
        width = X.shape[-1] if X.ndim else 0
        if X.ndim not in (1, 2) or width != len(self):
            where = f" ({context})" if context else ""
            raise SchemaMismatchError(
                f"feature matrix{where} has shape {X.shape}; the schema "
                f"defines {len(self)} columns (hash {self.content_hash[:12]})"
            )

    # --------------------------------------------------------- persistence

    def to_json_dict(self) -> dict:
        return {
            "version": self.version,
            "content_hash": self.content_hash,
            "blocks": [b.to_json_dict() for b in self.blocks],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "FeatureSchema":
        schema = cls(
            (FeatureBlock.from_json_dict(b) for b in data["blocks"]),
            version=int(data.get("version", SCHEMA_FORMAT_VERSION)),
        )
        stored = data.get("content_hash")
        if stored is not None and stored != schema.content_hash:
            raise SchemaMismatchError(
                "stored schema hash does not match its block list "
                f"({stored[:12]} vs {schema.content_hash[:12]}); the "
                "metadata is corrupt"
            )
        return schema


# ------------------------------------------------------ canonical hashing


def _canonicalize(value):
    """Reduce ``value`` to JSON-safe primitives with stable float text.

    Floats are rendered via :meth:`float.hex` so the digest does not
    depend on ``repr`` shortest-round-trip behaviour; dataclasses are
    flattened to dicts; unknown objects fall back to ``str``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonicalize(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _canonicalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, (str, int)):
        return value
    return str(value)


def canonical_hash(payload) -> str:
    """SHA-256 of the canonical JSON form of ``payload``.

    The one content-hash convention shared by the feature schema, the
    campaign cache's arch key and run manifests: dataclasses and
    mappings are flattened with sorted keys, floats are hex-encoded
    (bit-exact, ``repr``-independent), and the digest is over compact
    JSON.  Equal payloads hash equal across processes and platforms.
    """
    canonical = json.dumps(
        _canonicalize(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------- registry

_Provider = Callable[[], Sequence[str]]

_REGISTRY: dict[str, dict] = {}
_ACTIVE: FeatureSchema | None = None


def register_block(
    name: str,
    features: Sequence[str] | _Provider,
    *,
    dtype: str = "float64",
    description: str = "",
    replace: bool = False,
) -> None:
    """Register (or re-register) one feature block provider.

    ``features`` is either the name tuple itself or a zero-argument
    callable returning it (resolved lazily at assembly time).  Registering
    the same block twice with identical content is a no-op; conflicting
    content requires ``replace=True`` (used by tests that install
    synthetic schemas).
    """
    global _ACTIVE
    entry = {
        "features": features,
        "dtype": dtype,
        "description": description,
    }
    existing = _REGISTRY.get(name)
    if existing is not None and not replace:
        old = _resolve_features(existing["features"])
        new = _resolve_features(features)
        if old != new or existing["dtype"] != dtype:
            raise ConfigError(
                f"feature block {name!r} is already registered with "
                "different content; pass replace=True to override"
            )
        return
    _REGISTRY[name] = entry
    _ACTIVE = None


def _resolve_features(features: Sequence[str] | _Provider) -> tuple[str, ...]:
    if callable(features):
        features = features()
    return tuple(features)


def _ensure_default_providers() -> None:
    """Import the provider modules so their blocks are registered."""
    # Imported lazily to keep this module cycle-free: the providers import
    # repro.schema at module load, not the other way around.
    from . import config  # noqa: F401  (registers "arch")
    from .core import dataset  # noqa: F401  (registers "app" and "prior")
    from .profiler import features  # noqa: F401  (registers "profile")


def active_schema() -> FeatureSchema:
    """The process-wide runtime feature schema (assembled once, cached)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ensure_default_providers()
        missing = [n for n in BLOCK_ORDER if n not in _REGISTRY]
        if missing:
            raise ConfigError(
                f"no provider registered for feature block(s) {missing}"
            )
        ordered = list(BLOCK_ORDER) + [
            n for n in _REGISTRY if n not in BLOCK_ORDER
        ]
        _ACTIVE = FeatureSchema(
            FeatureBlock(
                name=n,
                features=_resolve_features(_REGISTRY[n]["features"]),
                dtype=_REGISTRY[n]["dtype"],
                description=_REGISTRY[n]["description"],
            )
            for n in ordered
        )
    return _ACTIVE


def _reset_active_schema() -> None:
    """Drop the cached schema (test hook; next access reassembles)."""
    global _ACTIVE
    _ACTIVE = None


def __getattr__(name: str):
    # The one remaining home of the legacy name: the flat column list of
    # the active schema.  Everything else should consume FeatureSchema.
    if name == "ALL_FEATURE_NAMES":
        return active_schema().names
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
