"""Instruction-mix features (paper Table 1, "Instruction Mix").

Fractions of instruction categories plus per-opcode fractions.  All values
are in [0, 1] and hardware-independent.
"""

from __future__ import annotations

import numpy as np

from ..ir import InstructionTrace, Opcode
from .features import MIX_CATEGORIES, N_OPCODES

#: Mapping of the scalar mix categories to the opcodes they cover.
_CATEGORY_OPCODES: dict[str, tuple[Opcode, ...]] = {
    "int_alu": (Opcode.IALU,),
    "int_mul": (Opcode.IMUL,),
    "int_div": (Opcode.IDIV,),
    "fp_alu": (Opcode.FALU,),
    "fp_mul": (Opcode.FMUL,),
    "fp_div": (Opcode.FDIV,),
    "fma": (Opcode.FMA,),
    "load": (Opcode.LOAD,),
    "store": (Opcode.STORE,),
    "atomic": (Opcode.ATOMIC,),
    "branch": (Opcode.BRANCH,),
    "cmp": (Opcode.CMP,),
    "move": (Opcode.MOVE,),
    "call_ret": (Opcode.CALL, Opcode.RET),
    "nop": (Opcode.NOP,),
    "int_all": (Opcode.IALU, Opcode.IMUL, Opcode.IDIV, Opcode.CMP),
    "fp_all": (Opcode.FALU, Opcode.FMUL, Opcode.FDIV, Opcode.FMA),
    "mem_all": (Opcode.LOAD, Opcode.STORE, Opcode.ATOMIC),
    "control_all": (Opcode.BRANCH, Opcode.CALL, Opcode.RET),
}


def instruction_mix_features(trace: InstructionTrace) -> dict[str, float]:
    """Category fractions and per-opcode fractions of the trace.

    Returns a dict with keys ``mix.<category>`` and ``opcode.<value>``.
    An empty trace yields all-zero fractions.
    """
    n = len(trace)
    counts = np.zeros(N_OPCODES, dtype=np.int64)
    if n:
        values, per = np.unique(trace.opcode, return_counts=True)
        counts[values.astype(np.int64)] = per

    out: dict[str, float] = {}
    for category in MIX_CATEGORIES:
        opcodes = _CATEGORY_OPCODES[category]
        total = int(sum(counts[int(op)] for op in opcodes))
        out[f"mix.{category}"] = total / n if n else 0.0
    for code in range(N_OPCODES):
        out[f"opcode.{code}"] = int(counts[code]) / n if n else 0.0
    return out
