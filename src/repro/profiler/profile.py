"""The application profile ``p(k, d)`` and its extraction.

:func:`analyze_trace` runs every analysis family over a dynamic trace and
assembles the results into an :class:`ApplicationProfile` — the
395-dimensional, microarchitecture-independent workload description NAPEL
feeds to its random-forest model (paper Sections 2.3 and 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError
from ..ir import InstructionTrace
from .branching import branch_features
from .features import FEATURE_NAMES, TOTAL_FEATURES
from .footprint import footprint_features
from .ilp import ilp_features
from .instruction_mix import instruction_mix_features
from .memory_traffic import memory_traffic_features
from .register_traffic import register_traffic_features
from .reuse_distance import data_reuse_features, instruction_reuse_features
from .stride import stride_features
from .working_set import working_set_features


@dataclass(frozen=True)
class ApplicationProfile:
    """A hardware-independent profile of one (kernel, dataset) execution.

    ``values`` is aligned with :data:`~repro.profiler.features.FEATURE_NAMES`
    (395 entries).  ``instruction_count`` is the dynamic instruction count of
    the kernel region (``I_offload`` in the paper's execution-time formula)
    and ``thread_count`` the number of software threads in the trace; both
    are carried alongside the feature vector because the NAPEL predictor
    needs them to convert predicted IPC into execution time.
    """

    values: np.ndarray
    instruction_count: int
    thread_count: int
    workload: str = ""
    parameters: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(self.values, dtype=np.float64)
        if arr.shape != (TOTAL_FEATURES,):
            raise TraceError(
                f"profile must have {TOTAL_FEATURES} features, "
                f"got shape {arr.shape}"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)

    def __getitem__(self, name: str) -> float:
        return float(self.values[_FEATURE_INDEX[name]])

    def as_dict(self) -> dict[str, float]:
        """Feature name -> value mapping."""
        return dict(zip(FEATURE_NAMES, self.values.tolist()))

    def to_json_dict(self) -> dict:
        """JSON-serialisable representation (for campaign caching)."""
        return {
            "values": self.values.tolist(),
            "instruction_count": self.instruction_count,
            "thread_count": self.thread_count,
            "workload": self.workload,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ApplicationProfile":
        return cls(
            values=np.asarray(data["values"], dtype=np.float64),
            instruction_count=int(data["instruction_count"]),
            thread_count=int(data["thread_count"]),
            workload=str(data.get("workload", "")),
            parameters={k: float(v) for k, v in data.get("parameters", {}).items()},
        )


_FEATURE_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def analyze_trace(
    trace: InstructionTrace,
    *,
    workload: str = "",
    parameters: dict[str, float] | None = None,
    line_bytes: int = 64,
    ilp_sample_limit: int = 15_000,
    reuse_sample_limit: int = 200_000,
) -> ApplicationProfile:
    """Extract the full 395-feature profile from a dynamic trace.

    This is NAPEL phase 1 (both for training and prediction): the analysis
    is purely a function of the instruction stream and contains no
    NMC-architecture knowledge.
    """
    features: dict[str, float] = {}
    features.update(instruction_mix_features(trace))
    features.update(
        ilp_features(trace, sample_limit=ilp_sample_limit, line_bytes=line_bytes)
    )
    data_feats, hists = data_reuse_features(
        trace, line_bytes=line_bytes, sample_limit=reuse_sample_limit
    )
    features.update(data_feats)
    features.update(
        instruction_reuse_features(trace, sample_limit=reuse_sample_limit)
    )
    features.update(memory_traffic_features(trace, hists, line_bytes=line_bytes))
    features.update(register_traffic_features(trace))
    features.update(footprint_features(trace, line_bytes=line_bytes))
    features.update(stride_features(trace))
    features.update(branch_features(trace))
    features.update(working_set_features(trace, line_bytes=line_bytes))

    missing = [name for name in FEATURE_NAMES if name not in features]
    if missing:
        raise TraceError(f"analysis did not produce features: {missing[:5]}...")
    values = np.array([features[name] for name in FEATURE_NAMES], dtype=np.float64)
    return ApplicationProfile(
        values=values,
        instruction_count=len(trace),
        thread_count=max(1, trace.thread_count),
        workload=workload,
        parameters=dict(parameters or {}),
    )
