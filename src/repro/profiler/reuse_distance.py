"""Data and instruction reuse-distance analysis (paper Table 1).

The *reuse distance* (LRU stack distance) of an access is the number of
distinct elements touched since the previous access to the same element.
For data accesses the element is a cache line; for instructions it is the
static program counter.  The distribution of reuse distances is the
canonical hardware-independent description of temporal locality: a fully
associative LRU cache of capacity ``C`` lines hits exactly the accesses with
reuse distance < ``C``.

The computation kernel (the classic Fenwick-tree / move-to-front
formulation of Mattson's stack algorithm, O(M log M) over M accesses)
lives in :mod:`repro.ir.stackdist`, shared with the fast simulation
engine's L1 classifier; this module keeps the feature extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir import InstructionTrace
from ..ir.stackdist import (  # noqa: F401  (re-exported public API)
    COLD_DISTANCE,
    grouped_reuse_distances,
    reuse_distances,
)
from .features import (
    DATA_REUSE_BUCKETS,
    INSTR_REUSE_CDF_BUCKETS,
    INSTR_REUSE_PDF_BUCKETS,
    REUSE_STREAMS,
)


@dataclass(frozen=True)
class ReuseDistanceHistogram:
    """Bucketed reuse-distance distribution.

    ``counts[i]`` is the number of accesses with distance in
    ``[2^(i-1), 2^i)`` (bucket 0 holds distance 0), ``cold`` the number of
    first touches, and ``total`` all accesses in the stream.
    """

    counts: np.ndarray
    cold: int
    total: int

    @classmethod
    def from_distances(
        cls, distances: np.ndarray, n_buckets: int
    ) -> "ReuseDistanceHistogram":
        cold = int((distances == COLD_DISTANCE).sum())
        seen = distances[distances >= 0]
        # Bucket b holds distances d with 2^(b-1) <= d < 2^b; bucket 0 is d=0.
        buckets = np.zeros(n_buckets, dtype=np.int64)
        if len(seen):
            idx = np.zeros(len(seen), dtype=np.int64)
            nz = seen > 0
            idx[nz] = np.floor(np.log2(seen[nz])).astype(np.int64) + 1
            idx = np.minimum(idx, n_buckets - 1)
            np.add.at(buckets, idx, 1)
        return cls(counts=buckets, cold=cold, total=len(distances))

    def cdf(self) -> np.ndarray:
        """P(distance < 2^i) over reused accesses plus cold misses.

        Cold accesses never hit, so they are excluded from the numerator and
        included in the denominator: ``cdf[i]`` is the hit ratio of an ideal
        fully-associative LRU cache of 2^i elements.
        """
        if self.total == 0:
            return np.zeros(len(self.counts))
        cum = np.cumsum(self.counts)
        # cdf[i] = P(d < 2^i) = buckets 0..i  (bucket i covers up to 2^i - 1)
        return cum / self.total

    def pdf(self) -> np.ndarray:
        """Fraction of all accesses per distance bucket."""
        if self.total == 0:
            return np.zeros(len(self.counts))
        return self.counts / self.total

    def miss_ratio(self, capacity: int) -> float:
        """Miss ratio of a fully-associative LRU cache of ``capacity`` lines."""
        if self.total == 0:
            return 0.0
        if capacity <= 0:
            return 1.0
        cutoff = capacity.bit_length() - 1  # largest i with 2^i <= capacity
        hits = int(np.cumsum(self.counts)[min(cutoff, len(self.counts) - 1)])
        # Approximation within the cutoff bucket is conservative: bucket
        # boundaries are powers of two, capacity is rounded down.
        return 1.0 - hits / self.total

    def mean_log2(self) -> float:
        """Mean of log2(1 + distance) over reused accesses."""
        if self.total == self.cold or self.total == 0:
            return float(len(self.counts))  # no reuse at all: maximal
        centers = np.arange(len(self.counts), dtype=np.float64)
        reused = self.counts.sum()
        return float((self.counts * centers).sum() / reused)

    def median_log2(self) -> float:
        """Median bucket index (log2 scale) over reused accesses."""
        reused = int(self.counts.sum())
        if reused == 0:
            return float(len(self.counts))
        half = reused / 2.0
        cum = np.cumsum(self.counts)
        return float(np.searchsorted(cum, half, side="left"))


def data_reuse_features(
    trace: InstructionTrace,
    *,
    line_bytes: int = 64,
    sample_limit: int = 200_000,
) -> tuple[dict[str, float], dict[str, ReuseDistanceHistogram]]:
    """Data reuse-distance features for read/write/all streams.

    Distances are computed once over the combined (interleaved) access
    stream at cache-line granularity, then attributed to the read and write
    sub-streams — matching how reads and writes share a real cache.

    Returns the feature dict and the per-stream histograms (reused by the
    memory-traffic analysis).
    """
    addrs, _sizes, is_write = trace.memory_accesses()
    if len(addrs) > sample_limit:
        addrs = addrs[:sample_limit]
        is_write = is_write[:sample_limit]
    shift = line_bytes.bit_length() - 1
    lines = (addrs >> np.uint64(shift)).astype(np.int64)
    dists = reuse_distances(lines)

    streams = {
        "read": dists[~is_write],
        "write": dists[is_write],
        "all": dists,
    }
    out: dict[str, float] = {}
    hists: dict[str, ReuseDistanceHistogram] = {}
    for stream in REUSE_STREAMS:
        hist = ReuseDistanceHistogram.from_distances(
            streams[stream], DATA_REUSE_BUCKETS
        )
        hists[stream] = hist
        cdf = hist.cdf()
        pdf = hist.pdf()
        for i in range(DATA_REUSE_BUCKETS):
            out[f"drd.{stream}.cdf_{i}"] = float(cdf[i])
            out[f"drd.{stream}.pdf_{i}"] = float(pdf[i])
        out[f"drd.{stream}.mean_log2"] = hist.mean_log2()
        out[f"drd.{stream}.median_log2"] = hist.median_log2()
    return out, hists


def instruction_reuse_features(
    trace: InstructionTrace,
    *,
    sample_limit: int = 200_000,
) -> dict[str, float]:
    """Instruction reuse-distance features over the static PC stream."""
    n = min(len(trace), sample_limit)
    pcs = trace.pc[:n].astype(np.int64)
    dists = reuse_distances(pcs)
    hist = ReuseDistanceHistogram.from_distances(dists, INSTR_REUSE_CDF_BUCKETS)
    cdf = hist.cdf()
    out: dict[str, float] = {}
    for i in range(INSTR_REUSE_CDF_BUCKETS):
        out[f"ird.cdf_{i}"] = float(cdf[i])
    pdf_hist = ReuseDistanceHistogram.from_distances(
        dists, INSTR_REUSE_PDF_BUCKETS
    )
    pdf = pdf_hist.pdf()
    for i in range(INSTR_REUSE_PDF_BUCKETS):
        out[f"ird.pdf_{i}"] = float(pdf[i])
    out["ird.mean_log2"] = hist.mean_log2()
    out["ird.median_log2"] = hist.median_log2()
    return out
