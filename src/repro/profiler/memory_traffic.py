"""Memory-traffic features (paper Table 1, "Memory traffic").

"Percentage of memory reads/writes that need to access memory" for a range
of cache sizes: derived analytically from the reuse-distance histograms — an
access escapes a fully-associative LRU cache of ``C`` lines iff its reuse
distance is ≥ ``C`` (cold accesses always escape).

For each cache size we report the read miss fraction, write miss fraction,
and the fraction of total accessed bytes that goes to memory.
"""

from __future__ import annotations

from ..ir import InstructionTrace
from .features import TRAFFIC_CACHE_SIZES
from .reuse_distance import ReuseDistanceHistogram


def memory_traffic_features(
    trace: InstructionTrace,
    hists: dict[str, ReuseDistanceHistogram],
    *,
    line_bytes: int = 64,
) -> dict[str, float]:
    """Traffic escape fractions at :data:`TRAFFIC_CACHE_SIZES` cache sizes."""
    out: dict[str, float] = {}
    read_hist = hists["read"]
    write_hist = hists["write"]
    all_hist = hists["all"]
    for size in TRAFFIC_CACHE_SIZES:
        capacity_lines = max(1, size // line_bytes)
        read_miss = _miss_with_cold(read_hist, capacity_lines)
        write_miss = _miss_with_cold(write_hist, capacity_lines)
        bytes_frac = _miss_with_cold(all_hist, capacity_lines)
        out[f"traffic.read_miss_{size}"] = read_miss
        out[f"traffic.write_miss_{size}"] = write_miss
        out[f"traffic.bytes_{size}"] = bytes_frac
    return out


def _miss_with_cold(hist: ReuseDistanceHistogram, capacity_lines: int) -> float:
    """Miss ratio including cold misses (they always go to memory)."""
    if hist.total == 0:
        return 0.0
    return hist.miss_ratio(capacity_lines)
