"""Working-set growth features.

The trace is split into :data:`~repro.profiler.features.WORKING_SET_CHECKPOINTS`
equal segments; after each segment we record the fraction of the kernel's
final data footprint (distinct cache lines) that has already been touched.
Streaming kernels grow their working set linearly; kernels with a small hot
set saturate early.  This curve is a compact signature of temporal phase
behaviour that complements the reuse-distance CDF.
"""

from __future__ import annotations

import numpy as np

from ..ir import InstructionTrace
from .features import WORKING_SET_CHECKPOINTS


def working_set_features(
    trace: InstructionTrace, *, line_bytes: int = 64
) -> dict[str, float]:
    names = [f"wset.frac_{i}" for i in range(WORKING_SET_CHECKPOINTS)]
    addrs, _sizes, _w = trace.memory_accesses()
    n = len(addrs)
    if n == 0:
        return {name: 0.0 for name in names}
    shift = np.uint64(line_bytes.bit_length() - 1)
    lines = (addrs >> shift).astype(np.int64)
    # First-touch positions of each distinct line.
    _unique, first_idx = np.unique(lines, return_index=True)
    total = len(first_idx)
    out: dict[str, float] = {}
    for i in range(WORKING_SET_CHECKPOINTS):
        cutoff = (i + 1) * n // WORKING_SET_CHECKPOINTS
        touched = int((first_idx < cutoff).sum())
        out[names[i]] = touched / total if total else 0.0
    return out
