"""Memory-footprint features (paper Table 1, "Memory footprint").

Total distinct memory touched by the kernel, at byte / cache-line / page
granularity, plus total read/write volume and the static-code footprint.
Footprints are reported in log2(1 + bytes) to keep the feature scale
comparable across datasets spanning orders of magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from ..ir import InstructionTrace


def _log_bytes(value: float) -> float:
    return math.log2(1.0 + value)


def footprint_features(
    trace: InstructionTrace,
    *,
    line_bytes: int = 64,
    page_bytes: int = 4096,
) -> dict[str, float]:
    addrs, sizes, is_write = trace.memory_accesses()
    if len(addrs) == 0:
        return {
            "footprint.data_bytes": 0.0,
            "footprint.data_lines": 0.0,
            "footprint.data_pages": 0.0,
            "footprint.instr_bytes": 0.0,
            "footprint.read_bytes": 0.0,
            "footprint.write_bytes": 0.0,
        }
    line_shift = np.uint64(line_bytes.bit_length() - 1)
    page_shift = np.uint64(page_bytes.bit_length() - 1)
    lines = np.unique(addrs >> line_shift)
    pages = np.unique(addrs >> page_shift)
    # Distinct bytes approximated from distinct lines weighted by the mean
    # access size (exact byte tracking would cost O(footprint) memory).
    mean_size = float(sizes.mean())
    data_bytes = len(lines) * min(float(line_bytes), max(1.0, mean_size) * 2)
    read_bytes = float(sizes[~is_write].sum())
    write_bytes = float(sizes[is_write].sum())
    # Static code footprint: one IR statement is ~4 bytes of "code".
    instr_bytes = 4.0 * len(np.unique(trace.pc))
    return {
        "footprint.data_bytes": _log_bytes(data_bytes),
        "footprint.data_lines": _log_bytes(float(len(lines))),
        "footprint.data_pages": _log_bytes(float(len(pages))),
        "footprint.instr_bytes": _log_bytes(instr_bytes),
        "footprint.read_bytes": _log_bytes(read_bytes),
        "footprint.write_bytes": _log_bytes(write_bytes),
    }
