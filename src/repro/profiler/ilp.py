"""Instruction-level parallelism on an ideal machine (paper Table 1, "ILP").

The ideal machine has infinite functional units and perfect register
renaming: only read-after-write dependencies (through registers and through
memory) constrain scheduling.  ILP is the number of instructions divided by
the dependence-DAG critical-path length.

Besides the classic infinite-window ILP, windowed variants (the machine may
only look ahead ``w`` instructions; approximated by scheduling consecutive
chunks of ``w`` instructions independently and serialising the chunks) and
per-class dependence-chain ILP (integer, floating-point, memory) are
reported, mirroring PISA's ILP sub-features.
"""

from __future__ import annotations

from ..ir import InstructionTrace, Opcode
from .features import ILP_WINDOWS

#: Default cap on the number of instructions analysed; ILP converges quickly
#: for loop-dominated kernels, and the cap keeps profiling fast.
DEFAULT_SAMPLE_LIMIT = 15_000

_INT_CODES = frozenset(
    int(op) for op in (Opcode.IALU, Opcode.IMUL, Opcode.IDIV, Opcode.CMP)
)
_FP_CODES = frozenset(
    int(op) for op in (Opcode.FALU, Opcode.FMUL, Opcode.FDIV, Opcode.FMA)
)
_MEM_CODES = frozenset(
    int(op) for op in (Opcode.LOAD, Opcode.STORE, Opcode.ATOMIC)
)
_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)
_ATOMIC = int(Opcode.ATOMIC)


def _chunk_depths(
    opcodes: list[int],
    dsts: list[int],
    src1s: list[int],
    src2s: list[int],
    lines: list[int],
    window: int | None,
) -> tuple[int, int, int, int]:
    """Total serialized DAG depth plus per-class chain depths.

    With ``window=None`` the whole stream is one chunk (infinite window).
    Returns (total_depth, int_chain, fp_chain, mem_chain).
    """
    n = len(opcodes)
    if n == 0:
        return 0, 0, 0, 0
    total_depth = 0
    int_chain = fp_chain = mem_chain = 0
    start = 0
    step = window if window else n
    while start < n:
        end = min(start + step, n)
        reg_level: dict[int, int] = {}
        store_level: dict[int, int] = {}
        # Per-class chain levels keyed by register.
        int_level: dict[int, int] = {}
        fp_level: dict[int, int] = {}
        depth = 0
        chunk_int = chunk_fp = chunk_mem = 0
        mem_serial = 0  # level of the last memory op chain within the chunk
        for i in range(start, end):
            op = opcodes[i]
            level = 0
            s1 = src1s[i]
            if s1 >= 0:
                level = reg_level.get(s1, 0)
            s2 = src2s[i]
            if s2 >= 0:
                l2 = reg_level.get(s2, 0)
                if l2 > level:
                    level = l2
            if op == _LOAD or op == _ATOMIC:
                line = lines[i]
                sl = store_level.get(line, 0)
                if sl > level:
                    level = sl
            level += 1
            if level > depth:
                depth = level
            d = dsts[i]
            if d >= 0:
                reg_level[d] = level
            if op == _STORE or op == _ATOMIC:
                store_level[lines[i]] = level
            # Per-class chains: an op extends the chain of its class if it
            # consumes a value produced by the same class.
            if op in _INT_CODES:
                cl = 0
                if s1 >= 0:
                    cl = int_level.get(s1, 0)
                if s2 >= 0:
                    cl = max(cl, int_level.get(s2, 0))
                cl += 1
                if d >= 0:
                    int_level[d] = cl
                if cl > chunk_int:
                    chunk_int = cl
            elif op in _FP_CODES:
                cl = 0
                if s1 >= 0:
                    cl = fp_level.get(s1, 0)
                if s2 >= 0:
                    cl = max(cl, fp_level.get(s2, 0))
                cl += 1
                if d >= 0:
                    fp_level[d] = cl
                if cl > chunk_fp:
                    chunk_fp = cl
            elif op in _MEM_CODES:
                # Memory chain: the deepest dependence level reached by a
                # memory op approximates the length of the address-dependence
                # chain feeding memory accesses (pointer chasing deepens it).
                if level > mem_serial:
                    mem_serial = level
        chunk_mem = min(depth, mem_serial)
        total_depth += depth
        int_chain += chunk_int
        fp_chain += chunk_fp
        mem_chain += chunk_mem
        start = end
    return total_depth, int_chain, fp_chain, mem_chain


def ilp_features(
    trace: InstructionTrace,
    *,
    sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    line_bytes: int = 64,
) -> dict[str, float]:
    """ILP feature family: total, windowed, and per-class chain ILP."""
    n = min(len(trace), sample_limit)
    out: dict[str, float] = {}
    if n == 0:
        out["ilp.total"] = 0.0
        for w in ILP_WINDOWS:
            out[f"ilp.window_{w}"] = 0.0
        out["ilp.int_chain"] = 0.0
        out["ilp.fp_chain"] = 0.0
        out["ilp.mem_chain"] = 0.0
        return out

    shift = line_bytes.bit_length() - 1
    opcodes = trace.opcode[:n].tolist()
    dsts = trace.dst[:n].tolist()
    src1s = trace.src1[:n].tolist()
    src2s = trace.src2[:n].tolist()
    lines = (trace.addr[:n] >> shift).tolist()

    depth, int_chain, fp_chain, mem_chain = _chunk_depths(
        opcodes, dsts, src1s, src2s, lines, window=None
    )
    out["ilp.total"] = n / depth if depth else 0.0

    n_int = sum(1 for op in opcodes if op in _INT_CODES)
    n_fp = sum(1 for op in opcodes if op in _FP_CODES)
    n_mem = sum(1 for op in opcodes if op in _MEM_CODES)
    out["ilp.int_chain"] = n_int / int_chain if int_chain else 0.0
    out["ilp.fp_chain"] = n_fp / fp_chain if fp_chain else 0.0
    out["ilp.mem_chain"] = n_mem / mem_chain if mem_chain else 0.0

    for w in ILP_WINDOWS:
        d, _, _, _ = _chunk_depths(opcodes, dsts, src1s, src2s, lines, window=w)
        out[f"ilp.window_{w}"] = n / d if d else 0.0
    return out
