"""Microarchitecture-independent kernel analysis (PISA analog).

This package is phase 1 of NAPEL training and prediction: it turns a dynamic
instruction trace into a fixed-length, hardware-independent application
profile ``p(k, d)`` of exactly :data:`~repro.profiler.features.TOTAL_FEATURES`
(= 395) features, matching the feature families of paper Table 1:

* instruction mix (category and per-opcode fractions),
* instruction-level parallelism on an ideal machine (full and windowed),
* data and instruction reuse-distance distributions,
* memory traffic that escapes caches of a range of sizes,
* register traffic,
* memory footprint,
* spatial locality / stride behaviour,
* branch behaviour and working-set growth.
"""

from .features import FEATURE_NAMES, TOTAL_FEATURES, feature_groups
from .profile import ApplicationProfile, analyze_trace
from .report import (
    FeatureDelta,
    compare_profiles,
    format_comparison,
    nearest_profiles,
    profile_distance,
)
from .ilp import ilp_features
from .instruction_mix import instruction_mix_features
from .reuse_distance import (
    ReuseDistanceHistogram,
    data_reuse_features,
    instruction_reuse_features,
    reuse_distances,
)
from .memory_traffic import memory_traffic_features
from .register_traffic import register_traffic_features
from .footprint import footprint_features
from .stride import stride_features
from .branching import branch_features
from .working_set import working_set_features

__all__ = [
    "ApplicationProfile",
    "analyze_trace",
    "compare_profiles",
    "profile_distance",
    "nearest_profiles",
    "format_comparison",
    "FeatureDelta",
    "FEATURE_NAMES",
    "TOTAL_FEATURES",
    "feature_groups",
    "ReuseDistanceHistogram",
    "reuse_distances",
    "data_reuse_features",
    "instruction_reuse_features",
    "ilp_features",
    "instruction_mix_features",
    "memory_traffic_features",
    "register_traffic_features",
    "footprint_features",
    "stride_features",
    "branch_features",
    "working_set_features",
]
