"""Profile comparison and reporting utilities.

NAPEL's whole premise is that the 395-feature profile separates workloads
that behave differently on NMC hardware.  :func:`compare_profiles` makes
that separation inspectable: which features differ most between two
kernels, in standardised units.  :func:`profile_distance` gives the
aggregate dissimilarity used to reason about training-set coverage (the
paper attributes its highest errors to "applications [that] exhibit quite
different characteristics compared to the other evaluated applications").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from .features import FEATURE_NAMES
from .profile import ApplicationProfile


@dataclass(frozen=True)
class FeatureDelta:
    """One feature's difference between two profiles."""

    name: str
    value_a: float
    value_b: float

    @property
    def delta(self) -> float:
        return self.value_b - self.value_a


def compare_profiles(
    a: ApplicationProfile,
    b: ApplicationProfile,
    *,
    top: int = 15,
) -> list[FeatureDelta]:
    """The ``top`` most different features between two profiles.

    Differences are ranked in normalised units (delta divided by the
    larger magnitude), so bounded fractions and wide-range log features
    rank comparably.
    """
    if top < 1:
        raise TraceError("top must be >= 1")
    scale = np.maximum(np.abs(a.values), np.abs(b.values))
    scale[scale == 0] = 1.0
    normalised = np.abs(b.values - a.values) / scale
    order = np.argsort(normalised)[::-1][:top]
    return [
        FeatureDelta(
            name=FEATURE_NAMES[i],
            value_a=float(a.values[i]),
            value_b=float(b.values[i]),
        )
        for i in order
    ]


def profile_distance(a: ApplicationProfile, b: ApplicationProfile) -> float:
    """Normalised L2 distance between two profiles (0 = identical).

    Every feature contributes at most 1 (same normalisation as
    :func:`compare_profiles`), so the distance is comparable across
    profile pairs.
    """
    scale = np.maximum(np.abs(a.values), np.abs(b.values))
    scale[scale == 0] = 1.0
    normalised = (b.values - a.values) / scale
    return float(np.linalg.norm(normalised) / np.sqrt(len(normalised)))


def nearest_profiles(
    target: ApplicationProfile,
    candidates: dict[str, ApplicationProfile],
) -> list[tuple[str, float]]:
    """Candidates sorted by distance to ``target`` (closest first).

    A prediction for a profile whose nearest training neighbours are far
    away is an extrapolation — the situation behind the paper's worst
    per-application errors.
    """
    if not candidates:
        raise TraceError("nearest_profiles needs at least one candidate")
    pairs = [
        (name, profile_distance(target, p)) for name, p in candidates.items()
    ]
    pairs.sort(key=lambda kv: kv[1])
    return pairs


def format_comparison(
    a: ApplicationProfile,
    b: ApplicationProfile,
    *,
    label_a: str = "A",
    label_b: str = "B",
    top: int = 12,
) -> str:
    """Plain-text rendering of :func:`compare_profiles`."""
    from ..core.reporting import format_table

    deltas = compare_profiles(a, b, top=top)
    rows = [
        [d.name, f"{d.value_a:.4g}", f"{d.value_b:.4g}", f"{d.delta:+.4g}"]
        for d in deltas
    ]
    distance = profile_distance(a, b)
    return format_table(
        ["feature", label_a, label_b, "delta"],
        rows,
        title=(
            f"most different features: {label_a} vs {label_b} "
            f"(distance {distance:.3f})"
        ),
    )
