"""The application-profile feature catalog.

The paper's PISA-based analysis produces an application profile with **395
features** ("the application profile p has 395 features", Section 2.3).  This
module pins down our catalog: feature family sizes, canonical names and
ordering.  The total is asserted to be exactly 395 at import time so the
profile layout can never silently drift.

Distance-style features are bucketed at power-of-two boundaries; see the
individual analysis modules for semantics.
"""

from __future__ import annotations

from collections import OrderedDict

from ..schema import register_block

#: Instruction-mix category fractions (see instruction_mix.py).
MIX_CATEGORIES = (
    "int_alu", "int_mul", "int_div",
    "fp_alu", "fp_mul", "fp_div", "fma",
    "load", "store", "atomic",
    "branch", "cmp", "move", "call_ret", "nop",
    "int_all", "fp_all", "mem_all", "control_all",
)

#: Per-opcode fractions, one per Opcode value (16 opcodes).
N_OPCODES = 16

#: ILP features: total + 6 window sizes + 3 per-class chain depths.
ILP_WINDOWS = (8, 16, 32, 64, 128, 256)
ILP_NAMES = (
    ("ilp.total",)
    + tuple(f"ilp.window_{w}" for w in ILP_WINDOWS)
    + ("ilp.int_chain", "ilp.fp_chain", "ilp.mem_chain")
)

#: Reuse-distance bucket thresholds (in cache lines / instructions): 2^0..2^31.
DATA_REUSE_BUCKETS = 32
INSTR_REUSE_CDF_BUCKETS = 32
INSTR_REUSE_PDF_BUCKETS = 24
REUSE_STREAMS = ("read", "write", "all")

#: Cache sizes for memory-traffic features: 128 B .. 64 MiB (20 sizes).
TRAFFIC_CACHE_SIZES = tuple(128 << i for i in range(20))

REGISTER_NAMES = (
    "reg.reads_per_instr",
    "reg.writes_per_instr",
    "reg.operands_per_instr",
    "reg.unique_registers",
)

FOOTPRINT_NAMES = (
    "footprint.data_bytes",
    "footprint.data_lines",
    "footprint.data_pages",
    "footprint.instr_bytes",
    "footprint.read_bytes",
    "footprint.write_bytes",
)

STRIDE_BUCKETS = (0, 1, 2, 4, 8, 16, 64, 256)  # strides in elements of 8 B
STRIDE_NAMES = (
    tuple(f"stride.frac_le_{s}" for s in STRIDE_BUCKETS)
    + ("stride.regular_read", "stride.regular_write",
       "stride.dominant_frac", "stride.entropy")
)

BRANCH_NAMES = (
    "branch.density",
    "branch.avg_basic_block",
    "branch.unique_branch_sites",
    "branch.per_memory_op",
)

WORKING_SET_CHECKPOINTS = 8  # footprint growth measured at 8 trace fractions


def feature_groups() -> "OrderedDict[str, tuple[str, ...]]":
    """The full catalog: group name -> ordered feature names."""
    groups: "OrderedDict[str, tuple[str, ...]]" = OrderedDict()
    groups["mix"] = tuple(f"mix.{c}" for c in MIX_CATEGORIES)
    groups["opcode_mix"] = tuple(f"opcode.{i}" for i in range(N_OPCODES))
    groups["ilp"] = ILP_NAMES
    for stream in REUSE_STREAMS:
        groups[f"data_reuse_cdf_{stream}"] = tuple(
            f"drd.{stream}.cdf_{i}" for i in range(DATA_REUSE_BUCKETS)
        )
    for stream in REUSE_STREAMS:
        groups[f"data_reuse_pdf_{stream}"] = tuple(
            f"drd.{stream}.pdf_{i}" for i in range(DATA_REUSE_BUCKETS)
        )
    groups["data_reuse_stats"] = tuple(
        f"drd.{stream}.{stat}"
        for stream in REUSE_STREAMS
        for stat in ("mean_log2", "median_log2")
    )
    groups["instr_reuse_cdf"] = tuple(
        f"ird.cdf_{i}" for i in range(INSTR_REUSE_CDF_BUCKETS)
    )
    groups["instr_reuse_pdf"] = tuple(
        f"ird.pdf_{i}" for i in range(INSTR_REUSE_PDF_BUCKETS)
    )
    groups["instr_reuse_stats"] = ("ird.mean_log2", "ird.median_log2")
    groups["traffic"] = tuple(
        f"traffic.{kind}_{size}"
        for size in TRAFFIC_CACHE_SIZES
        for kind in ("read_miss", "write_miss", "bytes")
    )
    groups["register"] = REGISTER_NAMES
    groups["footprint"] = FOOTPRINT_NAMES
    groups["stride"] = STRIDE_NAMES
    groups["branch"] = BRANCH_NAMES
    groups["working_set"] = tuple(
        f"wset.frac_{i}" for i in range(WORKING_SET_CHECKPOINTS)
    )
    return groups


#: Flat, order-stable list of all profile feature names.
FEATURE_NAMES: tuple[str, ...] = tuple(
    name for names in feature_groups().values() for name in names
)

#: Total number of application-profile features; the paper reports 395.
TOTAL_FEATURES: int = len(FEATURE_NAMES)

assert TOTAL_FEATURES == 395, (
    f"feature catalog drifted: {TOTAL_FEATURES} != 395"
)

# This catalog is the "profile" block of the model-input feature schema
# (see repro.schema): the schema, not ad-hoc concatenation, defines where
# these columns sit in the assembled matrix.
register_block(
    "profile",
    FEATURE_NAMES,
    description="395 PISA-style hardware-independent profile features",
)
