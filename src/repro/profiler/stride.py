"""Spatial-locality / stride features.

For every memory instruction we compute the byte stride with respect to the
previous dynamic access *of the same static instruction* (same PC) — the
classic per-PC stride stream a hardware stride prefetcher observes.  The
feature family captures how regular (prefetchable) the access pattern is,
which is the key differentiator between host-friendly streaming kernels and
NMC-friendly irregular kernels (paper Section 3.4).
"""

from __future__ import annotations

import numpy as np

from ..ir import InstructionTrace, Opcode
from .features import STRIDE_BUCKETS

#: Element size used to express stride buckets (8-byte doubles).
ELEMENT_BYTES = 8


def stride_features(trace: InstructionTrace) -> dict[str, float]:
    names = (
        [f"stride.frac_le_{s}" for s in STRIDE_BUCKETS]
        + ["stride.regular_read", "stride.regular_write",
           "stride.dominant_frac", "stride.entropy"]
    )
    mask = trace.memory_mask
    addrs = trace.addr[mask].astype(np.int64)
    pcs = trace.pc[mask].astype(np.int64)
    opcodes = trace.opcode[mask]
    n = len(addrs)
    if n == 0:
        return {name: 0.0 for name in names}

    # Group accesses by PC (stable order keeps per-PC streams in time order).
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_addrs = addrs[order]
    same_pc = np.empty(n, dtype=bool)
    same_pc[0] = False
    same_pc[1:] = sorted_pcs[1:] == sorted_pcs[:-1]
    strides = np.zeros(n, dtype=np.int64)
    strides[1:] = sorted_addrs[1:] - sorted_addrs[:-1]
    strides[~same_pc] = np.iinfo(np.int64).max  # first access of each PC
    valid = same_pc
    abs_strides = np.abs(strides[valid])

    out: dict[str, float] = {}
    n_valid = int(valid.sum())
    for s in STRIDE_BUCKETS:
        if n_valid == 0:
            out[f"stride.frac_le_{s}"] = 0.0
        else:
            out[f"stride.frac_le_{s}"] = float(
                (abs_strides <= s * ELEMENT_BYTES).sum() / n_valid
            )

    # Predictability: stride equals the previous stride of the same PC.
    predictable = np.zeros(n, dtype=bool)
    both = valid.copy()
    both[1:] &= valid[:-1]
    predictable[1:][both[1:]] = (
        strides[1:][both[1:]] == strides[:-1][both[1:]]
    )
    is_write_sorted = (
        (opcodes[order] == int(Opcode.STORE))
        | (opcodes[order] == int(Opcode.ATOMIC))
    )
    reads = ~is_write_sorted
    writes = is_write_sorted
    out["stride.regular_read"] = _fraction(predictable & reads, valid & reads)
    out["stride.regular_write"] = _fraction(predictable & writes, valid & writes)

    if n_valid:
        values, counts = np.unique(abs_strides, return_counts=True)
        out["stride.dominant_frac"] = float(counts.max() / n_valid)
        probs = counts / n_valid
        out["stride.entropy"] = float(-(probs * np.log2(probs)).sum())
    else:
        out["stride.dominant_frac"] = 0.0
        out["stride.entropy"] = 0.0
    return out


def _fraction(numer_mask: np.ndarray, denom_mask: np.ndarray) -> float:
    denom = int(denom_mask.sum())
    if denom == 0:
        return 0.0
    return float(numer_mask.sum() / denom)
