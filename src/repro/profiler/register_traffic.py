"""Register-traffic features (paper Table 1, "Register traffic").

Average number of register operands read/written per instruction, plus the
number of distinct virtual registers the kernel uses.
"""

from __future__ import annotations

import numpy as np

from ..ir import NO_REG, InstructionTrace


def register_traffic_features(trace: InstructionTrace) -> dict[str, float]:
    n = len(trace)
    if n == 0:
        return {
            "reg.reads_per_instr": 0.0,
            "reg.writes_per_instr": 0.0,
            "reg.operands_per_instr": 0.0,
            "reg.unique_registers": 0.0,
        }
    reads = int((trace.src1 != NO_REG).sum()) + int((trace.src2 != NO_REG).sum())
    writes = int((trace.dst != NO_REG).sum())
    regs = np.concatenate([trace.dst, trace.src1, trace.src2])
    unique = len(np.unique(regs[regs != NO_REG]))
    return {
        "reg.reads_per_instr": reads / n,
        "reg.writes_per_instr": writes / n,
        "reg.operands_per_instr": (reads + writes) / n,
        "reg.unique_registers": float(unique),
    }
