"""Branch-behaviour features.

Control-flow statistics: branch density, mean basic-block length, number of
distinct static branch sites, and branches per memory operation.
"""

from __future__ import annotations

import math

import numpy as np

from ..ir import CONTROL_OPCODES, InstructionTrace


def branch_features(trace: InstructionTrace) -> dict[str, float]:
    n = len(trace)
    if n == 0:
        return {
            "branch.density": 0.0,
            "branch.avg_basic_block": 0.0,
            "branch.unique_branch_sites": 0.0,
            "branch.per_memory_op": 0.0,
        }
    control_codes = np.array(sorted(int(op) for op in CONTROL_OPCODES), dtype=np.uint8)
    is_control = np.isin(trace.opcode, control_codes)
    n_control = int(is_control.sum())
    mem_ops = trace.memory_op_count
    unique_sites = len(np.unique(trace.pc[is_control])) if n_control else 0
    return {
        "branch.density": n_control / n,
        "branch.avg_basic_block": n / n_control if n_control else float(n),
        "branch.unique_branch_sites": math.log2(1.0 + unique_sites),
        "branch.per_memory_op": n_control / mem_ops if mem_ops else 0.0,
    }
