"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints each experiment in the same row/series layout
the paper reports, via these formatters.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_grouped_bars(
    title: str,
    series: dict[str, dict[str, float]],
    *,
    width: int = 40,
    marker_at: float | None = None,
) -> str:
    """Side-by-side horizontal bars for several series (paper-style
    grouped bar charts, e.g. Figure 7's "Actual" vs "NAPEL" pairs).

    ``series`` maps series name -> {category: value}.  A vertical marker
    (e.g. the EDP break-even line at 1.0) can be drawn with ``marker_at``.
    """
    if not series:
        return f"{title}: (empty)"
    categories: list[str] = []
    for values in series.values():
        for key in values:
            if key not in categories:
                categories.append(key)
    peak = max(
        (abs(v) for values in series.values() for v in values.values()),
        default=1.0,
    ) or 1.0
    glyphs = "#=%o*+"
    lines = [title]
    for cat in categories:
        label_pending = True
        for i, (name, values) in enumerate(series.items()):
            value = values.get(cat)
            if value is None:
                continue
            n = int(round(min(abs(value) / peak, 1.0) * width))
            bar = list(f"{glyphs[i % len(glyphs)] * n:<{width}}")
            if marker_at is not None and 0 <= marker_at <= peak:
                pos = int(round(marker_at / peak * width))
                if 0 <= pos < width:
                    bar[pos] = "|"
            label = cat if label_pending else ""
            label_pending = False
            lines.append(
                f"  {label:>6s} {name[:7]:>7s} |{''.join(bar)}| {value:.3g}"
            )
    legend = ", ".join(
        f"{glyphs[i % len(glyphs)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def format_bar_series(
    label: str,
    values: dict[str, float],
    *,
    unit: str = "",
    bar_scale: float | None = None,
    width: int = 40,
) -> str:
    """A labelled horizontal bar chart (one bar per key), for figures."""
    if not values:
        return f"{label}: (empty)"
    peak = bar_scale or max(abs(v) for v in values.values()) or 1.0
    lines = [label]
    for key, value in values.items():
        n = int(round(min(abs(value) / peak, 1.0) * width))
        lines.append(f"  {key:>6s} |{'#' * n:<{width}s}| {value:.3g}{unit}")
    return "\n".join(lines)
