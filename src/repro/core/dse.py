"""Design-space exploration driver (the paper's motivating use case).

The paper's goal is "fast early-stage design space exploration of NMC
architectures" (Section 1).  This module is the loop an architect actually
runs on top of a trained NAPEL model:

* :func:`grid_space` / :func:`random_space` enumerate candidate
  architectures from per-knob value lists;
* :func:`explore` predicts every candidate in one batched model pass
  (milliseconds per design, vs. a simulation each);
* :func:`pareto_front` extracts the time/energy Pareto-optimal designs —
  the output an architect takes to the next design iteration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..config import NMCConfig, default_nmc_config
from ..errors import MLError
from ..profiler import ApplicationProfile
from ..schema import active_schema
from .predictor import NapelModel, NapelPrediction
from .reporting import format_table


@dataclass(frozen=True)
class DesignPoint:
    """One explored architecture with its prediction."""

    changes: dict
    arch: NMCConfig
    prediction: NapelPrediction

    @property
    def time_s(self) -> float:
        return self.prediction.time_s

    @property
    def energy_j(self) -> float:
        return self.prediction.energy_j

    @property
    def edp(self) -> float:
        return self.prediction.edp


def grid_space(
    knobs: Mapping[str, Sequence],
    *,
    base: NMCConfig | None = None,
) -> list[NMCConfig]:
    """Every combination of the given architecture knob values.

    ``knobs`` maps :class:`~repro.config.NMCConfig` field names to value
    lists, e.g. ``{"n_pes": [16, 32], "frequency_ghz": [1.0, 1.25]}``.
    The memory backend is a knob like any other: ``{"backend": ["hmc",
    "hbm2"]}`` sweeps device families (``NMCConfig.replace`` re-bases
    device fields on the named backend's descriptor, carrying the PE
    knobs over).  Every produced configuration is validated.
    """
    if not knobs:
        raise MLError("grid_space needs at least one knob")
    base = base or default_nmc_config()
    names = list(knobs)
    out = []
    for values in itertools.product(*(knobs[name] for name in names)):
        out.append(base.replace(**dict(zip(names, values))))
    return out


def random_space(
    knobs: Mapping[str, Sequence],
    n: int,
    rng: np.random.Generator,
    *,
    base: NMCConfig | None = None,
) -> list[NMCConfig]:
    """``n`` random combinations of the knob values (with replacement)."""
    if n < 1:
        raise MLError("random_space needs n >= 1")
    base = base or default_nmc_config()
    names = list(knobs)
    out = []
    for _ in range(n):
        choice = {
            name: knobs[name][int(rng.integers(0, len(knobs[name])))]
            for name in names
        }
        out.append(base.replace(**choice))
    return out


def explore(
    model: NapelModel,
    profile: ApplicationProfile,
    archs: Sequence[NMCConfig],
) -> list[DesignPoint]:
    """Predict one kernel profile across all candidate architectures.

    One batched forest evaluation per target: the whole sweep costs
    milliseconds regardless of its size.
    """
    if not archs:
        raise MLError("explore needs at least one architecture")
    X = np.vstack([model.features(profile, a) for a in archs])
    ipc_per_pe, epi = model.predict_labels(X, schema=active_schema())
    points = []
    base_fields = default_nmc_config()
    for arch, ipc_pe, epi_v in zip(archs, ipc_per_pe, epi):
        pes = min(max(1, profile.thread_count), arch.n_pes)
        ipc = float(ipc_pe) * pes
        freq_hz = arch.frequency_ghz * 1e9
        time_s = profile.instruction_count / (ipc * freq_hz)
        prediction = NapelPrediction(
            workload=profile.workload,
            ipc=ipc,
            ipc_per_pe=float(ipc_pe),
            energy_per_instruction_j=float(epi_v),
            instructions=profile.instruction_count,
            pes_used=pes,
            time_s=time_s,
            energy_j=float(epi_v) * profile.instruction_count,
        )
        changes = {
            name: getattr(arch, name)
            for name in (
                "backend", "n_pes", "frequency_ghz", "l1_lines",
                "n_vaults", "pe_type", "issue_width", "mshr_entries",
            )
            if getattr(arch, name) != getattr(base_fields, name)
        }
        points.append(DesignPoint(changes=changes, arch=arch, prediction=prediction))
    return points


def pareto_front(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """The time/energy Pareto-optimal designs, sorted by time.

    A design is on the front iff no other design is at least as good on
    both objectives and strictly better on one.
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (p.time_s, p.energy_j))
    front: list[DesignPoint] = []
    best_energy = float("inf")
    for p in ordered:
        if p.energy_j < best_energy - 1e-18:
            front.append(p)
            best_energy = p.energy_j
    return front


def format_exploration(
    points: Sequence[DesignPoint], *, top: int = 15
) -> str:
    """Table of the best designs by EDP, Pareto members flagged."""
    front = {id(p) for p in pareto_front(points)}
    ranked = sorted(points, key=lambda p: p.edp)[:top]
    rows = [
        [
            ", ".join(f"{k}={v}" for k, v in p.changes.items()) or "(base)",
            f"{p.prediction.ipc:7.3f}",
            f"{p.time_s * 1e6:9.2f}",
            f"{p.energy_j * 1e3:9.4f}",
            f"{p.edp:.3e}",
            "*" if id(p) in front else "",
        ]
        for p in ranked
    ]
    return format_table(
        ["design", "IPC", "time (us)", "energy (mJ)", "EDP (J*s)", "Pareto"],
        rows,
        title=f"design-space exploration: top {len(rows)} of "
              f"{len(points)} designs (best EDP first)",
    )
