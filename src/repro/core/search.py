"""Genetic-algorithm design search over NMC architectures.

Mariani et al. [25] — the work the paper builds its DoE+RF methodology on —
pair the trained random forest with a *genetic algorithm* so the model, not
the simulator, evaluates every candidate during search.  This module is
that combination for NMC design spaces: tournament selection, uniform
crossover and per-knob mutation over architecture configurations, with the
NAPEL model's predicted EDP (or time, or energy) as the fitness.

Because one fitness evaluation is a model lookup (~milliseconds), the GA
explores thousands of designs in seconds — the end-to-end "fast early-stage
design space exploration" the paper's introduction promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..config import NMCConfig, default_nmc_config
from ..errors import MLError
from ..profiler import ApplicationProfile
from .dse import DesignPoint, explore
from .predictor import NapelModel

#: Fitness extractors (lower is better).
OBJECTIVES: dict[str, Callable[[DesignPoint], float]] = {
    "edp": lambda p: p.edp,
    "time": lambda p: p.time_s,
    "energy": lambda p: p.energy_j,
}


@dataclass
class SearchResult:
    """Outcome of a GA run."""

    best: DesignPoint
    objective: str
    generations: int
    evaluations: int
    history: list[float] = field(default_factory=list)  #: best per generation

    @property
    def converged(self) -> bool:
        """True when the last generations stopped improving."""
        if len(self.history) < 3:
            return False
        return abs(self.history[-1] - self.history[-3]) <= 1e-12


def _random_genome(
    knobs: Mapping[str, Sequence], rng: np.random.Generator
) -> dict:
    return {
        name: values[int(rng.integers(0, len(values)))]
        for name, values in knobs.items()
    }


def _crossover(a: dict, b: dict, rng: np.random.Generator) -> dict:
    return {
        name: (a if rng.random() < 0.5 else b)[name] for name in a
    }


def _mutate(
    genome: dict,
    knobs: Mapping[str, Sequence],
    rng: np.random.Generator,
    rate: float,
) -> dict:
    out = dict(genome)
    for name, values in knobs.items():
        if rng.random() < rate:
            out[name] = values[int(rng.integers(0, len(values)))]
    return out


def genetic_search(
    model: NapelModel,
    profile: ApplicationProfile,
    knobs: Mapping[str, Sequence],
    *,
    objective: str = "edp",
    population: int = 24,
    generations: int = 12,
    mutation_rate: float = 0.15,
    elite: int = 2,
    base: NMCConfig | None = None,
    random_state: int | None = None,
) -> SearchResult:
    """Search the knob space for the design minimising ``objective``.

    ``knobs`` maps :class:`~repro.config.NMCConfig` field names to candidate
    value lists (the GA's gene alphabet).  Returns the best design found,
    with the per-generation best-fitness history for convergence plots.
    """
    if not knobs:
        raise MLError("genetic_search needs at least one knob")
    if objective not in OBJECTIVES:
        raise MLError(
            f"unknown objective {objective!r}; pick from {sorted(OBJECTIVES)}"
        )
    if population < 4:
        raise MLError("population must be >= 4")
    if elite >= population:
        raise MLError("elite must be smaller than the population")
    fitness_of = OBJECTIVES[objective]
    base = base or default_nmc_config()
    rng = np.random.default_rng(random_state)

    def evaluate(genomes: list[dict]) -> list[DesignPoint]:
        archs = [base.replace(**g) for g in genomes]
        return explore(model, profile, archs)

    genomes = [_random_genome(knobs, rng) for _ in range(population)]
    points = evaluate(genomes)
    evaluations = len(points)
    history: list[float] = []
    best_point = min(points, key=fitness_of)

    for _gen in range(generations):
        ranked = sorted(zip(genomes, points), key=lambda gp: fitness_of(gp[1]))
        if fitness_of(ranked[0][1]) < fitness_of(best_point):
            best_point = ranked[0][1]
        history.append(fitness_of(best_point))

        # Elitism + tournament selection.
        next_genomes = [dict(g) for g, _ in ranked[:elite]]
        while len(next_genomes) < population:
            def tournament() -> dict:
                i, j = rng.integers(0, population, size=2)
                gi, pi = ranked[int(i)]
                gj, pj = ranked[int(j)]
                return gi if fitness_of(pi) <= fitness_of(pj) else gj

            child = _crossover(tournament(), tournament(), rng)
            child = _mutate(child, knobs, rng, mutation_rate)
            next_genomes.append(child)
        genomes = next_genomes
        points = evaluate(genomes)
        evaluations += len(points)

    final_best = min(points, key=fitness_of)
    if fitness_of(final_best) < fitness_of(best_point):
        best_point = final_best
    history.append(fitness_of(best_point))
    return SearchResult(
        best=best_point,
        objective=objective,
        generations=generations,
        evaluations=evaluations,
        history=history,
    )
