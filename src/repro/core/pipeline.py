"""NAPEL training (paper phase 3): tuned random forests for IPC and energy.

:class:`NapelTrainer` fits one :class:`~repro.ml.RandomForestRegressor` per
target (IPC, energy-per-instruction) on a training set, with grid-search
hyper-parameter tuning scored by out-of-bag error — the cheap, statistically
sound internal validation for bagged ensembles (the paper's "as many
iterations of the cross-validation process as hyper-parameter
combinations").

Alternative learners (the ANN of Ipek et al. and the linear model tree of
Guo et al., used in Figure 5) can be trained through the same interface by
passing ``model="ann"`` / ``model="tree"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import MLError
from ..obs import get_logger, metrics, tracer
from ..parallel import resolve_jobs
from ..ml import (
    KFold,
    MLPRegressor,
    ModelTree,
    RandomForestRegressor,
    grid_search,
)
from .dataset import TrainingSet
from .predictor import NapelModel

log = get_logger("repro.ml")

#: Default hyper-parameter grid for the random forest (paper: tuning).
DEFAULT_RF_GRID: dict = {
    "max_features": ["sqrt", "third"],
    "min_samples_leaf": [1, 2],
}

#: Small grids for the baselines keep Figure 5 benchmark time sane.
DEFAULT_ANN_GRID: dict = {"hidden_layers": [(64, 32), (32, 16)]}
DEFAULT_TREE_GRID: dict = {"max_depth": [2, 3]}

MODEL_NAMES = ("rf", "ann", "tree")


@dataclass
class TrainedNapel:
    """A trained NAPEL model plus training metadata (Table 4 columns).

    ``stage_seconds`` breaks ``train_tune_seconds`` down by stage
    (``fit_ipc`` / ``fit_energy`` wall-clock) and ``jobs`` records the
    worker count the training ran with, so benchmarks can report
    parallel speedup per stage.
    """

    model: NapelModel
    model_name: str
    train_tune_seconds: float
    ipc_tuning: object | None = None
    energy_tuning: object | None = None
    n_training_rows: int = 0
    stage_seconds: dict = field(default_factory=dict)
    jobs: int = 1


class NapelTrainer:
    """Trains NAPEL (or a Figure 5 baseline) from a training set."""

    def __init__(
        self,
        *,
        model: str = "rf",
        n_estimators: int = 60,
        grid: Mapping[str, Sequence] | None = None,
        tune: bool = True,
        log_space: bool = True,
        residual_to_prior: bool = True,
        random_state: int = 0,
        jobs: int | None = None,
    ) -> None:
        if model not in MODEL_NAMES:
            raise MLError(f"unknown model {model!r}; pick from {MODEL_NAMES}")
        self.model = model
        self.n_estimators = n_estimators
        self.tune = tune
        self.log_space = log_space
        self.residual_to_prior = residual_to_prior
        self.random_state = random_state
        #: Worker processes for tuning and forest fitting (1 = serial,
        #: 0 = all CPUs, None = honour ``REPRO_JOBS``); parallel training
        #: produces bit-identical models (see :mod:`repro.parallel`).
        self.jobs = resolve_jobs(jobs)
        if grid is not None:
            self.grid = dict(grid)
        elif model == "rf":
            self.grid = dict(DEFAULT_RF_GRID)
        elif model == "ann":
            self.grid = dict(DEFAULT_ANN_GRID)
        else:
            self.grid = dict(DEFAULT_TREE_GRID)

    # ------------------------------------------------------------ pieces

    def _base_model(self):
        if self.model == "rf":
            return RandomForestRegressor(
                n_estimators=self.n_estimators,
                random_state=self.random_state,
                jobs=self.jobs,
            )
        if self.model == "ann":
            return MLPRegressor(random_state=self.random_state)
        return ModelTree(random_state=self.random_state)

    def _transform_targets(self, y: np.ndarray) -> np.ndarray:
        if not self.log_space:
            return y
        if (y <= 0).any():
            raise MLError("log-space training requires positive targets")
        return np.log(y)

    def _fit_target(self, X: np.ndarray, y: np.ndarray):
        """Fit (and optionally tune) one pre-transformed target."""
        base = self._base_model()
        if not self.tune:
            base.fit(X, y)
            return base, None
        if self.model == "rf":
            result = grid_search(
                base, self.grid, X, y, use_oob=True, jobs=self.jobs
            )
        else:
            cv = KFold(
                n_splits=min(3, max(2, len(y) // 4)),
                random_state=self.random_state,
            )
            result = grid_search(base, self.grid, X, y, cv=cv, jobs=self.jobs)
        return result.best_model, result

    # -------------------------------------------------------------- main

    def train(self, training_set: TrainingSet) -> TrainedNapel:
        """Train IPC and energy models (paper phase 3, "Train+Tune")."""
        if len(training_set) < 4:
            raise MLError("training needs at least a handful of rows")
        X = training_set.X()
        y_ipc = self._transform_targets(training_set.y_ipc_per_pe())
        y_epi = self._transform_targets(
            training_set.y_energy_per_instruction()
        )
        residual = self.residual_to_prior and self.log_space
        if residual:
            ipc_off, epi_off = NapelModel.prior_offsets(
                X, training_set.schema
            )
            y_ipc = y_ipc - ipc_off
            y_epi = y_epi - epi_off
        log.info(
            "training start",
            extra={"ctx": {
                "model": self.model,
                "rows": len(training_set),
                "tune": self.tune,
                "jobs": self.jobs,
            }},
        )
        start = time.perf_counter()
        with metrics().timer("phase.train"):
            with tracer().span("ml.fit_ipc", model=self.model):
                ipc_model, ipc_tuning = self._fit_target(X, y_ipc)
            ipc_seconds = time.perf_counter() - start
            with tracer().span("ml.fit_energy", model=self.model):
                energy_model, energy_tuning = self._fit_target(X, y_epi)
        elapsed = time.perf_counter() - start
        metrics().inc("ml.models.trained")
        stage_seconds = {
            "fit_ipc": ipc_seconds,
            "fit_energy": elapsed - ipc_seconds,
        }
        log.info(
            "training done",
            extra={"ctx": {
                "model": self.model,
                "seconds": round(elapsed, 3),
                "fit_ipc_s": round(ipc_seconds, 3),
                "fit_energy_s": round(elapsed - ipc_seconds, 3),
            }},
        )
        model = NapelModel(
            ipc_model,
            energy_model,
            schema=training_set.schema,
            log_space=self.log_space,
            residual_to_prior=residual,
            ipc_bounds=(float(y_ipc.min()), float(y_ipc.max())),
            energy_bounds=(float(y_epi.min()), float(y_epi.max())),
        )
        return TrainedNapel(
            model=model,
            model_name=self.model,
            train_tune_seconds=elapsed,
            ipc_tuning=ipc_tuning,
            energy_tuning=energy_tuning,
            n_training_rows=len(training_set),
            stage_seconds=stage_seconds,
            jobs=self.jobs,
        )
