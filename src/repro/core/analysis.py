"""Model and profile analysis utilities.

What drives NAPEL's predictions?  This module ties the forests' feature
importances (impurity-based and permutation-based) back to the named
feature catalog, renders human-readable profile summaries, and provides
the architecture-comparison helper the design-space-exploration flow uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import NMCConfig
from ..errors import MLError
from ..ml import permutation_importance
from ..profiler import ApplicationProfile
from ..schema import FeatureSchema, active_schema
from .dataset import TrainingSet
from .predictor import NapelModel, NapelPrediction
from .reporting import format_table


def top_features(
    model, k: int = 15, *, schema: FeatureSchema | None = None
) -> list[tuple[str, float]]:
    """The ``k`` most important named features of a fitted forest.

    ``model`` must expose ``feature_importances_`` aligned with
    ``schema`` (default: the active runtime schema — pass the model's
    own training schema when it differs).
    """
    importances = getattr(model, "feature_importances_", None)
    if importances is None:
        raise MLError("model has no feature_importances_ (not a forest?)")
    schema = schema if schema is not None else active_schema()
    if len(importances) != len(schema):
        raise MLError(
            f"importances have {len(importances)} entries, expected "
            f"{len(schema)} (schema {schema.content_hash[:12]})"
        )
    order = np.argsort(importances)[::-1][:k]
    return [(schema.names[i], float(importances[i])) for i in order]


def importance_report(
    napel: NapelModel,
    training: TrainingSet,
    *,
    k: int = 12,
    permutation: bool = False,
    random_state: int = 0,
) -> str:
    """A table of the most important features per target.

    With ``permutation=True`` importances are recomputed model-agnostically
    by shuffling columns (slower, unbiased); by default the forests'
    impurity importances are reported.
    """
    rows = []
    X = training.X()
    schema = napel.schema
    for target, model, y in (
        ("IPC", napel.ipc_model, np.log(training.y_ipc_per_pe())),
        ("energy", napel.energy_model,
         np.log(training.y_energy_per_instruction())),
    ):
        if permutation:
            pi = permutation_importance(
                model, X.copy(), model.predict(X),
                n_repeats=3, random_state=random_state,
            )
            pairs = pi.top(schema, k)
        else:
            pairs = top_features(model, k, schema=schema)
        for i, (name, value) in enumerate(pairs):
            rows.append([target if i == 0 else "", i + 1, name, f"{value:.4g}"])
    return format_table(
        ["target", "rank", "feature", "importance"],
        rows,
        title="most informative model inputs",
    )


def profile_summary(profile: ApplicationProfile) -> str:
    """A compact human-readable characterisation of a kernel profile."""
    mem = profile["mix.mem_all"]
    regular = profile["stride.regular_read"]
    small_stride = profile["stride.frac_le_4"]
    escape_1m = profile["traffic.bytes_1048576"]
    rows = [
        ["instructions", f"{profile.instruction_count:,}"],
        ["threads", profile.thread_count],
        ["memory intensity", f"{mem:.1%} of instructions"],
        ["FP share", f"{profile['mix.fp_all']:.1%}"],
        ["ideal-machine ILP", f"{profile['ilp.total']:.2f}"],
        ["stride-predictable reads", f"{regular:.1%}"],
        ["small-stride (<=32 B) accesses", f"{small_stride:.1%}"],
        ["escapes a 1 MiB cache", f"{escape_1m:.1%} of accesses"],
        ["data footprint (log2 lines)", f"{profile['footprint.data_lines']:.1f}"],
    ]
    verdict = (
        "irregular / memory-bound (NMC-leaning)"
        if small_stride < 0.5 and escape_1m > 0.2
        else "regular / locality-friendly (host-leaning)"
    )
    rows.append(["first-order characterisation", verdict])
    title = f"profile summary: {profile.workload or '(unnamed kernel)'}"
    return format_table(["property", "value"], rows, title=title)


@dataclass(frozen=True)
class ArchComparison:
    """One row of an architecture-sweep comparison."""

    label: str
    arch: NMCConfig
    prediction: NapelPrediction


def compare_architectures(
    model: NapelModel,
    profile: ApplicationProfile,
    archs: dict[str, NMCConfig],
) -> list[ArchComparison]:
    """Predict one kernel across several architectures, best EDP first."""
    if not archs:
        raise MLError("compare_architectures needs at least one architecture")
    results = [
        ArchComparison(label, arch, model.predict(profile, arch))
        for label, arch in archs.items()
    ]
    results.sort(key=lambda r: r.prediction.edp)
    return results


def format_arch_comparison(results: list[ArchComparison]) -> str:
    rows = [
        [
            r.label,
            r.arch.n_pes,
            f"{r.arch.frequency_ghz:g}",
            r.arch.l1_lines,
            f"{r.prediction.ipc:7.3f}",
            f"{r.prediction.time_s * 1e6:9.2f}",
            f"{r.prediction.energy_j * 1e3:9.4f}",
            f"{r.prediction.edp:.3e}",
        ]
        for r in results
    ]
    return format_table(
        ["design", "#PEs", "GHz", "L1 lines", "IPC", "time (us)",
         "energy (mJ)", "EDP (J*s)"],
        rows,
        title="architecture comparison (best EDP first)",
    )
