"""Leave-one-application-out accuracy evaluation (paper Section 3.3).

"To evaluate the prediction accuracy for a particular application, our
training data comprises all the collected data for all applications
*except* the application for which the prediction will be made."

:func:`evaluate_loocv` implements exactly that protocol over a combined
training set, for NAPEL's random forest and the two Figure 5 baselines,
reporting per-application MRE for performance (IPC) and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MLError
from ..ml import mean_relative_error
from ..obs import get_logger, metrics, tracer
from ..parallel import map_jobs, resolve_jobs
from .dataset import TrainingSet
from .pipeline import NapelTrainer

log = get_logger("repro.ml")


@dataclass
class LoocvResult:
    """Per-application MRE of one model under leave-one-app-out CV."""

    model_name: str
    perf_mre: dict[str, float] = field(default_factory=dict)
    energy_mre: dict[str, float] = field(default_factory=dict)
    train_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def mean_perf_mre(self) -> float:
        return float(np.mean(list(self.perf_mre.values())))

    @property
    def mean_energy_mre(self) -> float:
        return float(np.mean(list(self.energy_mre.values())))


def _loocv_fold_job(job) -> tuple[str, float, float, float]:
    """Train-and-score one held-out application (module-level: picklable)."""
    training_set, app, model, tune, n_estimators, random_state = job
    metrics().inc("loocv.folds")
    with tracer().span("loocv.fold", held_out=app, model=model):
        train_set = training_set.exclude(app)
        test_set = training_set.filter(app)
        trainer = NapelTrainer(
            model=model,
            tune=tune,
            n_estimators=n_estimators,
            random_state=random_state,
        )
        trained = trainer.train(train_set)
        X_test = test_set.X()
        ipc_true = test_set.y_ipc_per_pe()
        epi_true = test_set.y_energy_per_instruction()
        ipc_pred, epi_pred = trained.model.predict_labels(
            X_test, schema=test_set.schema
        )
    return (
        app,
        mean_relative_error(ipc_true, ipc_pred),
        mean_relative_error(epi_true, epi_pred),
        trained.train_tune_seconds,
    )


def evaluate_loocv(
    training_set: TrainingSet,
    *,
    model: str = "rf",
    tune: bool = True,
    n_estimators: int = 60,
    random_state: int = 0,
    jobs: int | None = None,
) -> LoocvResult:
    """Leave-one-application-out MRE for ``model`` ("rf", "ann", "tree").

    ``jobs > 1`` retrains the held-out folds in worker processes (one job
    per application); training is a deterministic function of the fold's
    data and seed, so the reported MREs match a serial run exactly.
    """
    apps = training_set.workloads()
    if len(apps) < 2:
        raise MLError("LOOCV needs at least two applications")
    result = LoocvResult(model_name=model)
    fold_jobs = [
        (training_set, app, model, tune, n_estimators, random_state)
        for app in apps
    ]
    log.info(
        "loocv start",
        extra={"ctx": {
            "model": model,
            "folds": len(apps),
            "jobs": resolve_jobs(jobs),
        }},
    )
    for app, perf, energy, seconds in map_jobs(
        _loocv_fold_job, fold_jobs, jobs_n=resolve_jobs(jobs), chunk=1
    ):
        result.perf_mre[app] = perf
        result.energy_mre[app] = energy
        result.train_seconds[app] = seconds
        log.info(
            "loocv fold done",
            extra={"ctx": {
                "held_out": app,
                "perf_mre": round(perf, 6),
                "energy_mre": round(energy, 6),
                "train_seconds": round(seconds, 3),
            }},
        )
    return result
