"""NMC-suitability analysis (paper Section 3.4, Figure 7).

For each application at its *test* input (Table 2):

* **host EDP** — from the POWER9 host model (the paper's measured host),
* **actual NMC EDP** — from the cycle-level NMC simulator (the paper's
  Ramulator "Actual" bars),
* **predicted NMC EDP** — from a NAPEL model trained *without* that
  application (leave-one-out, so the prediction is for a previously-unseen
  application, as in the paper).

An application is NMC-suitable when its EDP reduction (host EDP / NMC EDP)
exceeds 1.

:func:`analyze_backend_suitability` extends the analysis with the memory
backend as a design axis: every registered (or requested) backend is
simulated at each application's test input and the backends are ranked per
kernel by actual EDP reduction, with the held-out model — trained on the
multi-backend campaign data, so one model spans backends — predicting the
same ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..config import HostConfig, NMCConfig
from ..errors import ReproError
from ..hostsim import HostSimulator
from ..obs import get_logger, metrics
from ..workloads import Workload
from .campaign import CampaignCache, SimulationCampaign
from .dataset import TrainingSet
from .pipeline import NapelTrainer
from .reporting import format_table

log = get_logger("repro.campaign")


def _require_positive(workload: str, component: str, value: float) -> float:
    """Fail loud on zero/negative/non-finite EDP components.

    A zero simulated or predicted time/energy would otherwise surface as a
    bare ``ZeroDivisionError`` deep inside an EDP ratio; name the workload
    and the offending component instead.
    """
    if not math.isfinite(value) or value <= 0.0:
        raise ReproError(
            f"suitability analysis for {workload!r}: {component} is "
            f"{value!r}; EDP ratios need finite, positive times and "
            "energies"
        )
    return value


@dataclass(frozen=True)
class SuitabilityResult:
    """Figure 7 data for one application."""

    workload: str
    host_time_s: float
    host_energy_j: float
    nmc_time_actual_s: float
    nmc_energy_actual_j: float
    nmc_time_pred_s: float
    nmc_energy_pred_j: float

    @property
    def host_edp(self) -> float:
        return self.host_energy_j * self.host_time_s

    @property
    def edp_reduction_actual(self) -> float:
        """Host EDP / simulated NMC EDP (the paper's "Actual" bar)."""
        _require_positive(
            self.workload, "simulated NMC time (nmc_time_actual_s)",
            self.nmc_time_actual_s,
        )
        _require_positive(
            self.workload, "simulated NMC energy (nmc_energy_actual_j)",
            self.nmc_energy_actual_j,
        )
        return self.host_edp / (self.nmc_energy_actual_j * self.nmc_time_actual_s)

    @property
    def edp_reduction_pred(self) -> float:
        """Host EDP / NAPEL-predicted NMC EDP (the paper's "NAPEL" bar)."""
        _require_positive(
            self.workload, "predicted NMC time (nmc_time_pred_s)",
            self.nmc_time_pred_s,
        )
        _require_positive(
            self.workload, "predicted NMC energy (nmc_energy_pred_j)",
            self.nmc_energy_pred_j,
        )
        return self.host_edp / (self.nmc_energy_pred_j * self.nmc_time_pred_s)

    @property
    def suitable_actual(self) -> bool:
        return self.edp_reduction_actual > 1.0

    @property
    def suitable_pred(self) -> bool:
        return self.edp_reduction_pred > 1.0

    @property
    def edp_mre(self) -> float:
        """Relative error of NAPEL's EDP estimate vs the simulator's."""
        _require_positive(
            self.workload, "simulated NMC time (nmc_time_actual_s)",
            self.nmc_time_actual_s,
        )
        _require_positive(
            self.workload, "simulated NMC energy (nmc_energy_actual_j)",
            self.nmc_energy_actual_j,
        )
        actual = self.nmc_energy_actual_j * self.nmc_time_actual_s
        pred = self.nmc_energy_pred_j * self.nmc_time_pred_s
        return abs(pred - actual) / actual


def analyze_suitability(
    workloads: list[Workload],
    campaign: SimulationCampaign,
    *,
    training_set: TrainingSet | None = None,
    host_config: HostConfig | None = None,
    trainer_kwargs: dict | None = None,
) -> list[SuitabilityResult]:
    """Run the full Figure 7 analysis over ``workloads``.

    ``training_set`` defaults to the CCD campaigns of all the workloads
    (reusing the campaign's cache).  For each application the NAPEL model
    is retrained without that application's data.
    """
    host = HostSimulator(host_config)
    if training_set is None:
        training_set = campaign.run_all(workloads)
    # "Our training data comprises all the collected data for all
    # applications except the application for which the prediction will be
    # made" (paper Section 3.3) — the collected data includes every
    # application's test-input simulation (they are what Figure 7's
    # "Actual" bars are made of), so the held-out model trains on the
    # other applications' test rows too.
    test_rows = {
        w.name: campaign.run_point(w, w.test_config()) for w in workloads
    }
    # One combined set (campaign rows + every test row) built ONCE: each
    # held-out fold is then a row-index *view* over its shared feature
    # matrix (see TrainingSet._view), not a per-application rebuild.
    combined = TrainingSet.concat(
        [training_set, TrainingSet(list(test_rows.values()))]
    )
    results: list[SuitabilityResult] = []
    for workload in workloads:
        test_row = test_rows[workload.name]
        host_result = host.evaluate(test_row.profile)
        trainer = NapelTrainer(**(trainer_kwargs or {}))
        train_rows = combined.exclude(workload.name)
        assert train_rows._root is combined or train_rows._root is combined._root, (
            "suitability fold must stay a columnar view of the combined set"
        )
        trained = trainer.train(train_rows)
        prediction = trained.model.predict(test_row.profile, campaign.arch)
        metrics().inc("suitability.apps")
        for component, value in (
            ("simulated NMC time (nmc_time_actual_s)", test_row.result.time_s),
            ("simulated NMC energy (nmc_energy_actual_j)", test_row.result.energy_j),
            ("predicted NMC time (nmc_time_pred_s)", prediction.time_s),
            ("predicted NMC energy (nmc_energy_pred_j)", prediction.energy_j),
        ):
            _require_positive(workload.name, component, value)
        result = SuitabilityResult(
            workload=workload.name,
            host_time_s=host_result.time_s,
            host_energy_j=host_result.energy_j,
            nmc_time_actual_s=test_row.result.time_s,
            nmc_energy_actual_j=test_row.result.energy_j,
            nmc_time_pred_s=prediction.time_s,
            nmc_energy_pred_j=prediction.energy_j,
        )
        log.info(
            "suitability app done",
            extra={"ctx": {
                "workload": workload.name,
                "edp_reduction_actual": round(result.edp_reduction_actual, 4),
                "edp_reduction_pred": round(result.edp_reduction_pred, 4),
                "edp_mre": round(result.edp_mre, 4),
            }},
        )
        results.append(result)
    return results


@dataclass(frozen=True)
class BackendSuitability:
    """One (workload, backend) cell of the backend × kernel ranking."""

    workload: str
    backend: str
    edp_reduction_actual: float
    edp_reduction_pred: float
    #: 1 = best backend for this workload by actual EDP reduction.
    rank: int

    @property
    def suitable_actual(self) -> bool:
        return self.edp_reduction_actual > 1.0


def analyze_backend_suitability(
    workloads: list[Workload],
    backends: Sequence[str] | None = None,
    *,
    cache: CampaignCache | None = None,
    scale: float = 1.0,
    jobs: int | None = None,
    engine: str | None = None,
    host_config: HostConfig | None = None,
    trainer_kwargs: dict | None = None,
) -> list[BackendSuitability]:
    """Rank memory backends per kernel by EDP reduction over the host.

    One CCD campaign runs per backend (all sharing ``cache``; profiles
    are backend-independent, so only the simulations repeat), the
    campaigns concatenate into a single multi-backend training set (the
    ``arch.backend.*`` one-hot keeps the backends apart), and for each
    workload a held-out model predicts the EDP of every backend.  Results
    come back grouped by workload, best backend first.
    """
    from ..backends import backend_names

    if backends is None:
        backends = backend_names()
    host = HostSimulator(host_config)
    cache = cache if cache is not None else CampaignCache()
    campaigns = {
        name: SimulationCampaign(
            NMCConfig.from_backend(name),
            cache=cache, scale=scale, jobs=jobs, engine=engine,
        )
        for name in backends
    }
    training = TrainingSet.concat(
        campaigns[name].run_all(workloads) for name in backends
    )
    # Test rows per (workload, backend): the Figure 7 "Actual" data,
    # which also joins the training pool (see analyze_suitability).
    test_rows = {
        (w.name, name): campaigns[name].run_point(w, w.test_config())
        for w in workloads
        for name in backends
    }
    combined = TrainingSet.concat(
        [training, TrainingSet(list(test_rows.values()))]
    )
    results: list[BackendSuitability] = []
    for workload in workloads:
        host_result = host.evaluate(
            test_rows[(workload.name, backends[0])].profile
        )
        host_edp = host_result.energy_j * host_result.time_s
        trainer = NapelTrainer(**(trainer_kwargs or {}))
        trained = trainer.train(combined.exclude(workload.name))
        per_backend: list[tuple[str, float, float]] = []
        for name in backends:
            test_row = test_rows[(workload.name, name)]
            prediction = trained.model.predict(
                test_row.profile, campaigns[name].arch
            )
            for component, value in (
                ("simulated NMC time", test_row.result.time_s),
                ("simulated NMC energy", test_row.result.energy_j),
                ("predicted NMC time", prediction.time_s),
                ("predicted NMC energy", prediction.energy_j),
            ):
                _require_positive(
                    f"{workload.name}@{name}", component, value
                )
            actual = host_edp / (
                test_row.result.energy_j * test_row.result.time_s
            )
            pred = host_edp / (prediction.energy_j * prediction.time_s)
            per_backend.append((name, actual, pred))
        per_backend.sort(key=lambda t: -t[1])
        metrics().inc("suitability.backend_cells", len(per_backend))
        for rank, (name, actual, pred) in enumerate(per_backend, 1):
            results.append(BackendSuitability(
                workload=workload.name,
                backend=name,
                edp_reduction_actual=actual,
                edp_reduction_pred=pred,
                rank=rank,
            ))
        log.info(
            "backend suitability app done",
            extra={"ctx": {
                "workload": workload.name,
                "best_backend": per_backend[0][0],
            }},
        )
    return results


def format_backend_suitability(
    results: Sequence[BackendSuitability],
) -> str:
    """Backend × kernel ranking table, best backend first per kernel."""
    rows = [
        [
            r.workload if r.rank == 1 else "",
            str(r.rank),
            r.backend,
            f"{r.edp_reduction_actual:10.4f}",
            f"{r.edp_reduction_pred:10.4f}",
            "yes" if r.suitable_actual else "no",
        ]
        for r in results
    ]
    return format_table(
        ["kernel", "rank", "backend", "EDP gain (sim)",
         "EDP gain (NAPEL)", "suitable"],
        rows,
        title="NMC suitability by memory backend "
              "(EDP reduction vs host; rank 1 = best backend)",
    )
