"""NMC-suitability analysis (paper Section 3.4, Figure 7).

For each application at its *test* input (Table 2):

* **host EDP** — from the POWER9 host model (the paper's measured host),
* **actual NMC EDP** — from the cycle-level NMC simulator (the paper's
  Ramulator "Actual" bars),
* **predicted NMC EDP** — from a NAPEL model trained *without* that
  application (leave-one-out, so the prediction is for a previously-unseen
  application, as in the paper).

An application is NMC-suitable when its EDP reduction (host EDP / NMC EDP)
exceeds 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HostConfig
from ..hostsim import HostSimulator
from ..workloads import Workload
from .campaign import SimulationCampaign
from .dataset import TrainingSet
from .pipeline import NapelTrainer


@dataclass(frozen=True)
class SuitabilityResult:
    """Figure 7 data for one application."""

    workload: str
    host_time_s: float
    host_energy_j: float
    nmc_time_actual_s: float
    nmc_energy_actual_j: float
    nmc_time_pred_s: float
    nmc_energy_pred_j: float

    @property
    def host_edp(self) -> float:
        return self.host_energy_j * self.host_time_s

    @property
    def edp_reduction_actual(self) -> float:
        """Host EDP / simulated NMC EDP (the paper's "Actual" bar)."""
        return self.host_edp / (self.nmc_energy_actual_j * self.nmc_time_actual_s)

    @property
    def edp_reduction_pred(self) -> float:
        """Host EDP / NAPEL-predicted NMC EDP (the paper's "NAPEL" bar)."""
        return self.host_edp / (self.nmc_energy_pred_j * self.nmc_time_pred_s)

    @property
    def suitable_actual(self) -> bool:
        return self.edp_reduction_actual > 1.0

    @property
    def suitable_pred(self) -> bool:
        return self.edp_reduction_pred > 1.0

    @property
    def edp_mre(self) -> float:
        """Relative error of NAPEL's EDP estimate vs the simulator's."""
        actual = self.nmc_energy_actual_j * self.nmc_time_actual_s
        pred = self.nmc_energy_pred_j * self.nmc_time_pred_s
        return abs(pred - actual) / actual


def analyze_suitability(
    workloads: list[Workload],
    campaign: SimulationCampaign,
    *,
    training_set: TrainingSet | None = None,
    host_config: HostConfig | None = None,
    trainer_kwargs: dict | None = None,
) -> list[SuitabilityResult]:
    """Run the full Figure 7 analysis over ``workloads``.

    ``training_set`` defaults to the CCD campaigns of all the workloads
    (reusing the campaign's cache).  For each application the NAPEL model
    is retrained without that application's data.
    """
    host = HostSimulator(host_config)
    if training_set is None:
        training_set = campaign.run_all(workloads)
    # "Our training data comprises all the collected data for all
    # applications except the application for which the prediction will be
    # made" (paper Section 3.3) — the collected data includes every
    # application's test-input simulation (they are what Figure 7's
    # "Actual" bars are made of), so the held-out model trains on the
    # other applications' test rows too.
    test_rows = {
        w.name: campaign.run_point(w, w.test_config()) for w in workloads
    }
    results: list[SuitabilityResult] = []
    for workload in workloads:
        test_row = test_rows[workload.name]
        host_result = host.evaluate(test_row.profile)
        trainer = NapelTrainer(**(trainer_kwargs or {}))
        train_rows = TrainingSet(
            training_set.exclude(workload.name).rows
            + [
                row for name, row in test_rows.items()
                if name != workload.name
            ]
        )
        trained = trainer.train(train_rows)
        prediction = trained.model.predict(test_row.profile, campaign.arch)
        results.append(
            SuitabilityResult(
                workload=workload.name,
                host_time_s=host_result.time_s,
                host_energy_j=host_result.energy_j,
                nmc_time_actual_s=test_row.result.time_s,
                nmc_energy_actual_j=test_row.result.energy_j,
                nmc_time_pred_s=prediction.time_s,
                nmc_energy_pred_j=prediction.energy_j,
            )
        )
    return results
