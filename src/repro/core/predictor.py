"""The trained NAPEL model (paper phase B: prediction).

Given a hardware-independent application profile and an NMC architecture
configuration, the model predicts per-PE IPC and energy-per-instruction
with two random forests (trained in log space — IPC and energy are
ratio-scale quantities spanning decades across applications) and derives:

* aggregate IPC (per-PE IPC times the PEs the kernel's thread count uses),
* execution time via the paper's formula
  ``T_NMC = I_offload / (IPC * f_core)``,
* total energy ``E = epi * I_offload``,
* the energy-delay product used by the suitability analysis.

Every model carries the :class:`~repro.schema.FeatureSchema` it was
trained under.  ``predict`` / ``predict_labels`` validate incoming
feature data against it: a drifted runtime schema (features added,
renamed, removed or reordered since training) raises a
:class:`~repro.errors.SchemaMismatchError` naming the offending columns.
When the drift is a pure reorder/superset, passing ``align=True`` opts
in to projecting the incoming columns into the training layout by name.

Raw model outputs are clamped to the training-label range (with a small
margin): a prediction outside every observed label is an extrapolation
artefact, and clamping keeps the weaker Figure 5 baselines (ANN, linear
model tree) finite when they extrapolate wildly for unseen applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import NMCConfig
from ..errors import MLError, SchemaMismatchError
from ..obs import metrics
from ..profiler import ApplicationProfile
from ..schema import FeatureSchema, active_schema

#: Clamp margin in log space (allow a factor of e^0.5 ~ 1.65x beyond the
#: observed label range before clamping).
CLAMP_MARGIN = 0.5


@dataclass(frozen=True)
class NapelPrediction:
    """One NAPEL prediction for a (kernel, architecture) pair."""

    workload: str
    ipc: float
    ipc_per_pe: float
    energy_per_instruction_j: float
    instructions: int
    pes_used: int
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return self.energy_j * self.time_s


@dataclass(frozen=True)
class _Alignment:
    """A resolved projection plan from one source schema into a model.

    ``projection is None`` means the source layout already matches the
    training layout.  ``dropped_backend_*`` name the ``arch.backend.*``
    one-hot columns the projection would discard; rows with any of them
    set are refused (the model cannot represent that device).
    """

    projection: np.ndarray | None
    dropped_backend_names: tuple[str, ...] = ()
    dropped_backend_cols: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp)
    )


class NapelModel:
    """NAPEL's trained predictor: two forests + the time/energy formulas.

    ``schema`` is the feature schema the forests were trained under
    (default: the active runtime schema); all incoming feature data is
    validated against it.  ``ipc_bounds`` / ``energy_bounds`` are the
    (min, max) of the training labels in model space, used for clamping
    (see module docstring).

    With ``residual_to_prior`` the forests were trained on the log-ratio of
    the label to its mechanistic prior estimate (the ``prior.*`` feature
    columns); the prior offsets are added back at prediction time.  This
    gray-box residual formulation transfers across applications much better
    than raw labels: the physics carries the scale, the model carries the
    corrections.
    """

    _LN_PJ_TO_J = float(np.log(1e12))

    def __init__(
        self,
        ipc_model,
        energy_model,
        *,
        schema: FeatureSchema | None = None,
        log_space: bool = True,
        residual_to_prior: bool = True,
        ipc_bounds: tuple[float, float] | None = None,
        energy_bounds: tuple[float, float] | None = None,
    ) -> None:
        self.ipc_model = ipc_model
        self.energy_model = energy_model
        self.schema = schema if schema is not None else active_schema()
        self.log_space = log_space
        self.residual_to_prior = residual_to_prior
        self.ipc_bounds = ipc_bounds
        self.energy_bounds = energy_bounds
        self._alignments: dict[tuple[str, bool], "_Alignment"] = {}

    def __getstate__(self) -> dict:
        # The alignment memo is a runtime cache keyed by source-schema
        # hashes; persisting it would bloat artifacts for no benefit.
        state = dict(self.__dict__)
        state.pop("_alignments", None)
        return state

    @staticmethod
    def prior_offsets(
        X: np.ndarray, schema: FeatureSchema | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Log-space prior offsets (IPC, energy-per-instruction in J).

        ``schema`` names the columns of ``X`` (default: the active
        runtime schema).
        """
        schema = schema if schema is not None else active_schema()
        ipc_col = schema.index("prior.ipc_estimate")
        epi_col = schema.index("prior.log_epi_estimate")
        ipc_prior = np.log(np.maximum(X[:, ipc_col], 1e-12))
        epi_prior = X[:, epi_col] - NapelModel._LN_PJ_TO_J
        return ipc_prior, epi_prior

    # ------------------------------------------------------------ helpers

    @staticmethod
    def features(profile: ApplicationProfile, arch: NMCConfig) -> np.ndarray:
        """The model-input row for one (profile, architecture) pair."""
        from .dataset import assemble_features

        return assemble_features(profile, arch)

    def _resolve_alignment(
        self, schema: FeatureSchema, align: bool
    ) -> "_Alignment":
        """The (memoised) projection plan from ``schema`` into the model.

        Schema comparison, diffing and projection resolution are O(number
        of columns) — cheap once, but a long-lived server answering
        N-row batches must not redo them per row (or even per request
        once a layout has been seen).  The plan is resolved once per
        (source schema hash, align) pair and cached on the model, so a
        batch of any size does O(1) schema work after the first sighting.
        """
        cache = self.__dict__.setdefault("_alignments", {})
        key = (schema.content_hash, align)
        plan = cache.get(key)
        if plan is not None:
            return plan
        if schema.content_hash == self.schema.content_hash:
            plan = _Alignment(projection=None)
        elif align:
            projection = self.schema.projection_from(schema)
            # Columns the projection silently drops.  A dropped backend
            # one-hot is not survivable: a row whose identity lives in
            # that column would be projected onto all-zero one-hots and
            # mispredicted silently (see _check_dropped_backends).
            kept = set(self.schema.names)
            dropped = [
                (name, i)
                for i, name in enumerate(schema.names)
                if name not in kept
            ]
            plan = _Alignment(
                projection=projection,
                dropped_backend_names=tuple(
                    n for n, _ in dropped
                    if n.startswith("arch.backend.")
                ),
                dropped_backend_cols=np.asarray(
                    [i for n, i in dropped
                     if n.startswith("arch.backend.")],
                    dtype=np.intp,
                ),
            )
        else:
            diff = self.schema.diff(schema)
            raise SchemaMismatchError(
                "feature data does not match the schema this model was "
                f"trained under ({self.schema.content_hash[:12]}) — "
                + diff.describe()
                + "; retrain the model or pass align=True to project "
                "compatible columns by name",
                missing=diff.missing,
                extra=diff.extra,
                moved=diff.moved,
            )
        cache[key] = plan
        return plan

    def _check_dropped_backends(
        self, X: np.ndarray, plan: "_Alignment"
    ) -> None:
        """Refuse to align away a *live* backend one-hot column.

        Projection legitimately drops columns the model was not trained
        on — except when a dropped ``arch.backend.*`` one-hot is set in
        some row: that row describes a memory backend registered after
        training, and projecting it would erase the device identity and
        predict with stale (all-zero) one-hots.
        """
        if not plan.dropped_backend_cols.size:
            return
        hot = X[:, plan.dropped_backend_cols] != 0.0
        if not hot.any():
            return
        names = tuple(
            name
            for name, col_hot in zip(
                plan.dropped_backend_names, hot.any(axis=0)
            )
            if col_hot
        )
        raise SchemaMismatchError(
            "cannot align: the data selects memory backend(s) this model "
            f"was not trained on ({', '.join(names)}); projecting would "
            "silently zero the backend one-hot — retrain the model with "
            "the new backend(s) in the training set",
            extra=names,
        )

    def _align(
        self,
        X: np.ndarray,
        schema: FeatureSchema | None,
        align: bool,
    ) -> np.ndarray:
        """Validate ``X`` against the training schema; reorder if asked.

        Without a source ``schema`` only the column count can be checked.
        With one, any drift raises a :class:`SchemaMismatchError` naming
        the missing/extra/moved columns — unless ``align=True`` and the
        training features are all present, in which case the columns are
        projected into the training layout by name.  Validation runs once
        per *batch* and the projection plan is memoised per source schema
        (see :meth:`_resolve_alignment`).
        """
        if schema is None:
            self.schema.validate_matrix(X, context="model input")
            return X
        schema.validate_matrix(X, context="model input")
        plan = self._resolve_alignment(schema, align)
        if plan.projection is None:
            return X
        self._check_dropped_backends(X, plan)
        return X[:, plan.projection]

    def _clamp(
        self, raw: np.ndarray, bounds: tuple[float, float] | None
    ) -> np.ndarray:
        if bounds is None:
            return raw
        lo, hi = bounds
        return np.clip(raw, lo - CLAMP_MARGIN, hi + CLAMP_MARGIN)

    def _invert(self, raw: np.ndarray) -> np.ndarray:
        return np.exp(raw) if self.log_space else raw

    def align_features(
        self,
        X: np.ndarray,
        *,
        schema: FeatureSchema | None = None,
        align: bool = False,
    ) -> np.ndarray:
        """Validate ``X`` and return it in the model's training layout.

        The public face of :meth:`_align` for callers (the prediction
        server) that need the aligned matrix itself — e.g. to read
        ``app.threads`` / ``arch.n_pes`` columns back out — before a
        separate :meth:`predict_labels` call on the pre-aligned rows.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        return self._align(X, schema, align)

    def predict_labels(
        self,
        X: np.ndarray,
        *,
        schema: FeatureSchema | None = None,
        align: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(per-PE IPC, energy-per-instruction) for feature rows ``X``.

        ``schema`` names the columns of ``X`` (pass it when ``X`` was
        assembled under a schema other than the model's own); see
        :meth:`_align` for the validation rules.  Applies residual
        clamping, the prior offsets and the inverse label transform; this
        is the one path every evaluation (prediction, LOOCV, suitability)
        goes through, so all models are compared under identical
        conventions.
        """
        X = np.asarray(X, dtype=np.float64)
        X = self._align(X, schema, align)
        ipc_raw = self._clamp(
            np.asarray(self.ipc_model.predict(X), dtype=np.float64),
            self.ipc_bounds,
        )
        epi_raw = self._clamp(
            np.asarray(self.energy_model.predict(X), dtype=np.float64),
            self.energy_bounds,
        )
        if self.residual_to_prior:
            ipc_off, epi_off = self.prior_offsets(X, self.schema)
            ipc_raw = ipc_raw + ipc_off
            epi_raw = epi_raw + epi_off
        return self._invert(ipc_raw), self._invert(epi_raw)

    # ------------------------------------------------------------ predict

    def predict(
        self,
        profile: ApplicationProfile,
        arch: NMCConfig,
        *,
        align: bool = False,
    ) -> NapelPrediction:
        """Predict IPC, energy and execution time for one kernel profile."""
        return self.predict_many([profile], arch, align=align)[0]

    def predict_many(
        self,
        profiles,
        arch: NMCConfig,
        *,
        align: bool = False,
    ) -> list[NapelPrediction]:
        """Batch prediction (one forest pass per target).

        Feature rows are assembled under the *active* runtime schema and
        validated against the model's training schema; see the module
        docstring for the drift rules.
        """
        profiles = list(profiles)
        if not profiles:
            return []
        for p in profiles:
            if p.instruction_count <= 0:
                raise MLError("profile has no instructions")
        with metrics().timer("phase.predict"):
            X = np.vstack([self.features(p, arch) for p in profiles])
            ipc_per_pe, epi = self.predict_labels(
                X, schema=active_schema(), align=align
            )
        metrics().inc("ml.predictions", len(profiles))
        if (ipc_per_pe <= 0).any() or (epi <= 0).any():
            raise MLError("model produced a non-positive prediction")
        return [
            self.derive_prediction(
                workload=p.workload,
                instructions=p.instruction_count,
                threads=p.thread_count,
                n_pes=arch.n_pes,
                frequency_ghz=arch.frequency_ghz,
                ipc_per_pe=ipc_pe,
                energy_per_instruction_j=epi_v,
            )
            for p, ipc_pe, epi_v in zip(profiles, ipc_per_pe, epi)
        ]

    @staticmethod
    def derive_prediction(
        *,
        workload: str,
        instructions: int,
        threads: int,
        n_pes: int,
        frequency_ghz: float,
        ipc_per_pe: float,
        energy_per_instruction_j: float,
    ) -> NapelPrediction:
        """The paper's derived quantities for one predicted label pair.

        The single place the time/energy formulas are evaluated: both
        :meth:`predict_many` and the prediction server go through it, so
        a served prediction is bit-identical to a CLI one for the same
        inputs.
        """
        pes = min(max(1, int(threads)), int(n_pes))
        ipc = float(ipc_per_pe) * pes
        freq_hz = frequency_ghz * 1e9
        time_s = instructions / (ipc * freq_hz)
        return NapelPrediction(
            workload=workload,
            ipc=ipc,
            ipc_per_pe=float(ipc_per_pe),
            energy_per_instruction_j=float(energy_per_instruction_j),
            instructions=instructions,
            pes_used=pes,
            time_s=time_s,
            energy_j=float(energy_per_instruction_j) * instructions,
        )
