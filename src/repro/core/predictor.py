"""The trained NAPEL model (paper phase B: prediction).

Given a hardware-independent application profile and an NMC architecture
configuration, the model predicts per-PE IPC and energy-per-instruction
with two random forests (trained in log space — IPC and energy are
ratio-scale quantities spanning decades across applications) and derives:

* aggregate IPC (per-PE IPC times the PEs the kernel's thread count uses),
* execution time via the paper's formula
  ``T_NMC = I_offload / (IPC * f_core)``,
* total energy ``E = epi * I_offload``,
* the energy-delay product used by the suitability analysis.

Every model carries the :class:`~repro.schema.FeatureSchema` it was
trained under.  ``predict`` / ``predict_labels`` validate incoming
feature data against it: a drifted runtime schema (features added,
renamed, removed or reordered since training) raises a
:class:`~repro.errors.SchemaMismatchError` naming the offending columns.
When the drift is a pure reorder/superset, passing ``align=True`` opts
in to projecting the incoming columns into the training layout by name.

Raw model outputs are clamped to the training-label range (with a small
margin): a prediction outside every observed label is an extrapolation
artefact, and clamping keeps the weaker Figure 5 baselines (ANN, linear
model tree) finite when they extrapolate wildly for unseen applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import NMCConfig
from ..errors import MLError, SchemaMismatchError
from ..obs import metrics
from ..profiler import ApplicationProfile
from ..schema import FeatureSchema, active_schema

#: Clamp margin in log space (allow a factor of e^0.5 ~ 1.65x beyond the
#: observed label range before clamping).
CLAMP_MARGIN = 0.5


@dataclass(frozen=True)
class NapelPrediction:
    """One NAPEL prediction for a (kernel, architecture) pair."""

    workload: str
    ipc: float
    ipc_per_pe: float
    energy_per_instruction_j: float
    instructions: int
    pes_used: int
    time_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        """Energy-delay product (J * s)."""
        return self.energy_j * self.time_s


class NapelModel:
    """NAPEL's trained predictor: two forests + the time/energy formulas.

    ``schema`` is the feature schema the forests were trained under
    (default: the active runtime schema); all incoming feature data is
    validated against it.  ``ipc_bounds`` / ``energy_bounds`` are the
    (min, max) of the training labels in model space, used for clamping
    (see module docstring).

    With ``residual_to_prior`` the forests were trained on the log-ratio of
    the label to its mechanistic prior estimate (the ``prior.*`` feature
    columns); the prior offsets are added back at prediction time.  This
    gray-box residual formulation transfers across applications much better
    than raw labels: the physics carries the scale, the model carries the
    corrections.
    """

    _LN_PJ_TO_J = float(np.log(1e12))

    def __init__(
        self,
        ipc_model,
        energy_model,
        *,
        schema: FeatureSchema | None = None,
        log_space: bool = True,
        residual_to_prior: bool = True,
        ipc_bounds: tuple[float, float] | None = None,
        energy_bounds: tuple[float, float] | None = None,
    ) -> None:
        self.ipc_model = ipc_model
        self.energy_model = energy_model
        self.schema = schema if schema is not None else active_schema()
        self.log_space = log_space
        self.residual_to_prior = residual_to_prior
        self.ipc_bounds = ipc_bounds
        self.energy_bounds = energy_bounds

    @staticmethod
    def prior_offsets(
        X: np.ndarray, schema: FeatureSchema | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Log-space prior offsets (IPC, energy-per-instruction in J).

        ``schema`` names the columns of ``X`` (default: the active
        runtime schema).
        """
        schema = schema if schema is not None else active_schema()
        ipc_col = schema.index("prior.ipc_estimate")
        epi_col = schema.index("prior.log_epi_estimate")
        ipc_prior = np.log(np.maximum(X[:, ipc_col], 1e-12))
        epi_prior = X[:, epi_col] - NapelModel._LN_PJ_TO_J
        return ipc_prior, epi_prior

    # ------------------------------------------------------------ helpers

    @staticmethod
    def features(profile: ApplicationProfile, arch: NMCConfig) -> np.ndarray:
        """The model-input row for one (profile, architecture) pair."""
        from .dataset import assemble_features

        return assemble_features(profile, arch)

    def _align(
        self,
        X: np.ndarray,
        schema: FeatureSchema | None,
        align: bool,
    ) -> np.ndarray:
        """Validate ``X`` against the training schema; reorder if asked.

        Without a source ``schema`` only the column count can be checked.
        With one, any drift raises a :class:`SchemaMismatchError` naming
        the missing/extra/moved columns — unless ``align=True`` and the
        training features are all present, in which case the columns are
        projected into the training layout by name.
        """
        if schema is None:
            self.schema.validate_matrix(X, context="model input")
            return X
        if schema.content_hash == self.schema.content_hash:
            return X
        schema.validate_matrix(X, context="model input")
        if align:
            return X[:, self.schema.projection_from(schema)]
        diff = self.schema.diff(schema)
        raise SchemaMismatchError(
            "feature data does not match the schema this model was "
            f"trained under ({self.schema.content_hash[:12]}) — "
            + diff.describe()
            + "; retrain the model or pass align=True to project "
            "compatible columns by name",
            missing=diff.missing,
            extra=diff.extra,
            moved=diff.moved,
        )

    def _clamp(
        self, raw: np.ndarray, bounds: tuple[float, float] | None
    ) -> np.ndarray:
        if bounds is None:
            return raw
        lo, hi = bounds
        return np.clip(raw, lo - CLAMP_MARGIN, hi + CLAMP_MARGIN)

    def _invert(self, raw: np.ndarray) -> np.ndarray:
        return np.exp(raw) if self.log_space else raw

    def predict_labels(
        self,
        X: np.ndarray,
        *,
        schema: FeatureSchema | None = None,
        align: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(per-PE IPC, energy-per-instruction) for feature rows ``X``.

        ``schema`` names the columns of ``X`` (pass it when ``X`` was
        assembled under a schema other than the model's own); see
        :meth:`_align` for the validation rules.  Applies residual
        clamping, the prior offsets and the inverse label transform; this
        is the one path every evaluation (prediction, LOOCV, suitability)
        goes through, so all models are compared under identical
        conventions.
        """
        X = np.asarray(X, dtype=np.float64)
        X = self._align(X, schema, align)
        ipc_raw = self._clamp(
            np.asarray(self.ipc_model.predict(X), dtype=np.float64),
            self.ipc_bounds,
        )
        epi_raw = self._clamp(
            np.asarray(self.energy_model.predict(X), dtype=np.float64),
            self.energy_bounds,
        )
        if self.residual_to_prior:
            ipc_off, epi_off = self.prior_offsets(X, self.schema)
            ipc_raw = ipc_raw + ipc_off
            epi_raw = epi_raw + epi_off
        return self._invert(ipc_raw), self._invert(epi_raw)

    # ------------------------------------------------------------ predict

    def predict(
        self,
        profile: ApplicationProfile,
        arch: NMCConfig,
        *,
        align: bool = False,
    ) -> NapelPrediction:
        """Predict IPC, energy and execution time for one kernel profile."""
        return self.predict_many([profile], arch, align=align)[0]

    def predict_many(
        self,
        profiles,
        arch: NMCConfig,
        *,
        align: bool = False,
    ) -> list[NapelPrediction]:
        """Batch prediction (one forest pass per target).

        Feature rows are assembled under the *active* runtime schema and
        validated against the model's training schema; see the module
        docstring for the drift rules.
        """
        profiles = list(profiles)
        if not profiles:
            return []
        for p in profiles:
            if p.instruction_count <= 0:
                raise MLError("profile has no instructions")
        with metrics().timer("phase.predict"):
            X = np.vstack([self.features(p, arch) for p in profiles])
            ipc_per_pe, epi = self.predict_labels(
                X, schema=active_schema(), align=align
            )
        metrics().inc("ml.predictions", len(profiles))
        if (ipc_per_pe <= 0).any() or (epi <= 0).any():
            raise MLError("model produced a non-positive prediction")
        freq_hz = arch.frequency_ghz * 1e9
        out = []
        for p, ipc_pe, epi_v in zip(profiles, ipc_per_pe, epi):
            pes = min(max(1, p.thread_count), arch.n_pes)
            ipc = float(ipc_pe) * pes
            time_s = p.instruction_count / (ipc * freq_hz)
            out.append(
                NapelPrediction(
                    workload=p.workload,
                    ipc=ipc,
                    ipc_per_pe=float(ipc_pe),
                    energy_per_instruction_j=float(epi_v),
                    instructions=p.instruction_count,
                    pes_used=pes,
                    time_s=time_s,
                    energy_j=float(epi_v) * p.instruction_count,
                )
            )
        return out
