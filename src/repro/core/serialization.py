"""Saving and loading trained NAPEL models.

Trained models are plain Python object graphs (forests of
:class:`~repro.ml.tree.RegressionTree` nodes, numpy arrays), so standard
pickling round-trips them exactly.  :func:`save_model` wraps the pickle
with a format header so stale model files fail loudly instead of
mispredicting silently.

Format version 2 makes artifacts *self-describing*: the header embeds
the model's full :class:`~repro.schema.FeatureSchema` (as plain JSON, so
the column identity is inspectable without unpickling) plus its content
hash and the package version.  :func:`load_model` verifies the header
before trusting the payload, rejects v1 files (they carry no schema, so
their column meaning cannot be checked) with an actionable message, and
warns when the saving package version or the runtime feature schema
differs from the current one.
"""

from __future__ import annotations

import pickle
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import MLError
from ..schema import FeatureSchema, active_schema
from .predictor import NapelModel

_MAGIC = "napel-model"
_FORMAT_VERSION = 2


def save_model(model: NapelModel, path: str | Path) -> None:
    """Serialise a trained model (format v2: schema-embedding) to ``path``."""
    if not isinstance(model, NapelModel):
        raise MLError(f"expected a NapelModel, got {type(model).__name__}")
    from .. import __version__

    schema = model.schema
    payload = {
        "magic": _MAGIC,
        "format": _FORMAT_VERSION,
        "repro_version": __version__,
        "schema": schema.to_json_dict(),
        "schema_hash": schema.content_hash,
        "model": model,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        pickle.dump(payload, fh)


def load_model(path: str | Path) -> NapelModel:
    """Load a model saved with :func:`save_model`.

    Only unpickle files you trust — pickle executes code on load.
    """
    path = Path(path)
    if not path.exists():
        raise MLError(f"no model file at {path}")
    with path.open("rb") as fh:
        try:
            payload = pickle.load(fh)
        except Exception as exc:
            raise MLError(
                f"{path} is corrupt or truncated and cannot be unpickled "
                f"({type(exc).__name__}: {exc})"
            ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise MLError(f"{path} is not a NAPEL model file")
    fmt = payload.get("format")
    if fmt == 1:
        raise MLError(
            f"{path} uses model format 1, which predates the feature "
            "schema and cannot be validated against the current feature "
            "layout; retrain and re-save it with this version "
            "(`repro train ... -o <file>`)"
        )
    if fmt != _FORMAT_VERSION:
        raise MLError(
            f"{path} uses model format {fmt}, expected {_FORMAT_VERSION}"
        )
    from .. import __version__

    saved_version = payload.get("repro_version")
    if saved_version != __version__:
        # The schema hash is the authoritative compatibility check, but a
        # version skew is still worth flagging: tree/forest internals may
        # have changed shape between releases.
        warnings.warn(
            f"{path} was saved by repro {saved_version}, this is repro "
            f"{__version__}; predictions are only guaranteed reproducible "
            "with the saving version",
            RuntimeWarning,
            stacklevel=2,
        )
    try:
        stored_schema = FeatureSchema.from_json_dict(payload["schema"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MLError(
            f"{path} has a malformed schema header ({exc!r})"
        ) from exc
    if payload.get("schema_hash") != stored_schema.content_hash:
        raise MLError(
            f"{path} schema hash does not match its embedded schema; the "
            "file is corrupt"
        )
    model = payload["model"]
    if not isinstance(model, NapelModel):
        raise MLError(f"{path} does not contain a NapelModel")
    if model.schema.content_hash != stored_schema.content_hash:
        raise MLError(
            f"{path} header schema disagrees with the pickled model's "
            "schema; the file is corrupt"
        )
    runtime = active_schema()
    if runtime.content_hash != stored_schema.content_hash:
        diff = stored_schema.diff(runtime)
        # Backend registrations mutate the arch block (one one-hot
        # column per backend), so an artifact can predate the *device
        # list* itself.  That drift deserves a sharper warning than a
        # generic reorder: rows selecting a post-training backend would
        # project onto all-zero one-hots, i.e. the stale model would
        # predict with the wrong device identity.  predict() refuses
        # such rows even under align=True; say so at load time.
        new_backends = tuple(
            n.removeprefix("arch.backend.")
            for n in diff.extra
            if n.startswith("arch.backend.")
        )
        if new_backends:
            warnings.warn(
                f"{path} predates memory backend(s) "
                f"{', '.join(new_backends)} registered in this runtime; "
                "predictions for those backends are impossible with this "
                "artifact (their one-hot identity columns did not exist "
                "at training time) and will be refused even under "
                "align=True — retrain to cover them",
                RuntimeWarning,
                stacklevel=2,
            )
        warnings.warn(
            f"{path} was trained under a different feature schema than "
            f"this runtime ({diff.describe()}); predict() will refuse "
            "incompatible inputs with a SchemaMismatchError",
            RuntimeWarning,
            stacklevel=2,
        )
    return model


@dataclass(frozen=True)
class PreloadedModel:
    """A model loaded, verified and ready to serve.

    The long-lived prediction server must not discover a broken or
    schema-drifted artifact on its first request: :func:`preload_model`
    front-loads every check at startup (or hot reload), captures the
    load-time warnings as data instead of letting them escape to the
    warning filter, and proves the forests actually evaluate by running
    one throwaway prediction.
    """

    model: NapelModel
    path: Path
    schema_hash: str
    n_features: int
    load_seconds: float
    verify_seconds: float
    warnings: tuple[str, ...] = field(default=())

    def summary(self) -> dict:
        """JSON-ready description (for /healthz and server manifests)."""
        return {
            "path": str(self.path),
            "schema_hash": self.schema_hash,
            "n_features": self.n_features,
            "load_seconds": round(self.load_seconds, 6),
            "verify_seconds": round(self.verify_seconds, 6),
            "warnings": list(self.warnings),
        }


def preload_model(path: str | Path) -> PreloadedModel:
    """Load and *verify* a model artifact for serving.

    Beyond :func:`load_model`'s header checks this runs a smoke
    prediction on a synthetic all-ones feature row and requires finite,
    positive outputs — a cheap end-to-end proof that the pickled forests
    are structurally intact, caught at startup rather than on the first
    live request.  Schema-drift warnings do not escape; they come back
    as strings on the result (the server logs them and surfaces them in
    /healthz).
    """
    t0 = time.perf_counter()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        model = load_model(path)
    load_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    probe = np.ones((1, len(model.schema)), dtype=np.float64)
    try:
        ipc, epi = model.predict_labels(probe)
    except MLError:
        raise
    except Exception as exc:  # noqa: BLE001 - artifact graphs can fail anyhow
        raise MLError(
            f"{path} failed preload verification: the pickled model "
            f"cannot evaluate a feature row "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not (np.isfinite(ipc).all() and np.isfinite(epi).all()):
        raise MLError(
            f"{path} failed preload verification: the model produced "
            "non-finite outputs on a probe row"
        )
    verify_seconds = time.perf_counter() - t1
    return PreloadedModel(
        model=model,
        path=Path(path),
        schema_hash=model.schema.content_hash,
        n_features=len(model.schema),
        load_seconds=load_seconds,
        verify_seconds=verify_seconds,
        warnings=tuple(str(w.message) for w in caught),
    )
