"""Saving and loading trained NAPEL models.

Trained models are plain Python object graphs (forests of
:class:`~repro.ml.tree.RegressionTree` nodes, numpy arrays), so standard
pickling round-trips them exactly.  :func:`save_model` wraps the pickle
with a format header so stale model files fail loudly instead of
mispredicting silently.

Format version 2 makes artifacts *self-describing*: the header embeds
the model's full :class:`~repro.schema.FeatureSchema` (as plain JSON, so
the column identity is inspectable without unpickling) plus its content
hash and the package version.  :func:`load_model` verifies the header
before trusting the payload, rejects v1 files (they carry no schema, so
their column meaning cannot be checked) with an actionable message, and
warns when the saving package version or the runtime feature schema
differs from the current one.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

from ..errors import MLError
from ..schema import FeatureSchema, active_schema
from .predictor import NapelModel

_MAGIC = "napel-model"
_FORMAT_VERSION = 2


def save_model(model: NapelModel, path: str | Path) -> None:
    """Serialise a trained model (format v2: schema-embedding) to ``path``."""
    if not isinstance(model, NapelModel):
        raise MLError(f"expected a NapelModel, got {type(model).__name__}")
    from .. import __version__

    schema = model.schema
    payload = {
        "magic": _MAGIC,
        "format": _FORMAT_VERSION,
        "repro_version": __version__,
        "schema": schema.to_json_dict(),
        "schema_hash": schema.content_hash,
        "model": model,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        pickle.dump(payload, fh)


def load_model(path: str | Path) -> NapelModel:
    """Load a model saved with :func:`save_model`.

    Only unpickle files you trust — pickle executes code on load.
    """
    path = Path(path)
    if not path.exists():
        raise MLError(f"no model file at {path}")
    with path.open("rb") as fh:
        try:
            payload = pickle.load(fh)
        except Exception as exc:
            raise MLError(
                f"{path} is corrupt or truncated and cannot be unpickled "
                f"({type(exc).__name__}: {exc})"
            ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise MLError(f"{path} is not a NAPEL model file")
    fmt = payload.get("format")
    if fmt == 1:
        raise MLError(
            f"{path} uses model format 1, which predates the feature "
            "schema and cannot be validated against the current feature "
            "layout; retrain and re-save it with this version "
            "(`repro train ... -o <file>`)"
        )
    if fmt != _FORMAT_VERSION:
        raise MLError(
            f"{path} uses model format {fmt}, expected {_FORMAT_VERSION}"
        )
    from .. import __version__

    saved_version = payload.get("repro_version")
    if saved_version != __version__:
        # The schema hash is the authoritative compatibility check, but a
        # version skew is still worth flagging: tree/forest internals may
        # have changed shape between releases.
        warnings.warn(
            f"{path} was saved by repro {saved_version}, this is repro "
            f"{__version__}; predictions are only guaranteed reproducible "
            "with the saving version",
            RuntimeWarning,
            stacklevel=2,
        )
    try:
        stored_schema = FeatureSchema.from_json_dict(payload["schema"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MLError(
            f"{path} has a malformed schema header ({exc!r})"
        ) from exc
    if payload.get("schema_hash") != stored_schema.content_hash:
        raise MLError(
            f"{path} schema hash does not match its embedded schema; the "
            "file is corrupt"
        )
    model = payload["model"]
    if not isinstance(model, NapelModel):
        raise MLError(f"{path} does not contain a NapelModel")
    if model.schema.content_hash != stored_schema.content_hash:
        raise MLError(
            f"{path} header schema disagrees with the pickled model's "
            "schema; the file is corrupt"
        )
    runtime = active_schema()
    if runtime.content_hash != stored_schema.content_hash:
        diff = stored_schema.diff(runtime)
        warnings.warn(
            f"{path} was trained under a different feature schema than "
            f"this runtime ({diff.describe()}); predict() will refuse "
            "incompatible inputs with a SchemaMismatchError",
            RuntimeWarning,
            stacklevel=2,
        )
    return model
