"""Saving and loading trained NAPEL models.

Trained models are plain Python object graphs (forests of
:class:`~repro.ml.tree.RegressionTree` nodes, numpy arrays), so standard
pickling round-trips them exactly.  :func:`save_model` wraps the pickle
with a format header and the package version so stale model files fail
loudly instead of mispredicting silently.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from ..errors import MLError
from .predictor import NapelModel

_MAGIC = "napel-model"
_FORMAT_VERSION = 1


def save_model(model: NapelModel, path: str | Path) -> None:
    """Serialise a trained model to ``path``."""
    if not isinstance(model, NapelModel):
        raise MLError(f"expected a NapelModel, got {type(model).__name__}")
    from .. import __version__

    payload = {
        "magic": _MAGIC,
        "format": _FORMAT_VERSION,
        "repro_version": __version__,
        "model": model,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        pickle.dump(payload, fh)


def load_model(path: str | Path) -> NapelModel:
    """Load a model saved with :func:`save_model`.

    Only unpickle files you trust — pickle executes code on load.
    """
    path = Path(path)
    if not path.exists():
        raise MLError(f"no model file at {path}")
    with path.open("rb") as fh:
        payload = pickle.load(fh)
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise MLError(f"{path} is not a NAPEL model file")
    if payload.get("format") != _FORMAT_VERSION:
        raise MLError(
            f"{path} uses model format {payload.get('format')}, "
            f"expected {_FORMAT_VERSION}"
        )
    model = payload["model"]
    if not isinstance(model, NapelModel):
        raise MLError(f"{path} does not contain a NapelModel")
    return model
