"""DoE simulation campaigns (paper phase 2).

A :class:`SimulationCampaign` turns a workload and a set of DoE-selected
input configurations into a :class:`~repro.core.dataset.TrainingSet`: it
generates each configuration's trace, profiles it (phase 1) and simulates
it on the target NMC architecture (phase 2).

A :class:`CampaignCache` memoises (workload, configuration, architecture)
-> (profile, simulation result), because the leave-one-application-out
evaluation and the benchmark harness revisit the same points many times.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Mapping, Sequence

from ..config import NMCConfig, default_nmc_config
from ..doe import ParameterSpace, central_composite
from ..errors import CampaignError
from ..nmcsim import NMCSimulator, SimulationResult
from ..profiler import ApplicationProfile, analyze_trace
from ..workloads import Workload
from ..workloads.base import config_seed
from .dataset import TrainingRow, TrainingSet


def _arch_key(arch: NMCConfig) -> str:
    return json.dumps(dataclasses.asdict(arch), sort_keys=True, default=str)


def _config_key(workload: str, config: Mapping[str, float], seed: int) -> str:
    params = ",".join(f"{k}={config[k]:.8g}" for k in sorted(config))
    return f"{workload}|{params}|seed={seed}"


class CampaignCache:
    """Memoises campaign points, optionally persisted as JSON on disk."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._profiles: dict[str, ApplicationProfile] = {}
        self._results: dict[tuple[str, str], SimulationResult] = {}
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    def get(
        self, point_key: str, arch_key: str
    ) -> tuple[ApplicationProfile, SimulationResult] | None:
        profile = self._profiles.get(point_key)
        result = self._results.get((point_key, arch_key))
        if profile is not None and result is not None:
            return profile, result
        return None

    def get_profile(self, point_key: str) -> ApplicationProfile | None:
        return self._profiles.get(point_key)

    def put(
        self,
        point_key: str,
        arch_key: str,
        profile: ApplicationProfile,
        result: SimulationResult,
    ) -> None:
        self._profiles[point_key] = profile
        self._results[(point_key, arch_key)] = result

    def save(self) -> None:
        """Persist the cache (no-op without a configured path)."""
        if self.path is None:
            return
        data = {
            "profiles": {
                k: p.to_json_dict() for k, p in self._profiles.items()
            },
            "results": [
                {"point": pk, "arch": ak, "result": r.to_json_dict()}
                for (pk, ak), r in self._results.items()
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(data))

    def _load(self) -> None:
        data = json.loads(self.path.read_text())
        self._profiles = {
            k: ApplicationProfile.from_json_dict(p)
            for k, p in data.get("profiles", {}).items()
        }
        self._results = {
            (entry["point"], entry["arch"]): SimulationResult.from_json_dict(
                entry["result"]
            )
            for entry in data.get("results", [])
        }

    def __len__(self) -> int:
        return len(self._results)


class SimulationCampaign:
    """Runs DoE configurations of workloads through profile + simulation."""

    def __init__(
        self,
        arch: NMCConfig | None = None,
        *,
        cache: CampaignCache | None = None,
        scale: float = 1.0,
    ) -> None:
        self.arch = arch or default_nmc_config()
        self.arch.validate()
        self.cache = cache if cache is not None else CampaignCache()
        self.scale = scale
        self._simulator = NMCSimulator(self.arch)
        #: Wall-clock seconds spent simulating, by workload (Table 4's
        #: "DoE run" column); profiling time is included, simulation of
        #: cached points is not re-counted.
        self.doe_run_seconds: dict[str, float] = {}

    # ------------------------------------------------------------ points

    def run_point(
        self,
        workload: Workload,
        config: Mapping[str, float],
        *,
        replicate: int = 0,
    ) -> TrainingRow:
        """Profile + simulate one input configuration.

        ``replicate`` differentiates centre replicates of the CCD: each
        replicate runs with a distinct RNG seed, which is how a
        deterministic simulator exhibits the "pure error" the centre
        replicates of a classical CCD are meant to estimate.
        """
        config = workload.validate_config(config)
        seed = config_seed(workload.name, config) + replicate
        point_key = _config_key(workload.name, config, seed)
        arch_key = _arch_key(self.arch)
        cached = self.cache.get(point_key, arch_key)
        if cached is not None:
            profile, result = cached
        else:
            start = time.perf_counter()
            trace = workload.generate(config, scale=self.scale, seed=seed)
            profile = self.cache.get_profile(point_key)
            if profile is None:
                profile = analyze_trace(
                    trace, workload=workload.name, parameters=dict(config)
                )
            result = self._simulator.run(
                trace, workload=workload.name, parameters=dict(config)
            )
            elapsed = time.perf_counter() - start
            self.doe_run_seconds[workload.name] = (
                self.doe_run_seconds.get(workload.name, 0.0) + elapsed
            )
            self.cache.put(point_key, arch_key, profile, result)
        return TrainingRow(
            workload=workload.name,
            parameters=dict(config),
            profile=profile,
            arch=self.arch,
            result=result,
        )

    # --------------------------------------------------------- campaigns

    def run(
        self,
        workload: Workload,
        configs: Sequence[Mapping[str, float]] | None = None,
    ) -> TrainingSet:
        """Run a workload's DoE campaign (default: its CCD, Table 4 sizes)."""
        if configs is None:
            space = ParameterSpace.of_workload(workload)
            configs = central_composite(space)
        if not configs:
            raise CampaignError("campaign needs at least one configuration")
        rows: list[TrainingRow] = []
        seen: dict[str, int] = {}
        for config in configs:
            key = _config_key(workload.name, workload.validate_config(config), 0)
            replicate = seen.get(key, 0)
            seen[key] = replicate + 1
            rows.append(self.run_point(workload, config, replicate=replicate))
        return TrainingSet(rows)

    def run_all(self, workloads: Sequence[Workload]) -> TrainingSet:
        """CCD campaigns for several workloads, concatenated."""
        return TrainingSet.concat(self.run(w) for w in workloads)
