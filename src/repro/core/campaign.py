"""DoE simulation campaigns (paper phase 2).

A :class:`SimulationCampaign` turns a workload and a set of DoE-selected
input configurations into a :class:`~repro.core.dataset.TrainingSet`: it
generates each configuration's trace, profiles it (phase 1) and simulates
it on the target NMC architecture (phase 2).

A :class:`CampaignCache` memoises (workload, configuration, architecture)
-> (profile, simulation result), because the leave-one-application-out
evaluation and the benchmark harness revisit the same points many times.
"""

from __future__ import annotations

import functools
import json
import os
import time
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Mapping, Sequence

from ..config import NMCConfig, default_nmc_config
from ..doe import ParameterSpace, central_composite
from ..errors import CampaignError
from ..ir import InstructionTrace
from ..nmcsim import (
    MEMO_COUNTER_NAMES,
    NMCSimulator,
    SimulationResult,
    batch_enabled,
    configure_store,
    resolve_engine,
    simulate_batch,
    store_dir,
)
from ..obs import get_logger, metrics, tracer
from ..parallel import map_jobs, resolve_jobs
from ..profiler import ApplicationProfile, analyze_trace
from ..schema import active_schema, canonical_hash
from ..workloads import Workload
from ..workloads.base import config_seed
from .dataset import TrainingRow, TrainingSet

log = get_logger("repro.campaign")

#: Process-wide memo of generated traces, keyed like the campaign cache
#: plus the trace scale.  Architecture sweeps revisit the same (workload,
#: config, seed, scale) points once per architecture — the profile is
#: already reused via :class:`CampaignCache`, but the trace used to be
#: regenerated every time.  Traces are immutable once built, so sharing
#: one object across campaigns (each campaign owns *one* architecture) is
#: safe; the bound keeps at most a campaign's worth of points resident.
_TRACE_MEMO: OrderedDict[tuple[str, float], InstructionTrace] = OrderedDict()
_TRACE_MEMO_CAPACITY = 64


def _memoized_trace(
    workload: Workload,
    config: Mapping[str, float],
    seed: int,
    scale: float,
    point_key: str,
) -> InstructionTrace:
    """Generate (or reuse) the trace of one campaign point."""
    key = (point_key, scale)
    trace = _TRACE_MEMO.get(key)
    if trace is not None:
        _TRACE_MEMO.move_to_end(key)
        metrics().inc("campaign.trace_reuse")
        log.debug("trace reused", extra={"ctx": {"point": point_key}})
        return trace
    with metrics().timer("phase.trace"):
        trace = workload.generate(config, scale=scale, seed=seed)
    _TRACE_MEMO[key] = trace
    while len(_TRACE_MEMO) > _TRACE_MEMO_CAPACITY:
        _TRACE_MEMO.popitem(last=False)
    return trace


#: On-disk campaign-cache layout version.  v2: arch keys switched from
#: raw JSON dumps to backend-prefixed canonical content hashes; caches
#: written by older versions are discarded with a warning on load.
CACHE_FORMAT_VERSION = 2


def _arch_key(arch: NMCConfig) -> str:
    """Canonical cache key of one architecture.

    ``<backend>:<canonical_hash>`` — the hash covers every config field
    (so any device or PE knob change misses the cache), while the
    leading backend name keeps keys human-attributable in cache dumps.
    Uses the same canonicalisation as the feature-schema content hash,
    so float fields key bit-exactly rather than by ``repr``.
    """
    return f"{arch.backend}:{canonical_hash(arch)}"


def _config_key(workload: str, config: Mapping[str, float], seed: int) -> str:
    params = ",".join(f"{k}={config[k]:.8g}" for k in sorted(config))
    return f"{workload}|{params}|seed={seed}"


class CampaignCache:
    """Memoises campaign points, optionally persisted as JSON on disk.

    Persistent caches are keyed by the active feature schema's content
    hash: cached profiles encode the profiler's feature layout, so a
    cache written under a different schema (features added, renamed or
    reordered since) is *discarded* with a warning instead of being
    silently misread into the wrong columns.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._profiles: dict[str, ApplicationProfile] = {}
        self._results: dict[tuple[str, str], SimulationResult] = {}
        #: Lookup accounting (reset never; one cache = one campaign run's
        #: worth of statistics for the run manifest).
        self.hits = 0
        self.misses = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(
        self, point_key: str, arch_key: str, *, record: bool = True
    ) -> tuple[ApplicationProfile, SimulationResult] | None:
        """One point lookup.  ``record=False`` skips the hit/miss
        accounting — used by internal re-reads (e.g. the parallel merge
        loop re-fetching points it just stored) so serial and parallel
        campaigns report identical statistics."""
        profile = self._profiles.get(point_key)
        result = self._results.get((point_key, arch_key))
        found = profile is not None and result is not None
        if record:
            if found:
                self.hits += 1
                metrics().inc("campaign.cache.hits")
                tracer().instant(
                    "campaign.cache.hit", args={"point": point_key}
                )
                log.debug(
                    "cache hit", extra={"ctx": {"point": point_key}}
                )
            else:
                self.misses += 1
                metrics().inc("campaign.cache.misses")
                tracer().instant(
                    "campaign.cache.miss", args={"point": point_key}
                )
                log.debug(
                    "cache miss", extra={"ctx": {"point": point_key}}
                )
        return (profile, result) if found else None

    def get_profile(self, point_key: str) -> ApplicationProfile | None:
        return self._profiles.get(point_key)

    def put(
        self,
        point_key: str,
        arch_key: str,
        profile: ApplicationProfile,
        result: SimulationResult,
    ) -> None:
        self._profiles[point_key] = profile
        self._results[(point_key, arch_key)] = result

    def save(self) -> None:
        """Persist the cache atomically (no-op without a configured path).

        The JSON is written to a ``.tmp`` sibling and moved into place
        with :func:`os.replace`, so a crash mid-write never leaves a
        truncated cache file behind.
        """
        if self.path is None:
            return
        data = {
            "format": CACHE_FORMAT_VERSION,
            "schema_hash": active_schema().content_hash,
            "profiles": {
                k: p.to_json_dict() for k, p in self._profiles.items()
            },
            "results": [
                {"point": pk, "arch": ak, "result": r.to_json_dict()}
                for (pk, ak), r in self._results.items()
            ],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(data))
        os.replace(tmp, self.path)

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
            stored_format = data.get("format")
            if stored_format != CACHE_FORMAT_VERSION:
                warnings.warn(
                    f"campaign cache {self.path} uses cache format "
                    f"{stored_format!r}; this version writes format "
                    f"{CACHE_FORMAT_VERSION} (arch keys are now canonical "
                    "backend-aware hashes) — discarding the stale cache",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._profiles = {}
                self._results = {}
                return
            stored_hash = data.get("schema_hash")
            expected_hash = active_schema().content_hash
            if stored_hash != expected_hash:
                warnings.warn(
                    f"campaign cache {self.path} was written under a "
                    f"different feature schema "
                    f"({str(stored_hash)[:12]} vs {expected_hash[:12]}); "
                    "discarding the stale cache",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._profiles = {}
                self._results = {}
                return
            profiles = {
                k: ApplicationProfile.from_json_dict(p)
                for k, p in data.get("profiles", {}).items()
            }
            results = {
                (entry["point"], entry["arch"]):
                    SimulationResult.from_json_dict(entry["result"])
                for entry in data.get("results", [])
            }
        except (ValueError, KeyError, TypeError, AttributeError, OSError) as exc:
            warnings.warn(
                f"campaign cache {self.path} is corrupt or unreadable "
                f"({exc!r}); starting with an empty cache",
                RuntimeWarning,
                stacklevel=2,
            )
            self._profiles = {}
            self._results = {}
            return
        self._profiles = profiles
        self._results = results

    def __len__(self) -> int:
        return len(self._results)


def _simulate_point_job(
    job: tuple[Workload, dict, int, NMCConfig, float, str],
) -> tuple[ApplicationProfile, SimulationResult, float, dict[str, int]]:
    """Worker-side body of one campaign point (module-level: picklable).

    Pure function of its payload — trace generation, profiling and
    simulation are all deterministic given the seed — so parallel
    campaigns reproduce serial ones bit for bit.  (The trace memo is
    per-process; workers reuse traces across the points they handle.)
    The returned mapping carries the point's ``sim.memo.*`` counter
    deltas, so worker-side memo activity reaches the parent's metrics
    registry (and hence run manifests).
    """
    workload, config, seed, arch, scale, engine = job
    start = time.perf_counter()
    m = metrics()
    memo_before = {name: m.count(name) for name in MEMO_COUNTER_NAMES}
    point_key = _config_key(workload.name, config, seed)
    with tracer().span(
        "campaign.point", workload=workload.name, seed=seed
    ):
        trace = _memoized_trace(workload, config, seed, scale, point_key)
        with metrics().timer("phase.profile"):
            profile = analyze_trace(
                trace, workload=workload.name, parameters=dict(config)
            )
        result = NMCSimulator(arch, engine=engine).run(
            trace, workload=workload.name, parameters=dict(config)
        )
    m.inc("campaign.points.simulated")
    # Simulated (deterministic) kernel time — same observation run_point
    # makes on the serial path, so the histogram deltas shipped back
    # merge to a snapshot bit-identical to a serial run's.
    m.observe(
        "campaign.point.sim_time_s",
        result.time_s,
        {"workload": workload.name},
    )
    memo_deltas = {
        name: m.count(name) - memo_before[name]
        for name in MEMO_COUNTER_NAMES
    }
    return profile, result, time.perf_counter() - start, memo_deltas


def _simulate_batch_job(
    job: tuple[Workload, list, NMCConfig, float, str, dict],
) -> tuple[list, list, float, dict[str, int]]:
    """Worker-side body of one batched campaign chunk (picklable).

    ``job`` carries a contiguous chunk of pending points
    ``(point_key, config, seed)`` plus ``known_profiles`` — profiles the
    parent's cache already holds (from an earlier architecture sweep),
    shipped along so workers skip re-profiling ("memo adoption").  Trace
    generation and profiling emit the same per-point spans/timers as the
    per-point path; simulation then runs through
    :func:`repro.nmcsim.simulate_batch`, which replays every point's
    phase B in one kernel invocation while still emitting per-point
    ``phase.simulate`` spans — so campaign observability contracts hold
    at any worker count.
    """
    workload, chunk, arch, scale, engine, known_profiles = job
    start = time.perf_counter()
    m = metrics()
    memo_before = {name: m.count(name) for name in MEMO_COUNTER_NAMES}
    profiles: list[ApplicationProfile] = []
    sim_points: list[tuple[InstructionTrace, NMCConfig, str, dict]] = []
    for point_key, config, seed in chunk:
        with tracer().span(
            "campaign.point", workload=workload.name, seed=seed
        ):
            trace = _memoized_trace(workload, config, seed, scale, point_key)
            profile = known_profiles.get(point_key)
            if profile is None:
                with metrics().timer("phase.profile"):
                    profile = analyze_trace(
                        trace, workload=workload.name,
                        parameters=dict(config),
                    )
            profiles.append(profile)
            sim_points.append(
                (trace, arch, workload.name, dict(config))
            )
    results = simulate_batch(sim_points, engine=engine)
    for result in results:
        m.inc("campaign.points.simulated")
        m.observe(
            "campaign.point.sim_time_s",
            result.time_s,
            {"workload": workload.name},
        )
    memo_deltas = {
        name: m.count(name) - memo_before[name]
        for name in MEMO_COUNTER_NAMES
    }
    return profiles, results, time.perf_counter() - start, memo_deltas


class SimulationCampaign:
    """Runs DoE configurations of workloads through profile + simulation.

    ``jobs`` selects the worker-process count for campaign runs (1 =
    serial, 0 = all CPUs, None = honour ``REPRO_JOBS``); see
    :mod:`repro.parallel` for the determinism guarantee.  ``engine``
    selects the simulation engine (None = honour ``REPRO_SIM_ENGINE``,
    default fast); both engines produce identical results.

    ``batch`` controls campaign-level batched replay (None = honour
    ``REPRO_SIM_BATCH``, default on): uncached points are grouped so
    same-trace points run phase A back to back against warm memos and
    every point's phase B replays in one compiled kernel invocation —
    bit-identical to per-point simulation.  ``memo_dir`` points the
    persistent phase-A memo store at a directory (None = honour
    ``REPRO_SIM_MEMO_DIR``); pool workers adopt the same store.
    """

    def __init__(
        self,
        arch: NMCConfig | None = None,
        *,
        cache: CampaignCache | None = None,
        scale: float = 1.0,
        jobs: int | None = None,
        engine: str | None = None,
        batch: bool | None = None,
        memo_dir: str | os.PathLike | None = None,
    ) -> None:
        self.arch = arch or default_nmc_config()
        self.arch.validate()
        self.cache = cache if cache is not None else CampaignCache()
        self.scale = scale
        self.jobs = resolve_jobs(jobs)
        self.engine = resolve_engine(engine)
        self.batch = batch
        if memo_dir is not None:
            configure_store(memo_dir)
        self._simulator = NMCSimulator(self.arch, engine=self.engine)
        # The canonical arch hash covers every config field; computing it
        # per point was measurable (~0.7 ms each) at campaign scale.
        self._arch_key = _arch_key(self.arch)
        #: Wall-clock seconds spent simulating, by workload (Table 4's
        #: "DoE run" column); profiling time is included, simulation of
        #: cached points is not re-counted.  Under parallel execution
        #: this sums the workers' per-point seconds (CPU cost), keeping
        #: the Table 4 semantics independent of the worker count.
        self.doe_run_seconds: dict[str, float] = {}
        #: Elapsed wall-clock of each workload's latest :meth:`run`
        #: (what a user actually waits for; under parallel execution
        #: this is what shrinks while ``doe_run_seconds`` stays put).
        self.wall_seconds: dict[str, float] = {}

    # ------------------------------------------------------------ points

    def run_point(
        self,
        workload: Workload,
        config: Mapping[str, float],
        *,
        replicate: int = 0,
    ) -> TrainingRow:
        """Profile + simulate one input configuration.

        ``replicate`` differentiates centre replicates of the CCD: each
        replicate runs with a distinct RNG seed, which is how a
        deterministic simulator exhibits the "pure error" the centre
        replicates of a classical CCD are meant to estimate.
        """
        config = workload.validate_config(config)
        seed = config_seed(workload.name, config) + replicate
        point_key = _config_key(workload.name, config, seed)
        arch_key = self._arch_key
        cached = self.cache.get(point_key, arch_key)
        if cached is not None:
            profile, result = cached
        else:
            start = time.perf_counter()
            with tracer().span(
                "campaign.point", workload=workload.name, seed=seed
            ):
                trace = _memoized_trace(
                    workload, config, seed, self.scale, point_key
                )
                profile = self.cache.get_profile(point_key)
                if profile is None:
                    with metrics().timer("phase.profile"):
                        profile = analyze_trace(
                            trace, workload=workload.name,
                            parameters=dict(config),
                        )
                result = self._simulator.run(
                    trace, workload=workload.name, parameters=dict(config)
                )
            elapsed = time.perf_counter() - start
            metrics().inc("campaign.points.simulated")
            # Simulated (deterministic) kernel time, not wall-clock:
            # serial and --jobs N campaigns observe the exact same
            # values, so the shipped histogram deltas merge to a
            # bit-identical snapshot at any worker count.
            metrics().observe(
                "campaign.point.sim_time_s",
                result.time_s,
                {"workload": workload.name},
            )
            log.debug(
                "point simulated",
                extra={"ctx": {
                    "workload": workload.name,
                    "point": point_key,
                    "seconds": round(elapsed, 3),
                }},
            )
            self.doe_run_seconds[workload.name] = (
                self.doe_run_seconds.get(workload.name, 0.0) + elapsed
            )
            self.cache.put(point_key, arch_key, profile, result)
        return TrainingRow(
            workload=workload.name,
            parameters=dict(config),
            profile=profile,
            arch=self.arch,
            result=result,
        )

    # --------------------------------------------------------- campaigns

    def run(
        self,
        workload: Workload,
        configs: Sequence[Mapping[str, float]] | None = None,
        *,
        jobs: int | None = None,
    ) -> TrainingSet:
        """Run a workload's DoE campaign (default: its CCD, Table 4 sizes).

        With ``jobs > 1`` (or a campaign-level ``jobs`` setting) the
        uncached points are simulated in worker processes and merged back
        into the cache in configuration order, producing a
        :class:`TrainingSet` identical to a serial run.
        """
        if configs is None:
            with metrics().timer("phase.doe"):
                space = ParameterSpace.of_workload(workload)
                configs = central_composite(space)
        if not configs:
            raise CampaignError("campaign needs at least one configuration")
        jobs_n = self.jobs if jobs is None else resolve_jobs(jobs)
        points: list[tuple[dict, int]] = []
        seen: dict[str, int] = {}
        for config in configs:
            validated = workload.validate_config(config)
            key = _config_key(workload.name, validated, 0)
            replicate = seen.get(key, 0)
            seen[key] = replicate + 1
            points.append((validated, replicate))
        log.info(
            "campaign start",
            extra={"ctx": {
                "workload": workload.name,
                "points": len(points),
                "jobs": jobs_n,
                "cached": len(self.cache),
            }},
        )
        start = time.perf_counter()
        if batch_enabled(self.batch) and self.engine == "fast":
            rows = self._run_points_batched(workload, points, jobs_n)
        elif jobs_n > 1:
            rows = self._run_points_parallel(workload, points, jobs_n)
        else:
            rows = []
            for i, (config, replicate) in enumerate(points, 1):
                rows.append(
                    self.run_point(workload, config, replicate=replicate)
                )
                log.info(
                    "campaign progress",
                    extra={"ctx": {
                        "workload": workload.name,
                        "point": i,
                        "of": len(points),
                    }},
                )
        elapsed = time.perf_counter() - start
        self.wall_seconds[workload.name] = elapsed
        log.info(
            "campaign done",
            extra={"ctx": {
                "workload": workload.name,
                "points": len(points),
                "seconds": round(elapsed, 3),
            }},
        )
        return TrainingSet(rows)

    def _pending_split(
        self,
        workload: Workload,
        points: Sequence[tuple[dict, int]],
    ) -> tuple[list[str], list[tuple[str, dict, int]]]:
        """Point keys of all points + the (key, config, seed) not cached.

        Cache accounting (hits/misses, trace instants) happens here, once
        per point — identical to the serial per-point path's lookups.
        """
        keys: list[str] = []
        pending: list[tuple[str, dict, int]] = []
        for config, replicate in points:
            seed = config_seed(workload.name, config) + replicate
            point_key = _config_key(workload.name, config, seed)
            keys.append(point_key)
            if self.cache.get(point_key, self._arch_key) is None:
                pending.append((point_key, config, seed))
        return keys, pending

    def _merge_memo_deltas(
        self, outputs: Sequence[tuple], memo_before: Mapping[str, int]
    ) -> None:
        """Fold worker-side sim-memo counter activity into this process's
        registry.  map_jobs may have run the jobs in-process (serial
        fallback), in which case the counters already moved here — only
        the part not observed locally is added."""
        m = metrics()
        for name in MEMO_COUNTER_NAMES:
            reported = sum(deltas.get(name, 0) for *_, deltas in outputs)
            missing = reported - (m.count(name) - memo_before[name])
            if missing > 0:
                m.inc(name, missing)

    def _rows_from_cache(
        self,
        workload: Workload,
        points: Sequence[tuple[dict, int]],
        keys: Sequence[str],
    ) -> list[TrainingRow]:
        rows: list[TrainingRow] = []
        for (config, _), point_key in zip(points, keys):
            # record=False: accounting happened at the pending check above;
            # this re-read is bookkeeping, not a campaign-level lookup.
            cached = self.cache.get(point_key, self._arch_key, record=False)
            assert cached is not None
            profile, result = cached
            rows.append(TrainingRow(
                workload=workload.name,
                parameters=dict(config),
                profile=profile,
                arch=self.arch,
                result=result,
            ))
        return rows

    def _run_points_parallel(
        self,
        workload: Workload,
        points: Sequence[tuple[dict, int]],
        jobs_n: int,
    ) -> list[TrainingRow]:
        """Simulate the uncached points in workers, merge in point order."""
        arch_key = self._arch_key
        keys, pending_points = self._pending_split(workload, points)
        pending = [
            (
                point_key,
                (workload, config, seed, self.arch, self.scale,
                 self.engine),
            )
            for point_key, config, seed in pending_points
        ]
        m = metrics()
        memo_before = {name: m.count(name) for name in MEMO_COUNTER_NAMES}
        outputs = map_jobs(
            _simulate_point_job,
            [job for _, job in pending],
            jobs_n=jobs_n,
        )
        self._merge_memo_deltas(outputs, memo_before)
        # Merge in dispatch order so cache contents and timing tallies are
        # independent of worker completion order.
        for i, ((point_key, _), (profile, result, elapsed, _)) in enumerate(
            zip(pending, outputs), 1
        ):
            self.cache.put(point_key, arch_key, profile, result)
            self.doe_run_seconds[workload.name] = (
                self.doe_run_seconds.get(workload.name, 0.0) + elapsed
            )
            log.info(
                "campaign progress",
                extra={"ctx": {
                    "workload": workload.name,
                    "point": i,
                    "of": len(pending),
                }},
            )
        return self._rows_from_cache(workload, points, keys)

    def _run_points_batched(
        self,
        workload: Workload,
        points: Sequence[tuple[dict, int]],
        jobs_n: int,
    ) -> list[TrainingRow]:
        """Simulate the uncached points through the batching scheduler.

        Pending points are split into (at most) ``jobs_n`` contiguous
        chunks; each chunk's phase B replays in one batched kernel
        invocation (:func:`repro.nmcsim.simulate_batch`).  When the
        persistent memo store is configured, pool workers adopt the
        parent's store directory via the executor's ``worker_init``
        hook, so geometry work done by one worker is reused by all.
        Results are bit-identical to per-point simulation.
        """
        keys, pending = self._pending_split(workload, points)
        if pending:
            known_profiles = {}
            for point_key, _config, _seed in pending:
                profile = self.cache.get_profile(point_key)
                if profile is not None:
                    known_profiles[point_key] = profile
            n_chunks = max(1, min(jobs_n, len(pending)))
            base, extra = divmod(len(pending), n_chunks)
            chunks: list[list[tuple[str, dict, int]]] = []
            lo = 0
            for c in range(n_chunks):
                hi = lo + base + (1 if c < extra else 0)
                chunks.append(pending[lo:hi])
                lo = hi
            payloads = [
                (
                    workload, chunk, self.arch, self.scale, self.engine,
                    {
                        pk: known_profiles[pk]
                        for pk, _cfg, _seed in chunk
                        if pk in known_profiles
                    },
                )
                for chunk in chunks
            ]
            m = metrics()
            memo_before = {
                name: m.count(name) for name in MEMO_COUNTER_NAMES
            }
            sdir = store_dir()
            outputs = map_jobs(
                _simulate_batch_job,
                payloads,
                jobs_n=jobs_n,
                chunk=1,
                worker_init=(
                    functools.partial(configure_store, sdir)
                    if sdir is not None else None
                ),
            )
            self._merge_memo_deltas(outputs, memo_before)
            done = 0
            for chunk, (profiles, results, elapsed, _) in zip(
                chunks, outputs
            ):
                for (point_key, _cfg, _seed), profile, result in zip(
                    chunk, profiles, results
                ):
                    self.cache.put(
                        point_key, self._arch_key, profile, result
                    )
                done += len(chunk)
                self.doe_run_seconds[workload.name] = (
                    self.doe_run_seconds.get(workload.name, 0.0) + elapsed
                )
                log.info(
                    "campaign progress",
                    extra={"ctx": {
                        "workload": workload.name,
                        "point": done,
                        "of": len(pending),
                    }},
                )
        return self._rows_from_cache(workload, points, keys)

    def run_all(
        self,
        workloads: Sequence[Workload],
        *,
        jobs: int | None = None,
    ) -> TrainingSet:
        """CCD campaigns for several workloads, concatenated."""
        return TrainingSet.concat(self.run(w, jobs=jobs) for w in workloads)
