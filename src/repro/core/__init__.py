"""NAPEL itself: training pipeline, predictor, and evaluation flows.

* :mod:`dataset` / :mod:`campaign` — phase 2: run the DoE-selected
  simulations and assemble the training set;
* :mod:`pipeline` — phase 3: hyper-parameter-tuned random-forest training;
* :mod:`predictor` — the trained model: profile + architecture -> IPC,
  energy, execution time;
* :mod:`loocv` — the paper's leave-one-application-out accuracy protocol
  (Section 3.3, Figure 5);
* :mod:`suitability` — the NMC-suitability (EDP) use case (Section 3.4,
  Figure 7);
* :mod:`reporting` — plain-text renderings of every paper table/figure.
"""

from .campaign import CampaignCache, SimulationCampaign
from .dataset import TrainingRow, TrainingSet
from .loocv import LoocvResult, evaluate_loocv
from .pipeline import NapelTrainer, TrainedNapel
from .predictor import NapelModel, NapelPrediction
from .suitability import (
    BackendSuitability,
    SuitabilityResult,
    analyze_backend_suitability,
    analyze_suitability,
    format_backend_suitability,
)
from .reporting import format_table
from .serialization import load_model, save_model
from .dse import (
    DesignPoint,
    explore,
    format_exploration,
    grid_space,
    pareto_front,
    random_space,
)
from .search import SearchResult, genetic_search

__all__ = [
    "SimulationCampaign",
    "CampaignCache",
    "TrainingSet",
    "TrainingRow",
    "NapelTrainer",
    "TrainedNapel",
    "NapelModel",
    "NapelPrediction",
    "evaluate_loocv",
    "LoocvResult",
    "analyze_suitability",
    "analyze_backend_suitability",
    "format_backend_suitability",
    "SuitabilityResult",
    "BackendSuitability",
    "format_table",
    "save_model",
    "load_model",
    "explore",
    "grid_space",
    "random_space",
    "pareto_front",
    "format_exploration",
    "DesignPoint",
    "genetic_search",
    "SearchResult",
]
