"""Training-set container: (profile, architecture) -> labels.

One :class:`TrainingRow` per simulated DoE configuration.  The feature
matrix concatenates the 395 application-profile features with the NMC
architectural features (paper Table 1); the labels are IPC and energy.

Energy is learned *per instruction* (J/instr): total kernel energy scales
trivially with the dynamic instruction count, so normalising by it lets the
model focus on the architecture/locality interaction, and the predictor
multiplies back by ``I_offload`` — the same unit change the paper's
execution-time formula applies to IPC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import NMCConfig
from ..errors import CampaignError
from ..ir import OPCODE_LATENCY, Opcode
from ..nmcsim import SimulationResult
from ..profiler import ApplicationProfile
from ..profiler.features import FEATURE_NAMES, TRAFFIC_CACHE_SIZES

#: Mechanistic interaction features: first-order in-order CPI and energy
#: estimates computed from the profile x architecture pair.  They give every
#: learner (NAPEL's forest *and* the Figure 5 baselines, identically) a
#: physically grounded prior that transfers across applications, so the
#: models learn corrections rather than absolute scales.
DERIVED_FEATURE_NAMES = (
    "prior.cpi_exec",
    "prior.miss_per_instr",
    "prior.stall_per_instr",
    "prior.ipc_estimate",
    "prior.log_epi_estimate",
    "prior.bytes_per_instr",
)

#: Column names of the assembled feature matrix: the 395 profile features,
#: the software thread count (known at prediction time, needed because the
#: profile statistics themselves are thread-count-agnostic), the NMC
#: architectural features, and the mechanistic interaction features.
ALL_FEATURE_NAMES: tuple[str, ...] = (
    FEATURE_NAMES
    + ("app.threads",)
    + NMCConfig.ARCH_FEATURE_NAMES
    + DERIVED_FEATURE_NAMES
)


def derived_features(profile: ApplicationProfile, arch: NMCConfig) -> list[float]:
    """First-order mechanistic estimates for one (profile, arch) pair."""
    cpi_exec = sum(
        profile[f"opcode.{int(op)}"] * lat for op, lat in OPCODE_LATENCY.items()
    )
    # Fraction of memory accesses escaping the PE's L1 (profile traffic
    # feature at the largest profiled size not exceeding the L1 capacity).
    eligible = [s for s in TRAFFIC_CACHE_SIZES if s <= arch.l1_bytes]
    size = eligible[-1] if eligible else TRAFFIC_CACHE_SIZES[0]
    l1_escape = profile[f"traffic.bytes_{size}"]
    miss_per_instr = profile["mix.mem_all"] * l1_escape
    # Sequential misses land in the already-open DRAM row (several lines
    # share a row buffer) and skip the activation: the unit-stride fraction
    # of the access stream sees only CAS + burst latency.
    seq_frac = profile["stride.frac_le_1"]
    lines_per_row = max(1, arch.row_buffer_bytes // arch.line_bytes)
    row_hit_frac = seq_frac * (1.0 - 1.0 / lines_per_row)
    timing = arch.timing
    miss_ns = (
        (1.0 - row_hit_frac) * timing.closed_row_access_ns()
        + row_hit_frac * (timing.t_cl_ns + timing.t_bl_ns)
    )
    miss_cycles = miss_ns * arch.frequency_ghz
    # Write-allocate caches fetch on store misses and later write the dirty
    # line back: the write share of the miss stream roughly doubles its
    # DRAM traffic, and the extra bank occupancy delays subsequent misses.
    mem_all = max(profile["mix.mem_all"], 1e-12)
    write_frac = (profile["mix.store"] + profile["mix.atomic"]) / mem_all
    dram_per_instr = miss_per_instr * (1.0 + write_frac)
    stall_per_instr = (
        miss_per_instr * miss_cycles * (1.0 + 0.5 * write_frac)
    )
    # Multi-issue cores retire compute faster; out-of-order cores also
    # overlap misses across their MSHRs (in-order cores block: mshr = 1).
    ipc_estimate = 1.0 / (
        cpi_exec / arch.issue_width
        + stall_per_instr / arch.mshr_entries
    )
    # Energy per instruction: dynamic core energy + DRAM traffic + static
    # power integrated over the estimated cycles (per PE share).  Row hits
    # skip the activation energy too.
    e = arch.energy
    line_bits = arch.line_bytes * 8
    epi_pj = (
        8.0  # mean core op energy (pJ), first order
        + profile["mix.mem_all"] * e.l1_access_pj
        + dram_per_instr * (
            (1.0 - row_hit_frac) * e.dram_activate_pj
            + line_bits * e.dram_rw_pj_per_bit
        )
        + (e.pe_static_w + e.dram_static_w / arch.n_pes)
        * (cpi_exec + stall_per_instr)
        / arch.frequency_ghz  # W * ns = nJ -> x1000 pJ
        * 1000.0
    )
    bytes_per_instr = miss_per_instr * arch.line_bytes
    return [
        cpi_exec,
        miss_per_instr,
        stall_per_instr,
        ipc_estimate,
        math.log(max(epi_pj, 1e-9)),
        bytes_per_instr,
    ]


@dataclass(frozen=True)
class TrainingRow:
    """One simulated (workload-input, architecture) point."""

    workload: str
    parameters: dict
    profile: ApplicationProfile
    arch: NMCConfig
    result: SimulationResult

    @property
    def features(self) -> np.ndarray:
        return np.concatenate([
            self.profile.values,
            [float(self.profile.thread_count)],
            np.asarray(self.arch.feature_vector()),
            np.asarray(derived_features(self.profile, self.arch)),
        ])

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def ipc_per_pe(self) -> float:
        """IPC divided by the PEs actually used — the learned label.

        Aggregate IPC scales with the number of active PEs, which is an
        input parameter, not a learned quantity; normalising by it lets the
        model learn the locality/architecture interaction.
        """
        return self.result.ipc / self.result.n_pes_used

    @property
    def energy_per_instruction(self) -> float:
        return self.result.energy_j / self.result.instructions


class TrainingSet:
    """An ordered collection of training rows with matrix views."""

    def __init__(self, rows: Sequence[TrainingRow]) -> None:
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ----------------------------------------------------------- matrices

    @property
    def feature_names(self) -> tuple[str, ...]:
        return ALL_FEATURE_NAMES

    def X(self) -> np.ndarray:
        """(n, len(ALL_FEATURE_NAMES)) feature matrix."""
        if not self.rows:
            raise CampaignError("training set is empty")
        return np.stack([row.features for row in self.rows])

    def y_ipc(self) -> np.ndarray:
        return np.asarray([row.ipc for row in self.rows])

    def y_ipc_per_pe(self) -> np.ndarray:
        return np.asarray([row.ipc_per_pe for row in self.rows])

    def n_pes_used(self) -> np.ndarray:
        return np.asarray([row.result.n_pes_used for row in self.rows])

    def y_energy_per_instruction(self) -> np.ndarray:
        return np.asarray([row.energy_per_instruction for row in self.rows])

    def groups(self) -> np.ndarray:
        """Workload name of every row (for leave-one-application-out)."""
        return np.asarray([row.workload for row in self.rows])

    # -------------------------------------------------------- combinators

    def workloads(self) -> list[str]:
        """Distinct workload names, in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.workload, None)
        return list(seen)

    def filter(self, workload: str) -> "TrainingSet":
        return TrainingSet([r for r in self.rows if r.workload == workload])

    def exclude(self, workload: str) -> "TrainingSet":
        return TrainingSet([r for r in self.rows if r.workload != workload])

    @classmethod
    def concat(cls, sets: Iterable["TrainingSet"]) -> "TrainingSet":
        rows: list[TrainingRow] = []
        for s in sets:
            rows.extend(s.rows)
        return cls(rows)
