"""Training-set container: (profile, architecture) -> labels.

One :class:`TrainingRow` per simulated DoE configuration.  The feature
matrix layout is owned by the active :class:`~repro.schema.FeatureSchema`
(blocks ``profile`` / ``app`` / ``arch`` / ``prior``); this module
registers the ``app`` and ``prior`` blocks and assembles rows in schema
order.

Energy is learned *per instruction* (J/instr): total kernel energy scales
trivially with the dynamic instruction count, so normalising by it lets the
model focus on the architecture/locality interaction, and the predictor
multiplies back by ``I_offload`` — the same unit change the paper's
execution-time formula applies to IPC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config import NMCConfig
from ..errors import CampaignError
from ..ir import OPCODE_LATENCY
from ..nmcsim import SimulationResult
from ..profiler import ApplicationProfile
from ..profiler.features import TRAFFIC_CACHE_SIZES
from ..schema import FeatureSchema, active_schema, register_block

#: Software-level features known at prediction time.  The thread count is
#: carried alongside the profile because the profile statistics themselves
#: are thread-count-agnostic.
APP_FEATURE_NAMES = ("app.threads",)

#: Mechanistic interaction features: first-order in-order CPI and energy
#: estimates computed from the profile x architecture pair.  They give every
#: learner (NAPEL's forest *and* the Figure 5 baselines, identically) a
#: physically grounded prior that transfers across applications, so the
#: models learn corrections rather than absolute scales.
DERIVED_FEATURE_NAMES = (
    "prior.cpi_exec",
    "prior.miss_per_instr",
    "prior.stall_per_instr",
    "prior.ipc_estimate",
    "prior.log_epi_estimate",
    "prior.bytes_per_instr",
)

register_block(
    "app",
    APP_FEATURE_NAMES,
    description="software-level features known at prediction time",
)
register_block(
    "prior",
    DERIVED_FEATURE_NAMES,
    description="first-order mechanistic (profile x arch) estimates",
)


def derived_features(profile: ApplicationProfile, arch: NMCConfig) -> list[float]:
    """First-order mechanistic estimates for one (profile, arch) pair."""
    cpi_exec = sum(
        profile[f"opcode.{int(op)}"] * lat for op, lat in OPCODE_LATENCY.items()
    )
    # Fraction of memory accesses escaping the PE's L1 (profile traffic
    # feature at the largest profiled size not exceeding the L1 capacity).
    eligible = [s for s in TRAFFIC_CACHE_SIZES if s <= arch.l1_bytes]
    size = eligible[-1] if eligible else TRAFFIC_CACHE_SIZES[0]
    l1_escape = profile[f"traffic.bytes_{size}"]
    miss_per_instr = profile["mix.mem_all"] * l1_escape
    # Sequential misses land in the already-open DRAM row (several lines
    # share a row buffer) and skip the activation: the unit-stride fraction
    # of the access stream sees only CAS + burst latency.
    seq_frac = profile["stride.frac_le_1"]
    lines_per_row = max(1, arch.row_buffer_bytes // arch.line_bytes)
    row_hit_frac = seq_frac * (1.0 - 1.0 / lines_per_row)
    timing = arch.timing
    miss_ns = (
        (1.0 - row_hit_frac) * timing.closed_row_access_ns()
        + row_hit_frac * (timing.t_cl_ns + timing.t_bl_ns)
    )
    miss_cycles = miss_ns * arch.frequency_ghz
    # Write-allocate caches fetch on store misses and later write the dirty
    # line back: the write share of the miss stream roughly doubles its
    # DRAM traffic, and the extra bank occupancy delays subsequent misses.
    mem_all = max(profile["mix.mem_all"], 1e-12)
    write_frac = (profile["mix.store"] + profile["mix.atomic"]) / mem_all
    dram_per_instr = miss_per_instr * (1.0 + write_frac)
    stall_per_instr = (
        miss_per_instr * miss_cycles * (1.0 + 0.5 * write_frac)
    )
    # Multi-issue cores retire compute faster; out-of-order cores also
    # overlap misses across their MSHRs (in-order cores block: mshr = 1).
    ipc_estimate = 1.0 / (
        cpi_exec / arch.issue_width
        + stall_per_instr / arch.mshr_entries
    )
    # Energy per instruction: dynamic core energy + DRAM traffic + static
    # power integrated over the estimated cycles (per PE share).  Row hits
    # skip the activation energy too.
    e = arch.energy
    line_bits = arch.line_bytes * 8
    epi_pj = (
        8.0  # mean core op energy (pJ), first order
        + profile["mix.mem_all"] * e.l1_access_pj
        + dram_per_instr * (
            (1.0 - row_hit_frac) * e.dram_activate_pj
            + line_bits * e.dram_rw_pj_per_bit
        )
        + (e.pe_static_w + e.dram_static_w / arch.n_pes)
        * (cpi_exec + stall_per_instr)
        / arch.frequency_ghz  # W * ns = nJ -> x1000 pJ
        * 1000.0
    )
    bytes_per_instr = miss_per_instr * arch.line_bytes
    return [
        cpi_exec,
        miss_per_instr,
        stall_per_instr,
        ipc_estimate,
        math.log(max(epi_pj, 1e-9)),
        bytes_per_instr,
    ]


def assemble_features(
    profile: ApplicationProfile, arch: NMCConfig
) -> np.ndarray:
    """One model-input row in the canonical block order of the schema.

    This is the single place where the ``profile``/``app``/``arch``/
    ``prior`` blocks are concatenated; both training rows and the
    predictor's serving path go through it, so the two can never drift.
    """
    return np.concatenate([
        profile.values,
        [float(profile.thread_count)],
        np.asarray(arch.feature_vector()),
        np.asarray(derived_features(profile, arch)),
    ])


@dataclass(frozen=True)
class TrainingRow:
    """One simulated (workload-input, architecture) point."""

    workload: str
    parameters: dict
    profile: ApplicationProfile
    arch: NMCConfig
    result: SimulationResult

    @property
    def features(self) -> np.ndarray:
        """The assembled (schema-ordered) feature vector, memoised.

        LOOCV and tuning call :meth:`TrainingSet.X` many times over the
        same rows; the vector (including the ``derived_features`` math) is
        computed once per row and cached on the frozen instance.
        """
        cached = self.__dict__.get("_features")
        if cached is None:
            cached = assemble_features(self.profile, self.arch)
            cached.setflags(write=False)
            object.__setattr__(self, "_features", cached)
        return cached

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def ipc_per_pe(self) -> float:
        """IPC divided by the PEs actually used — the learned label.

        Aggregate IPC scales with the number of active PEs, which is an
        input parameter, not a learned quantity; normalising by it lets the
        model learn the locality/architecture interaction.
        """
        return self.result.ipc / self.result.n_pes_used

    @property
    def energy_per_instruction(self) -> float:
        return self.result.energy_j / self.result.instructions


class TrainingSet:
    """An ordered collection of training rows with matrix views.

    Feature assembly is *columnar*: the full matrix is built once (one
    ``np.stack`` over the memoised row vectors) and cached; ``filter`` /
    ``exclude`` / ``concat`` produce row-index views over the shared
    matrix instead of reassembling per subset — the repeated-subset
    pattern LOOCV and the suitability analysis hit on every fold.
    """

    def __init__(
        self,
        rows: Sequence[TrainingRow],
        *,
        schema: FeatureSchema | None = None,
    ) -> None:
        self.rows = list(rows)
        self.schema = schema if schema is not None else active_schema()
        #: Root set owning the shared feature matrix (None = self is root).
        self._root: TrainingSet | None = None
        #: Root-relative row indices (None = identity).
        self._row_index: np.ndarray | None = None
        self._X_cache: np.ndarray | None = None

    @classmethod
    def _view(
        cls, parent: "TrainingSet", indices: Sequence[int]
    ) -> "TrainingSet":
        """A subset sharing the parent's (root's) feature matrix."""
        root = parent._root if parent._root is not None else parent
        idx = np.asarray(indices, dtype=np.intp)
        if parent._row_index is not None:
            idx = parent._row_index[idx]
        ts = cls.__new__(cls)
        ts.rows = [root.rows[i] for i in idx]
        ts.schema = root.schema
        ts._root = root
        ts._row_index = idx
        ts._X_cache = None
        return ts

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getstate__(self) -> dict:
        # Views don't survive pickling as views: workers get a plain set
        # (rows carry their memoised vectors, so nothing is recomputed).
        return {"rows": self.rows, "schema": self.schema}

    def __setstate__(self, state: dict) -> None:
        self.rows = state["rows"]
        self.schema = state["schema"]
        self._root = None
        self._row_index = None
        self._X_cache = None

    # ----------------------------------------------------------- matrices

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self.schema.names

    def _matrix(self) -> np.ndarray:
        """The root's full feature matrix, assembled once."""
        root = self._root if self._root is not None else self
        if root._X_cache is None:
            M = np.stack([row.features for row in root.rows])
            root.schema.validate_matrix(M, context="training set")
            M.setflags(write=False)
            root._X_cache = M
        return root._X_cache

    def X(self) -> np.ndarray:
        """(n, len(schema)) feature matrix (read-only; copy to mutate)."""
        if not self.rows:
            raise CampaignError("training set is empty")
        if self._root is None:
            return self._matrix()
        if self._X_cache is None:
            sub = self._matrix()[self._row_index]
            sub.setflags(write=False)
            self._X_cache = sub
        return self._X_cache

    def y_ipc(self) -> np.ndarray:
        return np.asarray([row.ipc for row in self.rows])

    def y_ipc_per_pe(self) -> np.ndarray:
        return np.asarray([row.ipc_per_pe for row in self.rows])

    def n_pes_used(self) -> np.ndarray:
        return np.asarray([row.result.n_pes_used for row in self.rows])

    def y_energy_per_instruction(self) -> np.ndarray:
        return np.asarray([row.energy_per_instruction for row in self.rows])

    def groups(self) -> np.ndarray:
        """Workload name of every row (for leave-one-application-out)."""
        return np.asarray([row.workload for row in self.rows])

    # -------------------------------------------------------- combinators

    def workloads(self) -> list[str]:
        """Distinct workload names, in first-appearance order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.workload, None)
        return list(seen)

    def filter(self, workload: str) -> "TrainingSet":
        return TrainingSet._view(
            self,
            [i for i, r in enumerate(self.rows) if r.workload == workload],
        )

    def exclude(self, workload: str) -> "TrainingSet":
        return TrainingSet._view(
            self,
            [i for i, r in enumerate(self.rows) if r.workload != workload],
        )

    def _root_indices(self) -> np.ndarray:
        if self._row_index is not None:
            return self._row_index
        return np.arange(len(self.rows), dtype=np.intp)

    @classmethod
    def concat(cls, sets: Iterable["TrainingSet"]) -> "TrainingSet":
        sets = list(sets)
        if sets:
            roots = {s._root if s._root is not None else s for s in sets}
            if len(roots) == 1:
                # All pieces view one shared matrix: stay columnar.
                root = roots.pop()
                return cls._view(
                    root, np.concatenate([s._root_indices() for s in sets])
                )
        rows: list[TrainingRow] = []
        for s in sets:
            rows.extend(s.rows)
        return cls(rows)
