"""Prometheus text exposition (version 0.0.4) for metrics snapshots.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot` dict
into the plain-text format every Prometheus-compatible scraper ingests:

* counters   -> ``repro_<name>_total``            (``# TYPE ... counter``)
* gauges     -> ``repro_<name>``                  (``# TYPE ... gauge``)
* timers     -> ``repro_<name>_seconds_count/_sum`` (``# TYPE ... summary``)
* histograms -> ``repro_<name>_bucket{le=...}`` cumulative buckets plus
  ``_sum``/``_count``                             (``# TYPE ... histogram``)

Dotted registry names map to underscores (``serve.requests`` ->
``repro_serve_requests_total``); a trailing ``_s`` unit suffix becomes
``_seconds``.  Labels encoded in registry keys (``name{k="v"}``) pass
through as Prometheus labels.  Output is deterministically ordered and
each metric family gets exactly one ``# TYPE`` line.

:func:`parse_exposition` is the matching strict parser used by tests and
``scripts/check_prom.py`` to validate what the server actually serves —
it fails on malformed lines, unknown sample names, duplicate series and
duplicate ``# TYPE`` declarations.
"""

from __future__ import annotations

import math
import re

from .metrics import split_metric_key

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(,|$)'
)


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Registry name -> Prometheus metric name.

    Dots and other invalid characters become underscores; a trailing
    ``_s`` unit marker expands to ``_seconds``; ``prefix`` namespaces
    every exported family.
    """
    if name.endswith("_s"):
        name = name[:-2] + "_seconds"
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    out = prefix + cleaned
    if not _NAME_OK.match(out):
        raise ValueError(f"cannot build a valid metric name from {name!r}")
    return out


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(labels[key])}"' for key in sorted(labels)
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _families(section: dict, prefix: str) -> dict[str, list]:
    """Group a snapshot section's series by exported family name."""
    families: dict[str, list] = {}
    for key in sorted(section):
        name, labels = split_metric_key(key)
        families.setdefault(sanitize_metric_name(name, prefix), []).append(
            (labels, section[key])
        )
    return families


def render_prometheus(
    snapshot: dict, *, prefix: str = "repro_"
) -> str:
    """A snapshot as Prometheus text exposition format 0.0.4."""
    lines: list[str] = []

    for family, series in sorted(
        _families(snapshot.get("counters", {}), prefix).items()
    ):
        family += "_total"
        lines.append(f"# TYPE {family} counter")
        for labels, value in series:
            lines.append(f"{family}{_labels_text(labels)} {_fmt(value)}")

    for family, series in sorted(
        _families(snapshot.get("gauges", {}), prefix).items()
    ):
        lines.append(f"# TYPE {family} gauge")
        for labels, value in series:
            lines.append(f"{family}{_labels_text(labels)} {_fmt(value)}")

    for family, series in sorted(
        _families(snapshot.get("timers", {}), prefix).items()
    ):
        if not family.endswith("_seconds"):
            family += "_seconds"
        lines.append(f"# TYPE {family} summary")
        for labels, stat in series:
            tag = _labels_text(labels)
            lines.append(f"{family}_sum{tag} {_fmt(stat['total_s'])}")
            lines.append(f"{family}_count{tag} {_fmt(stat['count'])}")

    for family, series in sorted(
        _families(snapshot.get("histograms", {}), prefix).items()
    ):
        lines.append(f"# TYPE {family} histogram")
        for labels, snap in series:
            cumulative = 0
            for bound, n in zip(snap["bounds"], snap["counts"]):
                cumulative += n
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt(bound)
                lines.append(
                    f"{family}_bucket{_labels_text(bucket_labels)} "
                    f"{cumulative}"
                )
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{family}_bucket{_labels_text(bucket_labels)} "
                f"{snap['count']}"
            )
            tag = _labels_text(labels)
            lines.append(f"{family}_sum{tag} {_fmt(snap['sum'])}")
            lines.append(f"{family}_count{tag} {_fmt(snap['count'])}")

    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------- validation


class ExpositionError(ValueError):
    """The text failed strict exposition-format validation."""


def _parse_labels(body: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL.match(body, pos)
        if match is None:
            raise ExpositionError(
                f"line {line_no}: malformed label block {{{body}}}"
            )
        key = match.group("key")
        if key in labels:
            raise ExpositionError(
                f"line {line_no}: duplicate label {key!r}"
            )
        labels[key] = match.group("value")
        pos = match.end()
    return labels


def parse_exposition(text: str) -> dict:
    """Strictly parse exposition text; raise :class:`ExpositionError`.

    Returns ``{"types": {family: type}, "samples": {series_key: value}}``
    where ``series_key`` is the canonical ``name{sorted labels}`` form.
    Checks: every line is a comment or a valid sample, sample names
    belong to a declared family, no family is declared twice, and no
    series repeats.
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ExpositionError(
                        f"line {line_no}: malformed TYPE comment"
                    )
                _, _, family, kind = parts
                if kind not in {
                    "counter", "gauge", "histogram", "summary", "untyped"
                }:
                    raise ExpositionError(
                        f"line {line_no}: unknown metric type {kind!r}"
                    )
                if family in types:
                    raise ExpositionError(
                        f"line {line_no}: duplicate TYPE for {family!r}"
                    )
                types[family] = kind
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ExpositionError(
                f"line {line_no}: malformed sample line {line!r}"
            )
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no)
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            raise ExpositionError(
                f"line {line_no}: invalid sample value {raw_value!r}"
            ) from None
        family = _family_of(name, types)
        if family is None:
            raise ExpositionError(
                f"line {line_no}: sample {name!r} has no TYPE declaration"
            )
        series_key = name + _labels_text(labels)
        if series_key in samples:
            raise ExpositionError(
                f"line {line_no}: duplicate series {series_key!r}"
            )
        samples[series_key] = value
    return {"types": types, "samples": samples}


def _family_of(sample_name: str, types: dict[str, str]) -> str | None:
    """The declared family a sample line belongs to, if any."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) in {"histogram", "summary"}:
                return base
    return None
