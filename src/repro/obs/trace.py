"""Event-level tracing: Chrome-trace / Perfetto timelines of a run.

Where :mod:`repro.obs.metrics` records *aggregate* counters and timer
totals, this module records *events*: every ``phase.*`` span, campaign
point, cache hit, tuning combination and LOOCV fold becomes a timed entry
in a `Chrome trace-event JSON
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
document that loads directly in ``ui.perfetto.dev`` or
``chrome://tracing``.

Two timelines, two clock domains:

* **pipeline** — wall-clock events (``ts`` = microseconds since the
  tracer's epoch on the monotonic clock).  Every
  :class:`~repro.obs.metrics.TimerSpan` exit mirrors itself here, so the
  Perfetto lanes carry exactly the ``phase.*`` names the run manifest
  reports as aggregate timings.
* **nmcsim** — opt-in simulated-hardware events on the *simulated*
  nanosecond clock (``ts`` = simulated microseconds since kernel start),
  kept on a separate synthetic process (:data:`HW_PID`) so the two clock
  domains never share a lane.  Per-PE busy/stall slices, DRAM vault
  occupancy windows and L1 miss counter tracks; an event-count sampling
  cap (:data:`DEFAULT_HW_CAP`, overridable via ``REPRO_TRACE_HW_CAP``)
  per simulation keeps store-heavy kernels from blowing up the buffer.

Activation is explicit (``repro ... --trace PATH`` or ``REPRO_TRACE=PATH``
in the environment); with tracing disabled every recording call is a
single attribute check.  The buffer is bounded (:data:`DEFAULT_MAX_EVENTS`
events, ``REPRO_TRACE_BUFFER`` overrides); overflowing events are counted
in :attr:`Tracer.dropped`, never silently lost.

Parallel runs reuse the executor's delta-shipping channel: a pool worker
:meth:`marks <Tracer.mark>` its buffer before a job, ships
:meth:`events_since <Tracer.events_since>` back with the result, and the
parent :meth:`adopts <Tracer.adopt>` them onto a stable ``pid``-per-worker
lane — so a ``--jobs N`` trace contains exactly the same event names and
counts as a serial run of the same work, one lane per worker.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..errors import TracingError

#: Environment variable holding the trace output path (activates tracing).
TRACE_ENV_VAR = "REPRO_TRACE"
#: Set truthy to include the simulated-hardware (nmcsim) timeline.
TRACE_HW_ENV_VAR = "REPRO_TRACE_HW"
#: Per-simulation event cap of the hardware timeline.
TRACE_HW_CAP_ENV_VAR = "REPRO_TRACE_HW_CAP"
#: Shared monotonic epoch so worker processes align with the parent.
TRACE_EPOCH_ENV_VAR = "REPRO_TRACE_EPOCH"
#: Overall event-buffer bound.
TRACE_BUFFER_ENV_VAR = "REPRO_TRACE_BUFFER"

#: Default bound on the in-memory event buffer (per process).
DEFAULT_MAX_EVENTS = 1_000_000
#: Default hardware-timeline event cap per simulation run.
DEFAULT_HW_CAP = 20_000

#: Synthetic pid of the simulated-hardware clock domain.  Above any real
#: Linux pid (pid_max <= 2^22), so it can never collide with a worker.
HW_PID = 1 << 26
#: Synthetic pid base for remapped worker lanes (lane n -> base + n).
WORKER_PID_BASE = 1 << 25
#: Hardware-timeline tid of DRAM vault ``v`` is ``HW_TID_VAULT_BASE + v``
#: (PE ``p`` uses tid ``p`` directly).
HW_TID_VAULT_BASE = 1000

#: Event phases this tracer emits / the validator accepts.
KNOWN_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})

#: pid stride separating the lanes of different files in a merged trace.
MERGE_PID_STRIDE = 1 << 28


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class TraceSpan:
    """One ``with tracer.span(name):`` duration; emits an ``X`` event."""

    __slots__ = ("tracer", "name", "cat", "args", "_start_us")

    def __init__(
        self, tracer: "Tracer", name: str, cat: str, args: dict | None
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start_us: float = 0.0

    def __enter__(self) -> "TraceSpan":
        self._start_us = self.tracer.now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.complete(
            self.name,
            self._start_us,
            self.tracer.now_us() - self._start_us,
            cat=self.cat,
            args=self.args,
        )


class _NullSpan:
    """No-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded buffer of Chrome trace events with snapshot shipping.

    All recording methods are no-ops while :attr:`enabled` is false, so
    instrumentation can stay unconditional in hot paths.  Thread-safe:
    the buffer append is the only shared mutation and takes a lock.
    """

    def __init__(
        self,
        *,
        max_events: int | None = None,
        epoch: float | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []
        #: Events rejected because the buffer bound was hit.
        self.dropped = 0
        #: Hardware-timeline events rejected by per-simulation caps.
        self.hw_dropped = 0
        self.path: Path | None = None
        self.max_events = (
            max_events
            if max_events is not None
            else _env_int(TRACE_BUFFER_ENV_VAR, DEFAULT_MAX_EVENTS)
        )
        if epoch is None:
            raw = os.environ.get(TRACE_EPOCH_ENV_VAR, "").strip()
            try:
                epoch = float(raw) if raw else None
            except ValueError:
                epoch = None
        self._epoch = epoch if epoch is not None else time.monotonic()
        self._tids: dict[int, int] = {}
        env_path = os.environ.get(TRACE_ENV_VAR, "").strip()
        self._enabled = bool(env_path)
        if env_path:
            self.path = Path(env_path)

    # --------------------------------------------------------- activation

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, path: str | Path | None = None) -> None:
        if path is not None:
            self.path = Path(path)
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @property
    def hw_enabled(self) -> bool:
        """Whether the opt-in simulated-hardware timeline is active."""
        return self._enabled and bool(
            os.environ.get(TRACE_HW_ENV_VAR, "").strip()
        )

    # ------------------------------------------------------------- clocks

    def now_us(self) -> float:
        """Pipeline-clock timestamp: microseconds since the epoch."""
        return (time.monotonic() - self._epoch) * 1e6

    def to_ts_us(self, monotonic_s: float) -> float:
        """Convert a :func:`time.monotonic` reading to a trace timestamp."""
        return (monotonic_s - self._epoch) * 1e6

    def _tid(self) -> int:
        """Small stable per-thread lane id (0 = first thread seen)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    # ---------------------------------------------------------- recording

    def _append(self, event: dict) -> bool:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return False
            self._events.append(event)
            return True

    def complete(
        self,
        name: str,
        start_us: float,
        dur_us: float,
        *,
        cat: str = "pipeline",
        args: Mapping | None = None,
        pid: int | None = None,
        tid: int | None = None,
    ) -> None:
        """Record one ``X`` (complete duration) event."""
        if not self._enabled:
            return
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": round(start_us, 3),
            "dur": round(max(0.0, dur_us), 3),
            "pid": os.getpid() if pid is None else pid,
            "tid": self._tid() if tid is None else tid,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def span(self, name: str, *, cat: str = "pipeline", **args):
        """Context manager emitting an ``X`` event on exit."""
        if not self._enabled:
            return _NULL_SPAN
        return TraceSpan(self, name, cat, args or None)

    def instant(
        self,
        name: str,
        *,
        cat: str = "pipeline",
        args: Mapping | None = None,
        scope: str = "t",
    ) -> None:
        """Record one ``i`` (instant) event."""
        if not self._enabled:
            return
        event = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": round(self.now_us(), 3),
            "s": scope,
            "pid": os.getpid(),
            "tid": self._tid(),
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def counter(
        self,
        name: str,
        values: Mapping[str, float],
        *,
        ts_us: float | None = None,
        cat: str = "pipeline",
        pid: int | None = None,
    ) -> None:
        """Record one ``C`` (counter-track sample) event."""
        if not self._enabled:
            return
        self._append({
            "ph": "C",
            "name": name,
            "cat": cat,
            "ts": round(self.now_us() if ts_us is None else ts_us, 3),
            "pid": os.getpid() if pid is None else pid,
            "tid": 0,
            "args": {k: float(v) for k, v in values.items()},
        })

    def hw_timeline(self) -> "HardwareTimeline | None":
        """A fresh per-simulation hardware timeline, or None when off."""
        if not self.hw_enabled:
            return None
        return HardwareTimeline(
            self, cap=_env_int(TRACE_HW_CAP_ENV_VAR, DEFAULT_HW_CAP)
        )

    # ----------------------------------------------------- delta shipping

    def mark(self) -> int:
        """Current buffer length; pass to :meth:`events_since` later."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> list[dict]:
        """Copies of the events recorded since :meth:`mark` was taken."""
        with self._lock:
            return [dict(e) for e in self._events[mark:]]

    def adopt(self, events: Iterable[Mapping], *, lane: int | None = None) -> None:
        """Merge events shipped from a worker process into this buffer.

        Pipeline events (real worker pids) are remapped onto the stable
        synthetic lane ``WORKER_PID_BASE + lane``; hardware-timeline
        events (``pid >= HW_PID``) keep their clock-domain pid so the
        simulated lanes stay separate from the wall-clock ones.
        """
        if not self._enabled:
            return
        for event in events:
            event = dict(event)
            pid = event.get("pid")
            if (
                lane is not None
                and isinstance(pid, int)
                and pid < HW_PID
            ):
                event["pid"] = WORKER_PID_BASE + lane
            self._append(event)

    # ------------------------------------------------------------- output

    @property
    def event_count(self) -> int:
        with self._lock:
            return len(self._events)

    def _metadata_events(self, events: Sequence[Mapping]) -> list[dict]:
        """Process/thread-name ``M`` events derived from the buffer."""
        out: list[dict] = []
        pids = sorted(
            {e["pid"] for e in events if isinstance(e.get("pid"), int)}
        )
        for pid in pids:
            if pid == HW_PID:
                name = "nmcsim (simulated time; 1 us = 1 simulated us)"
            elif WORKER_PID_BASE <= pid < HW_PID:
                name = f"worker {pid - WORKER_PID_BASE}"
            else:
                name = "repro pipeline"
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        hw_tids = sorted({
            e["tid"] for e in events
            if e.get("pid") == HW_PID and isinstance(e.get("tid"), int)
        })
        for tid in hw_tids:
            lane = (
                f"vault {tid - HW_TID_VAULT_BASE}"
                if tid >= HW_TID_VAULT_BASE else f"pe {tid}"
            )
            out.append({
                "ph": "M", "name": "thread_name", "pid": HW_PID, "tid": tid,
                "args": {"name": lane},
            })
        return out

    def to_json_dict(self) -> dict:
        """The complete trace document (Chrome trace-event JSON object)."""
        from .. import __version__

        with self._lock:
            events = [dict(e) for e in self._events]
        return {
            "traceEvents": self._metadata_events(events) + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "repro_version": __version__,
                "clock_domains": {
                    "pipeline": "wall-clock us since tracer epoch",
                    "nmcsim": "simulated us since kernel start "
                              f"(pid {HW_PID})",
                },
                "events": len(events),
                "dropped": self.dropped,
                "hw_dropped": self.hw_dropped,
            },
        }

    def write(self, path: str | Path | None = None) -> Path:
        """Atomically write the trace JSON; returns the path written."""
        path = Path(path) if path is not None else self.path
        if path is None:
            raise TracingError(
                "no trace output path configured (pass one to write() or "
                f"activate tracing with --trace / {TRACE_ENV_VAR})"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.to_json_dict()) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def rotate(self, path: str | Path) -> Path:
        """Write the buffered events to ``path`` and clear the buffer.

        The take-and-clear is atomic under the buffer lock, so events
        recorded concurrently with a rotation land in the *next* file
        rather than being lost or duplicated.  Long-running processes
        (``repro serve --trace``) call this when the buffer approaches
        its bound, producing a numbered sequence of trace files that
        ``repro trace --merge`` can stitch back together.
        """
        from .. import __version__

        with self._lock:
            events = self._events
            self._events = []
            dropped, self.dropped = self.dropped, 0
        doc = {
            "traceEvents": self._metadata_events(events) + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "repro_version": __version__,
                "rotated": True,
                "events": len(events),
                "dropped": dropped,
                "hw_dropped": self.hw_dropped,
            },
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path


class HardwareTimeline:
    """Per-simulation emitter of simulated-clock (nmcsim) events.

    Timestamps are simulated nanoseconds converted to trace microseconds
    (``ts = ns / 1000``), attached to the :data:`HW_PID` synthetic
    process.  ``cap`` bounds the number of events one simulation may
    emit; excess events are counted, not buffered, and folded into
    :attr:`Tracer.hw_dropped` by :meth:`close`.
    """

    __slots__ = ("tracer", "cap", "emitted", "dropped")

    def __init__(self, tracer: Tracer, *, cap: int = DEFAULT_HW_CAP) -> None:
        self.tracer = tracer
        self.cap = cap
        self.emitted = 0
        self.dropped = 0

    def _budget(self) -> bool:
        if self.emitted >= self.cap:
            self.dropped += 1
            return False
        self.emitted += 1
        return True

    def slice(
        self,
        tid: int,
        name: str,
        start_ns: float,
        end_ns: float,
        **args,
    ) -> None:
        """One busy/stall/occupancy interval on hardware lane ``tid``."""
        if not self._budget():
            return
        self.tracer.complete(
            name,
            start_ns / 1e3,
            (end_ns - start_ns) / 1e3,
            cat="nmcsim",
            args=args or None,
            pid=HW_PID,
            tid=tid,
        )

    def counter(
        self, name: str, values: Mapping[str, float], ts_ns: float
    ) -> None:
        """One counter-track sample on the simulated clock."""
        if not self._budget():
            return
        self.tracer.counter(
            name, values, ts_us=ts_ns / 1e3, cat="nmcsim", pid=HW_PID
        )

    def close(self) -> None:
        """Fold this simulation's drop count into the tracer's total."""
        if self.dropped:
            self.tracer.hw_dropped += self.dropped
            self.dropped = 0


# ------------------------------------------------------------- the global

_GLOBAL: Tracer | None = None
_GLOBAL_LOCK = threading.Lock()


def tracer() -> Tracer:
    """The process-global :class:`Tracer` (created lazily)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = Tracer()
    return _GLOBAL


def activate_tracing(
    path: str | Path, *, hw: bool = False
) -> Tracer:
    """Enable the global tracer writing to ``path``.

    Exports ``REPRO_TRACE`` (and the shared epoch) into the environment
    so pool worker processes — fork *or* spawn — activate themselves and
    timestamp against the same monotonic origin.
    """
    t = tracer()
    os.environ[TRACE_ENV_VAR] = str(path)
    os.environ[TRACE_EPOCH_ENV_VAR] = repr(t._epoch)
    if hw:
        os.environ[TRACE_HW_ENV_VAR] = "1"
    t.enable(path)
    return t


def reset_tracing() -> None:
    """Disable tracing, drop the global buffer and clear the env vars."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = None
    for var in (TRACE_ENV_VAR, TRACE_HW_ENV_VAR, TRACE_EPOCH_ENV_VAR):
        os.environ.pop(var, None)


# --------------------------------------------------- trace-file utilities

def _trace_events(data) -> list:
    """The event list of a loaded trace (object or bare-array format)."""
    if isinstance(data, list):
        return data
    if isinstance(data, Mapping) and isinstance(
        data.get("traceEvents"), list
    ):
        return data["traceEvents"]
    raise TracingError(
        "not a Chrome trace: expected a JSON object with a 'traceEvents' "
        "list (or a bare event array)"
    )


def validate_trace(data, *, source: str = "<trace>") -> int:
    """Check ``data`` against the Chrome trace-event schema.

    Returns the number of events; raises :class:`TracingError` naming the
    first offending events otherwise.
    """
    events = _trace_events(data)
    errors: list[str] = []
    for i, event in enumerate(events):
        if len(errors) >= 5:
            errors.append("... (further errors suppressed)")
            break
        if not isinstance(event, Mapping):
            errors.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"event {i} (ph={ph}): missing or empty 'name'")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                errors.append(f"event {i}: {key!r} is not an integer")
        if ph in ("X", "i", "I", "C", "B", "E"):
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"event {i} (ph={ph}): missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"event {i} (ph=X): 'dur' must be a number >= 0"
                )
        if ph == "C" and not isinstance(event.get("args"), Mapping):
            errors.append(f"event {i} (ph=C): counter needs an 'args' map")
    if errors:
        raise TracingError(
            f"{source}: invalid trace ({len(errors)} problem(s)):\n  "
            + "\n  ".join(errors)
        )
    return len(events)


def merge_traces(docs: Sequence, *, sources: Sequence[str] = ()) -> dict:
    """Merge several trace documents into one.

    Each input's pids are offset by :data:`MERGE_PID_STRIDE` x its index,
    so the files' lanes stay separate in the merged timeline.
    """
    merged: list[dict] = []
    for idx, doc in enumerate(docs):
        source = sources[idx] if idx < len(sources) else f"trace {idx}"
        for event in _trace_events(doc):
            event = dict(event)
            if isinstance(event.get("pid"), int):
                event["pid"] = event["pid"] + idx * MERGE_PID_STRIDE
            if event.get("ph") == "M" and event.get("name") == "process_name":
                args = dict(event.get("args") or {})
                args["name"] = f"{args.get('name', 'process')} [{source}]"
                event["args"] = args
            merged.append(event)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def summarize_trace(data, *, top: int = 15) -> list[dict]:
    """Top-``top`` span names by *self time* (duration minus children).

    Nesting is reconstructed per ``(pid, tid)`` lane from the ``X``
    events' timestamps, so a ``phase.train`` span's self time excludes
    the ``ml.grid_search`` spans it contains.
    """
    lanes: dict[tuple, list[dict]] = {}
    for event in _trace_events(data):
        if event.get("ph") != "X":
            continue
        lanes.setdefault(
            (event.get("pid", 0), event.get("tid", 0)), []
        ).append(event)
    stats: dict[str, dict] = {}
    for events in lanes.values():
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[str, float]] = []
        for event in events:
            name, ts, dur = event["name"], event["ts"], event["dur"]
            while stack and stack[-1][1] <= ts + 1e-9:
                stack.pop()
            stat = stats.setdefault(
                name, {"name": name, "count": 0, "total_us": 0.0,
                       "self_us": 0.0}
            )
            stat["count"] += 1
            stat["total_us"] += dur
            stat["self_us"] += dur
            if stack:
                stats[stack[-1][0]]["self_us"] -= dur
            stack.append((name, ts + dur))
    ranked = sorted(stats.values(), key=lambda s: -s["self_us"])[:top]
    for stat in ranked:
        stat["total_us"] = round(stat["total_us"], 3)
        stat["self_us"] = round(stat["self_us"], 3)
    return ranked


def summarize_serve_requests(data) -> dict:
    """Request/batch statistics of a ``repro serve --trace`` file.

    Reads the ``serve.request`` spans (args carry ``request_id``,
    ``model``, ``route``, ``status`` and, when microbatched,
    ``batch_id``) and the ``serve.predict_batch`` spans (args carry
    ``batch_id`` + the coalesced ``request_ids``), checks that the
    parent->batch links are consistent both ways, and aggregates
    latency per ``model x route x status`` group.
    """
    requests: list[dict] = []
    batches: dict[str, dict] = {}
    for event in _trace_events(data):
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        if event.get("name") == "serve.request":
            # The serve.request *timer* span mirrors into the trace too
            # (cat "metrics", no args); only the server's request spans
            # carry a request_id and belong in this summary.
            if not args.get("request_id"):
                continue
            requests.append({**args, "dur_us": event.get("dur", 0.0)})
        elif event.get("name") == "serve.predict_batch":
            batch_id = args.get("batch_id")
            if batch_id:
                batches[batch_id] = {
                    "request_ids": list(args.get("request_ids") or ()),
                    "rows": args.get("rows", 0),
                    "dur_us": event.get("dur", 0.0),
                }
    groups: dict[tuple, dict] = {}
    unlinked = 0
    for req in requests:
        key = (
            req.get("model") or "-",
            req.get("route") or "-",
            str(req.get("status", "-")),
        )
        group = groups.setdefault(
            key,
            {
                "model": key[0], "route": key[1], "status": key[2],
                "count": 0, "total_us": 0.0, "max_us": 0.0,
            },
        )
        group["count"] += 1
        group["total_us"] += req["dur_us"]
        group["max_us"] = max(group["max_us"], req["dur_us"])
        batch_id = req.get("batch_id")
        if batch_id:
            batch = batches.get(batch_id)
            if batch is None or (
                req.get("request_id") not in batch["request_ids"]
            ):
                unlinked += 1
    for group in groups.values():
        group["total_us"] = round(group["total_us"], 3)
        group["max_us"] = round(group["max_us"], 3)
    batch_sizes = [len(b["request_ids"]) for b in batches.values()]
    return {
        "requests": len(requests),
        "batches": len(batches),
        "mean_requests_per_batch": (
            round(sum(batch_sizes) / len(batch_sizes), 2)
            if batch_sizes else None
        ),
        "unlinked_requests": unlinked,
        "groups": sorted(
            groups.values(),
            key=lambda g: (g["model"], g["route"], g["status"]),
        ),
    }


def load_trace(path: str | Path) -> dict:
    """Load a trace file; raises :class:`TracingError` on unreadable JSON."""
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise TracingError(f"cannot read trace {path}: {exc}") from exc
    except ValueError as exc:
        raise TracingError(f"{path} is not valid JSON: {exc}") from exc
