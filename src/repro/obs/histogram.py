"""Fixed-bucket log-scaled histograms with exact snapshot/diff/merge.

The metrics registry's third primitive (after counters and timer spans):
a :class:`Histogram` buckets observations — request latencies, batch
sizes, simulated kernel times — into a *fixed* log-scaled bound ladder
so that histograms recorded in different processes are always
bucket-compatible and can be merged exactly.

Delta-shipping contract (the same one counters and timers honour):
bucket counts are integers, so ``diff``/``merge`` arithmetic is exact
under any merge order — a ``--jobs N`` campaign produces histogram
snapshots **bit-identical** to a serial run of the same work.  The sum
of observations would normally break that promise (float addition is
not associative), so the histogram keeps the sum as an *exact* integer
in units of 2^-1074 (the smallest positive double): every finite float
converts losslessly, integer addition is associative, and the float
``sum`` every snapshot reports is that exact value correctly rounded
once.

Exemplars: an observation may attach a small JSON dict (request id,
trace id) to its bucket — one exemplar per bucket, newest wins — so a
latency histogram can point straight at a concrete slow request.
Exemplars are annotations, not samples: they are carried through
``merge`` (newest timestamp wins) but never participate in the
bit-identity contract.
"""

from __future__ import annotations

import bisect
import math
from fractions import Fraction
from typing import Mapping, Sequence

#: Scale turning any finite double into an exact integer (2^1074 is the
#: reciprocal of the smallest positive subnormal double).
_SUM_SCALE_BITS = 1074
_SUM_SCALE = 1 << _SUM_SCALE_BITS


def _to_scaled(value: float) -> int:
    """``value`` as an exact integer multiple of 2^-1074."""
    frac = Fraction(value)  # exact for any finite float
    return (frac.numerator * _SUM_SCALE) // frac.denominator


def _from_scaled(scaled: int) -> float:
    """The float nearest ``scaled`` * 2^-1074 (one correct rounding)."""
    return float(Fraction(scaled, _SUM_SCALE))


def log_bounds(
    lo: float, hi: float, *, per_decade: int = 4
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi``.

    ``per_decade`` bounds per factor of 10; the ladder is computed from
    integer decade exponents so every process derives bit-identical
    bounds.
    """
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    start = round(per_decade * math.log10(lo))
    bounds = []
    k = start
    while True:
        bound = 10.0 ** (k / per_decade)
        bounds.append(bound)
        if bound >= hi:
            break
        k += 1
    return tuple(bounds)


#: The default ladder for wall-clock latencies in seconds: 10 us to
#: ~100 s, four buckets per decade (+ the implicit overflow bucket).
DEFAULT_LATENCY_BOUNDS_S = log_bounds(1e-5, 100.0, per_decade=4)

#: Small-integer ladder for size-like observations (rows per batch).
DEFAULT_SIZE_BOUNDS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0, 8192.0, 16384.0, 65536.0,
)


class Histogram:
    """Counts of observations in fixed buckets, with an exact sum.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.  Not thread-safe on its
    own — the :class:`~repro.obs.metrics.MetricsRegistry` serializes
    access under its lock.
    """

    __slots__ = (
        "bounds", "counts", "count", "_sum_scaled", "min", "max",
        "exemplars",
    )

    def __init__(
        self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_S
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                "histogram bounds must be a non-empty strictly "
                "increasing sequence"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self._sum_scaled = 0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index -> exemplar dict (newest observation wins).
        self.exemplars: dict[int, dict] = {}

    # ------------------------------------------------------------ recording

    def bucket_index(self, value: float) -> int:
        """The bucket ``value`` falls into (bounds are inclusive)."""
        return bisect.bisect_left(self.bounds, float(value))

    def observe(
        self, value: float, *, exemplar: Mapping | None = None
    ) -> int:
        """Record one observation; returns its bucket index."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histograms accept finite observations, got {value!r}"
            )
        index = self.bucket_index(value)
        self.counts[index] += 1
        self.count += 1
        self._sum_scaled += _to_scaled(value)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if exemplar is not None:
            self.exemplars[index] = {"value": value, **exemplar}
        return index

    # ------------------------------------------------------------ reading

    @property
    def sum(self) -> float:
        return _from_scaled(self._sum_scaled)

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0..1) by in-bucket interpolation.

        Prometheus-style: observations are assumed uniform inside their
        bucket; the overflow bucket answers with the observed maximum.
        Returns ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if index >= len(self.bounds):
                    return self.max
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else 0.0
                inside = max(0.0, rank - cumulative)
                return lo + (hi - lo) * (inside / n)
            cumulative += n
        return self.max

    # ----------------------------------------------------------- snapshots

    def snapshot(self) -> dict:
        """JSON-serializable state (``sum_scaled`` keeps it exact)."""
        snap = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "sum_scaled": self._sum_scaled,
            "min": self.min,
            "max": self.max,
        }
        if self.exemplars:
            snap["exemplars"] = {
                str(i): dict(e) for i, e in sorted(self.exemplars.items())
            }
        return snap

    @classmethod
    def from_snapshot(cls, snap: Mapping) -> "Histogram":
        hist = cls(snap["bounds"])
        hist.merge(snap)
        return hist

    def diff(self, baseline: Mapping | None) -> dict:
        """Activity since ``baseline`` (an earlier :meth:`snapshot`).

        Bucket counts and the scaled sum subtract exactly; min/max are
        taken from the current state (conservative bounds, the same
        convention timer deltas use).
        """
        if baseline is None:
            return self.snapshot()
        if tuple(baseline.get("bounds", ())) != self.bounds:
            raise ValueError(
                "cannot diff histograms with different bucket bounds"
            )
        base_counts = baseline["counts"]
        snap = self.snapshot()
        snap["counts"] = [
            n - b for n, b in zip(snap["counts"], base_counts)
        ]
        snap["count"] = self.count - baseline["count"]
        snap["sum_scaled"] = (
            self._sum_scaled - baseline["sum_scaled"]
        )
        snap["sum"] = _from_scaled(snap["sum_scaled"])
        return snap

    def merge(self, snap: Mapping) -> "Histogram":
        """Fold another histogram's snapshot (or diff) into this one."""
        if tuple(snap.get("bounds", ())) != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for index, n in enumerate(snap["counts"]):
            self.counts[index] += n
        self.count += snap["count"]
        self._sum_scaled += snap["sum_scaled"]
        for key, pick in (("min", min), ("max", max)):
            theirs = snap.get(key)
            if theirs is not None:
                mine = getattr(self, key)
                setattr(
                    self, key,
                    theirs if mine is None else pick(mine, theirs),
                )
        for raw_index, exemplar in (snap.get("exemplars") or {}).items():
            index = int(raw_index)
            mine = self.exemplars.get(index)
            if mine is None or exemplar.get("ts", 0) >= mine.get("ts", 0):
                self.exemplars[index] = dict(exemplar)
        return self
