"""Structured observability: logging, metrics/timing, run manifests.

The instrumentation backbone of the long-running layers (campaigns,
simulation, training, LOOCV, parallel workers):

* :mod:`repro.obs.logging` — the ``repro.*`` logger hierarchy with human
  and JSON-lines formatters (``repro -v`` / ``repro --log-json FILE``);
* :mod:`repro.obs.metrics` — process-global :class:`MetricsRegistry` of
  counters and monotonic timer spans, with snapshot/diff/merge so worker
  processes' activity aggregates exactly into the parent;
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON document a
  CLI run emits under ``--manifest PATH``;
* :mod:`repro.obs.trace` — event-level tracing (``--trace PATH`` /
  ``REPRO_TRACE``): Chrome-trace/Perfetto timelines of the pipeline and,
  opt-in, the simulated NMC hardware.

See ``docs/API.md`` ("Observability") for logger names, counter names and
the manifest schema.
"""

from .logging import (
    HumanFormatter,
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    verbosity_level,
)
from .histogram import (
    DEFAULT_LATENCY_BOUNDS_S,
    DEFAULT_SIZE_BOUNDS,
    Histogram,
    log_bounds,
)
from .manifest import RunManifest, config_hash
from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    TimerSpan,
    labeled_name,
    metrics,
    phase_timings,
    split_metric_key,
)
from .prom import (
    ExpositionError,
    parse_exposition,
    render_prometheus,
    sanitize_metric_name,
)
from .trace import (
    HardwareTimeline,
    Tracer,
    activate_tracing,
    load_trace,
    merge_traces,
    reset_tracing,
    summarize_serve_requests,
    summarize_trace,
    tracer,
    validate_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_S",
    "DEFAULT_SIZE_BOUNDS",
    "ExpositionError",
    "HardwareTimeline",
    "Histogram",
    "HumanFormatter",
    "JsonLinesFormatter",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "RunManifest",
    "TimerSpan",
    "Tracer",
    "activate_tracing",
    "config_hash",
    "configure_logging",
    "get_logger",
    "labeled_name",
    "load_trace",
    "log_bounds",
    "merge_traces",
    "metrics",
    "parse_exposition",
    "phase_timings",
    "render_prometheus",
    "reset_tracing",
    "sanitize_metric_name",
    "split_metric_key",
    "summarize_serve_requests",
    "summarize_trace",
    "tracer",
    "validate_trace",
    "verbosity_level",
]
