"""Structured logging for the long-running phases.

One package-level logger hierarchy rooted at ``repro`` (children:
``repro.campaign``, ``repro.nmcsim``, ``repro.ml``, ``repro.parallel``),
with two formatters:

* :class:`HumanFormatter` — terse ``HH:MM:SS LEVEL logger: message`` lines
  for the console (what ``repro -v`` shows on stderr);
* :class:`JsonLinesFormatter` — one JSON object per line, machine-parseable
  (what ``repro --log-json FILE`` appends to).

Structured context travels in the standard-library ``extra`` mechanism
under the single key ``ctx``::

    log.info("point done", extra={"ctx": {"point": 3, "of": 11}})

The JSON formatter merges ``ctx`` into the emitted object; the human
formatter appends it as ``key=value`` pairs.  Library code logs freely —
without :func:`configure_logging` a :class:`logging.NullHandler` swallows
everything, so importing :mod:`repro` never spams a host application.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Mapping

#: Root of the package logger hierarchy.
ROOT_LOGGER = "repro"

#: Attribute marking handlers installed by :func:`configure_logging`, so a
#: reconfiguration replaces exactly its own handlers and nothing else.
_MANAGED = "_repro_obs_managed"


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """The package logger ``name`` (qualified under ``repro`` if bare)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message (key=value ...)`` console lines."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        ctx = getattr(record, "ctx", None)
        if isinstance(ctx, Mapping) and ctx:
            pairs = " ".join(f"{k}={v}" for k, v in ctx.items())
            text = f"{text} ({pairs})"
        return text


class JsonLinesFormatter(logging.Formatter):
    """One self-contained JSON object per log record.

    Fixed keys: ``ts`` (unix seconds), ``level``, ``logger``, ``message``;
    any ``ctx`` mapping is merged in at the top level (fixed keys win), and
    exception info is rendered under ``exc``.
    """

    def format(self, record: logging.LogRecord) -> str:
        entry: dict = {}
        ctx = getattr(record, "ctx", None)
        if isinstance(ctx, Mapping):
            entry.update(ctx)
        entry.update(
            ts=round(record.created, 6),
            level=record.levelname.lower(),
            logger=record.name,
            message=record.getMessage(),
        )
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str, sort_keys=False)


def verbosity_level(verbosity: int) -> int:
    """Map a CLI verbosity count to a console logging level.

    ``-1`` (``--quiet``) shows errors only, ``0`` warnings, ``1`` (``-v``)
    info, ``>= 2`` (``-vv``) debug.
    """
    if verbosity < 0:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0,
    *,
    json_path: str | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy; returns its root.

    Installs a console handler (``stream``, default stderr) with the
    :class:`HumanFormatter` at the level implied by ``verbosity``, and —
    when ``json_path`` is given — a file handler appending
    :class:`JsonLinesFormatter` lines at DEBUG (the file always gets the
    full detail; verbosity only gates the console).  Idempotent: calling
    again replaces the previously-installed handlers.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(logging.DEBUG)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED, False):
            root.removeHandler(handler)
            handler.close()
    console = logging.StreamHandler(stream or sys.stderr)
    console.setLevel(verbosity_level(verbosity))
    console.setFormatter(HumanFormatter())
    setattr(console, _MANAGED, True)
    root.addHandler(console)
    if json_path:
        file_handler = logging.FileHandler(json_path, encoding="utf-8")
        file_handler.setLevel(logging.DEBUG)
        file_handler.setFormatter(JsonLinesFormatter())
        setattr(file_handler, _MANAGED, True)
        root.addHandler(file_handler)
    return root


# Importing repro must never print through the root logger's last-resort
# handler: library users opt into output via configure_logging().
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())
