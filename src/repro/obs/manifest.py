"""Run manifests: one JSON document describing a CLI invocation.

Every ``repro campaign`` / ``train`` / ``suitability`` run can emit a
manifest (``--manifest PATH``) recording what ran and how it went:

.. code-block:: json

    {
      "repro_version": "1.0.0",
      "command": "campaign",
      "argv": ["campaign", "gemv", "--scale", "4"],
      "started_at_unix": 1754390000.0,
      "schema_hash": "9f0c...",
      "arch_config_hash": "1b22...",
      "workloads": ["gemv"],
      "n_points": 11,
      "cache": {"hits": 0, "misses": 11, "hit_ratio": 0.0},
      "phases": {"trace": 1.2, "profile": 0.8, "simulate": 3.1},
      "model": {"name": "rf", "ipc_mre": 0.04, "ipc_r2": 0.99},
      "metrics": {"counters": {...}, "timers": {...}},
      "wall_seconds": 5.3,
      "exit_code": 0
    }

``model``/``cache``/``workloads``/``n_points`` appear only when the
command produced them; ``exit_code`` is always present (the manifest is
written even when the run fails, so a batch driver can tell *which* phase
died and after how long).  Writes are atomic (tmp file + ``os.replace``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from .metrics import MetricsRegistry, metrics, phase_timings


def config_hash(config) -> str:
    """Stable SHA-256 of a (dataclass) configuration's field values.

    Delegates to :func:`repro.schema.canonical_hash`, the one content-hash
    convention shared with the campaign cache's arch keys — a manifest's
    ``arch_config_hash`` can therefore be matched against cache keys.
    """
    from ..schema import canonical_hash

    return canonical_hash(config)


def _package_version() -> str:
    from .. import __version__

    return __version__


class RunManifest:
    """Mutable manifest builder; commands fill it in, ``main`` writes it."""

    def __init__(self, command: str, argv: list[str] | None = None) -> None:
        self.data: dict = {
            "repro_version": _package_version(),
            "command": command,
            "argv": list(argv or []),
            "started_at_unix": round(time.time(), 3),
        }
        self._t0 = time.monotonic()

    def update(self, **fields) -> "RunManifest":
        """Set top-level manifest fields (last write wins)."""
        self.data.update(fields)
        return self

    def record_trace(
        self,
        path,
        *,
        events: int,
        dropped: int = 0,
        hw_dropped: int = 0,
    ) -> "RunManifest":
        """Record the run's event-trace output (``--trace``).

        Written even on failure, like every other manifest field: a
        partial trace of a crashed run is exactly when the timeline is
        most wanted.
        """
        self.data["trace_path"] = str(path)
        self.data["trace"] = {
            "events": int(events),
            "dropped": int(dropped),
            "hw_dropped": int(hw_dropped),
        }
        return self

    def finish(
        self,
        exit_code: int,
        *,
        registry: MetricsRegistry | None = None,
    ) -> dict:
        """Stamp the end-of-run fields; returns the manifest dict."""
        snapshot = (registry or metrics()).snapshot()
        self.data["phases"] = phase_timings(snapshot)
        self.data["metrics"] = snapshot
        self.data["wall_seconds"] = round(time.monotonic() - self._t0, 6)
        self.data["exit_code"] = exit_code
        return self.data

    def to_json_dict(self) -> dict:
        return json.loads(json.dumps(self.data, default=str))

    def write(self, path: str | Path) -> Path:
        """Atomically write the manifest JSON to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.data, indent=2, default=str) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def from_json_dict(cls, data: dict) -> "RunManifest":
        manifest = cls(data.get("command", ""), data.get("argv", []))
        manifest.data = dict(data)
        return manifest

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_json_dict(json.loads(Path(path).read_text()))
