"""Lightweight metrics: monotonic timers and counters with a registry.

The registry is the process-global accounting surface every long-running
layer reports through: campaign points, cache hits/misses, simulator runs,
tuning combinations, LOOCV folds, prediction calls.  Two primitives:

* **counters** — monotonically increasing integers (``inc(name)``);
* **timer spans** — context managers around a phase (``timer(name)``),
  recording count / total / min / max seconds on a monotonic clock.
  Spans nest (a ``phase.train`` span may contain ``ml.grid_search``
  spans); the registry tracks the active stack per *context*
  (:mod:`contextvars`, so both concurrent threads and interleaved
  asyncio tasks — e.g. two prediction-server requests on one event
  loop — each see their own stack) so instrumentation can ask
  :meth:`MetricsRegistry.current_spans` without concurrent work
  interleaving on one shared stack.

Two more primitives round out the surface:

* **histograms** — fixed-bucket log-scaled distributions
  (``observe(name, value)``), see :mod:`repro.obs.histogram`; bucket
  counts and the exact scaled-integer sum make their snapshots
  *bit-identical* between serial and ``--jobs N`` runs of the same work;
* **gauges** — last-write-wins floats (``set_gauge(name, value)``) for
  point-in-time readings like queue depth or reload generation.

Every recording primitive takes an optional ``labels={...}`` mapping.
Labeled series are stored under a canonical encoded key —
``name{k="v",k2="v2"}`` with label keys sorted — produced by
:func:`labeled_name` and decoded by :func:`split_metric_key`, so the
snapshot/diff/merge machinery stays plain string-keyed dicts.

Snapshots are plain JSON-serializable dicts.  Cross-process aggregation
works by *delta shipping*: a pool worker snapshots the registry before a
job, runs it, and ships ``diff(before)`` back with the result; the parent
merges the delta with :meth:`merge_snapshot`.  Counter and span *counts*
therefore come out identical between serial and parallel runs of the same
work (wall-clock totals naturally differ).
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Iterator, Mapping

from .histogram import DEFAULT_LATENCY_BOUNDS_S, Histogram
from .trace import tracer

#: The metric-name convention, served verbatim as the ``schema`` field of
#: ``GET /metrics`` JSON so scrapers can discover how to parse keys.
METRICS_SCHEMA = {
    "version": 2,
    "name_convention": (
        "dot.separated lowercase names; labeled series are encoded as "
        'name{key="value",key2="value2"} with label keys sorted'
    ),
    "kinds": {
        "counters": "monotonic integer counts",
        "timers": "phase spans: {count, total_s, min_s, max_s} seconds",
        "histograms": (
            "fixed log-bucket distributions: {bounds, counts, count, "
            "sum, sum_scaled, min, max[, exemplars]}; counts[i] covers "
            "(bounds[i-1], bounds[i]], the last entry is overflow; "
            "sum_scaled is the exact sum in units of 2^-1074"
        ),
        "gauges": "last-write-wins floats (point-in-time readings)",
    },
}


def labeled_name(name: str, labels: Mapping[str, object] | None) -> str:
    """Canonical storage key for ``name`` under ``labels``.

    ``labeled_name("x", {"b": 1, "a": "y"})`` == ``'x{a="y",b="1"}'``:
    label keys sort so every writer produces the same series key.
    """
    if not labels:
        return name
    if "{" in name:
        raise ValueError(f"metric name {name!r} already carries labels")
    body = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f"{name}{{{body}}}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Decode a storage key back into ``(name, labels)``.

    The inverse of :func:`labeled_name`; bare names return ``{}``.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: dict[str, str] = {}
    i = 0
    body = body[:-1]
    while i < len(body):
        eq = body.index("=", i)
        label_key = body[i:eq]
        assert body[eq + 1] == '"', f"malformed metric key {key!r}"
        j = eq + 2
        raw = []
        while body[j] != '"':
            if body[j] == "\\":
                raw.append(body[j : j + 2])
                j += 2
            else:
                raw.append(body[j])
                j += 1
        labels[label_key] = _unescape_label("".join(raw))
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return name, labels


def _new_timer_stat() -> dict:
    return {"count": 0, "total_s": 0.0, "min_s": None, "max_s": None}


class TimerSpan:
    """One active ``with registry.timer(name):`` span."""

    __slots__ = ("registry", "name", "_start", "elapsed_s")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._start: float | None = None
        self.elapsed_s: float | None = None

    def __enter__(self) -> "TimerSpan":
        self.registry._push(self.name)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "span exited before being entered"
        self.elapsed_s = time.monotonic() - self._start
        self.registry._pop(self.name, self.elapsed_s)
        # Mirror the span onto the event trace (no-op unless --trace /
        # REPRO_TRACE is active), so Perfetto lanes carry exactly the
        # phase.* names the run manifest reports as aggregate timings.
        t = tracer()
        if t.enabled:
            t.complete(
                self.name,
                t.to_ts_us(self._start),
                self.elapsed_s * 1e6,
                cat="metrics",
            )


class MetricsRegistry:
    """Counters + timer statistics with snapshot/merge/diff support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, dict] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}
        # The active-span stack is *context-local* (contextvars): spans
        # entered from concurrent threads OR interleaved asyncio tasks
        # would otherwise share one stack, making _pop's top-of-stack
        # check silently leak entries and corrupting current_spans().
        # A thread-local stack is not enough — two coroutines of the
        # prediction server interleave on one thread, and each must see
        # only its own spans.  The stack is an immutable tuple set per
        # context: tasks inherit a snapshot at spawn and their pushes
        # never leak back into the parent.
        self._spans: contextvars.ContextVar[tuple[str, ...]] = (
            contextvars.ContextVar(f"repro-metrics-spans-{id(self)}")
        )

    # ----------------------------------------------------------- recording

    def inc(
        self,
        name: str,
        n: int = 1,
        labels: Mapping[str, object] | None = None,
    ) -> int:
        """Increment counter ``name`` by ``n``; returns the new value."""
        key = labeled_name(name, labels)
        with self._lock:
            value = self._counters.get(key, 0) + n
            self._counters[key] = value
            return value

    def count(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> int:
        return self._counters.get(labeled_name(name, labels), 0)

    def timer(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> TimerSpan:
        """A context-manager span recording under ``name`` on exit."""
        return TimerSpan(self, labeled_name(name, labels))

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
        *,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_S,
        exemplar: Mapping | None = None,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``bounds`` only takes effect when the series is first created;
        later observers must agree (mismatched bounds raise, because
        silently re-bucketing would corrupt merges).  ``exemplar``
        attaches an annotation dict to the hit bucket (newest wins) —
        use it sparingly and never on deterministic pipeline paths,
        since exemplars carry wall-clock context.
        """
        key = labeled_name(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(bounds)
            elif hist.bounds != tuple(float(b) for b in bounds):
                raise ValueError(
                    f"histogram {key!r} already exists with different "
                    "bucket bounds"
                )
            hist.observe(value, exemplar=exemplar)

    def histogram(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> Histogram | None:
        """The live histogram for ``name`` (None if never observed)."""
        return self._histograms.get(labeled_name(name, labels))

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        key = labeled_name(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def gauge(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> float | None:
        return self._gauges.get(labeled_name(name, labels))

    def _push(self, name: str) -> None:
        self._spans.set(self._spans.get(()) + (name,))

    def _pop(self, name: str, elapsed_s: float) -> None:
        stack = self._spans.get(())
        if stack and stack[-1] == name:
            self._spans.set(stack[:-1])
        with self._lock:
            stat = self._timers.setdefault(name, _new_timer_stat())
            stat["count"] += 1
            stat["total_s"] += elapsed_s
            stat["min_s"] = (
                elapsed_s if stat["min_s"] is None
                else min(stat["min_s"], elapsed_s)
            )
            stat["max_s"] = (
                elapsed_s if stat["max_s"] is None
                else max(stat["max_s"], elapsed_s)
            )

    def current_spans(self) -> tuple[str, ...]:
        """The calling context's active span stack, outermost first.

        "Context" is a :mod:`contextvars` context: each thread *and*
        each asyncio task sees only the spans it entered itself.
        """
        return self._spans.get(())

    def timer_stats(self, name: str) -> dict | None:
        stat = self._timers.get(name)
        return dict(stat) if stat is not None else None

    # ---------------------------------------------------------- snapshots

    def snapshot(self) -> dict:
        """JSON-serializable state, deterministically key-ordered.

        Keys: ``counters``, ``timers``, ``histograms``, ``gauges`` —
        every level sorted so two identical registries serialize to
        byte-identical JSON.
        """
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())
                },
                "timers": {
                    name: dict(stat)
                    for name, stat in sorted(self._timers.items())
                },
            }

    def diff(self, baseline: dict) -> dict:
        """The activity since ``baseline`` (an earlier :meth:`snapshot`).

        Counter and timer counts/totals subtract exactly; a delta's
        min/max seconds are taken from the current stats (the registry
        does not retain per-span history), which keeps merged minima and
        maxima conservative bounds rather than exact values.
        """
        now = self.snapshot()
        base_counters = baseline.get("counters", {})
        base_timers = baseline.get("timers", {})
        base_hists = baseline.get("histograms", {})
        base_gauges = baseline.get("gauges", {})
        counters = {}
        for name, value in now["counters"].items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stat in now["timers"].items():
            base = base_timers.get(name, _new_timer_stat())
            count = stat["count"] - base["count"]
            if count:
                timers[name] = {
                    "count": count,
                    "total_s": stat["total_s"] - base["total_s"],
                    "min_s": stat["min_s"],
                    "max_s": stat["max_s"],
                }
        histograms = {}
        with self._lock:
            for name in sorted(self._histograms):
                delta = self._histograms[name].diff(base_hists.get(name))
                if delta["count"]:
                    histograms[name] = delta
        gauges = {
            name: value
            for name, value in now["gauges"].items()
            if name not in base_gauges or base_gauges[name] != value
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "timers": timers,
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot (or diff) into this one.

        Counters/timers/histogram buckets add; gauges are last-write-
        wins readings, so the incoming value overwrites.
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, stat in snap.get("timers", {}).items():
                mine = self._timers.setdefault(name, _new_timer_stat())
                mine["count"] += stat["count"]
                mine["total_s"] += stat["total_s"]
                for key, pick in (("min_s", min), ("max_s", max)):
                    if stat.get(key) is not None:
                        mine[key] = (
                            stat[key] if mine[key] is None
                            else pick(mine[key], stat[key])
                        )
            for name, hist_snap in snap.get("histograms", {}).items():
                mine_hist = self._histograms.get(name)
                if mine_hist is None:
                    self._histograms[name] = Histogram.from_snapshot(
                        hist_snap
                    )
                else:
                    mine_hist.merge(hist_snap)
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = value

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._histograms.clear()
            self._gauges.clear()
        self._spans.set(())


#: The process-global registry all instrumentation records into.
_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL


def phase_timings(snapshot: dict) -> dict[str, float]:
    """Per-phase wall seconds from a snapshot (the ``phase.*`` timers)."""
    out: dict[str, float] = {}
    for name, stat in snapshot.get("timers", {}).items():
        if name.startswith("phase."):
            out[name.removeprefix("phase.")] = round(stat["total_s"], 6)
    return out


def iter_counters(snapshot: dict) -> Iterator[tuple[str, int]]:
    yield from snapshot.get("counters", {}).items()
