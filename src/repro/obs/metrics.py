"""Lightweight metrics: monotonic timers and counters with a registry.

The registry is the process-global accounting surface every long-running
layer reports through: campaign points, cache hits/misses, simulator runs,
tuning combinations, LOOCV folds, prediction calls.  Two primitives:

* **counters** — monotonically increasing integers (``inc(name)``);
* **timer spans** — context managers around a phase (``timer(name)``),
  recording count / total / min / max seconds on a monotonic clock.
  Spans nest (a ``phase.train`` span may contain ``ml.grid_search``
  spans); the registry tracks the active stack per *context*
  (:mod:`contextvars`, so both concurrent threads and interleaved
  asyncio tasks — e.g. two prediction-server requests on one event
  loop — each see their own stack) so instrumentation can ask
  :meth:`MetricsRegistry.current_spans` without concurrent work
  interleaving on one shared stack.

Snapshots are plain JSON-serializable dicts.  Cross-process aggregation
works by *delta shipping*: a pool worker snapshots the registry before a
job, runs it, and ships ``diff(before)`` back with the result; the parent
merges the delta with :meth:`merge_snapshot`.  Counter and span *counts*
therefore come out identical between serial and parallel runs of the same
work (wall-clock totals naturally differ).
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Iterator

from .trace import tracer


def _new_timer_stat() -> dict:
    return {"count": 0, "total_s": 0.0, "min_s": None, "max_s": None}


class TimerSpan:
    """One active ``with registry.timer(name):`` span."""

    __slots__ = ("registry", "name", "_start", "elapsed_s")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self._start: float | None = None
        self.elapsed_s: float | None = None

    def __enter__(self) -> "TimerSpan":
        self.registry._push(self.name)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "span exited before being entered"
        self.elapsed_s = time.monotonic() - self._start
        self.registry._pop(self.name, self.elapsed_s)
        # Mirror the span onto the event trace (no-op unless --trace /
        # REPRO_TRACE is active), so Perfetto lanes carry exactly the
        # phase.* names the run manifest reports as aggregate timings.
        t = tracer()
        if t.enabled:
            t.complete(
                self.name,
                t.to_ts_us(self._start),
                self.elapsed_s * 1e6,
                cat="metrics",
            )


class MetricsRegistry:
    """Counters + timer statistics with snapshot/merge/diff support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._timers: dict[str, dict] = {}
        # The active-span stack is *context-local* (contextvars): spans
        # entered from concurrent threads OR interleaved asyncio tasks
        # would otherwise share one stack, making _pop's top-of-stack
        # check silently leak entries and corrupting current_spans().
        # A thread-local stack is not enough — two coroutines of the
        # prediction server interleave on one thread, and each must see
        # only its own spans.  The stack is an immutable tuple set per
        # context: tasks inherit a snapshot at spawn and their pushes
        # never leak back into the parent.
        self._spans: contextvars.ContextVar[tuple[str, ...]] = (
            contextvars.ContextVar(f"repro-metrics-spans-{id(self)}")
        )

    # ----------------------------------------------------------- recording

    def inc(self, name: str, n: int = 1) -> int:
        """Increment counter ``name`` by ``n``; returns the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + n
            self._counters[name] = value
            return value

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    def timer(self, name: str) -> TimerSpan:
        """A context-manager span recording under ``name`` on exit."""
        return TimerSpan(self, name)

    def _push(self, name: str) -> None:
        self._spans.set(self._spans.get(()) + (name,))

    def _pop(self, name: str, elapsed_s: float) -> None:
        stack = self._spans.get(())
        if stack and stack[-1] == name:
            self._spans.set(stack[:-1])
        with self._lock:
            stat = self._timers.setdefault(name, _new_timer_stat())
            stat["count"] += 1
            stat["total_s"] += elapsed_s
            stat["min_s"] = (
                elapsed_s if stat["min_s"] is None
                else min(stat["min_s"], elapsed_s)
            )
            stat["max_s"] = (
                elapsed_s if stat["max_s"] is None
                else max(stat["max_s"], elapsed_s)
            )

    def current_spans(self) -> tuple[str, ...]:
        """The calling context's active span stack, outermost first.

        "Context" is a :mod:`contextvars` context: each thread *and*
        each asyncio task sees only the spans it entered itself.
        """
        return self._spans.get(())

    def timer_stats(self, name: str) -> dict | None:
        stat = self._timers.get(name)
        return dict(stat) if stat is not None else None

    # ---------------------------------------------------------- snapshots

    def snapshot(self) -> dict:
        """JSON-serializable state: ``{"counters": ..., "timers": ...}``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "timers": {
                    name: dict(stat)
                    for name, stat in sorted(self._timers.items())
                },
            }

    def diff(self, baseline: dict) -> dict:
        """The activity since ``baseline`` (an earlier :meth:`snapshot`).

        Counter and timer counts/totals subtract exactly; a delta's
        min/max seconds are taken from the current stats (the registry
        does not retain per-span history), which keeps merged minima and
        maxima conservative bounds rather than exact values.
        """
        now = self.snapshot()
        base_counters = baseline.get("counters", {})
        base_timers = baseline.get("timers", {})
        counters = {}
        for name, value in now["counters"].items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        timers = {}
        for name, stat in now["timers"].items():
            base = base_timers.get(name, _new_timer_stat())
            count = stat["count"] - base["count"]
            if count:
                timers[name] = {
                    "count": count,
                    "total_s": stat["total_s"] - base["total_s"],
                    "min_s": stat["min_s"],
                    "max_s": stat["max_s"],
                }
        return {"counters": counters, "timers": timers}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot (or diff) into this one."""
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, stat in snap.get("timers", {}).items():
                mine = self._timers.setdefault(name, _new_timer_stat())
                mine["count"] += stat["count"]
                mine["total_s"] += stat["total_s"]
                for key, pick in (("min_s", min), ("max_s", max)):
                    if stat.get(key) is not None:
                        mine[key] = (
                            stat[key] if mine[key] is None
                            else pick(mine[key], stat[key])
                        )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
        self._spans.set(())


#: The process-global registry all instrumentation records into.
_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _GLOBAL


def phase_timings(snapshot: dict) -> dict[str, float]:
    """Per-phase wall seconds from a snapshot (the ``phase.*`` timers)."""
    out: dict[str, float] = {}
    for name, stat in snapshot.get("timers", {}).items():
        if name.startswith("phase."):
            out[name.removeprefix("phase.")] = round(stat["total_s"], 6)
    return out


def iter_counters(snapshot: dict) -> Iterator[tuple[str, int]]:
    yield from snapshot.get("counters", {}).items()
