"""Incremental and vectorized trace construction.

Two levels of API:

* :class:`TraceBuilder` — scalar ``append``-style emission plus a bulk
  column append, used directly for small/irregular code regions.
* :class:`LoopTemplate` — describes one loop-body of IR statements once;
  :meth:`LoopTemplate.emit` then materialises ``n`` iterations in a handful
  of numpy operations, with per-iteration memory addresses supplied as
  arrays.  This keeps trace generation fast for the large regular loops of
  the PolyBench-style kernels.

Register-dependence semantics: virtual registers are *renamed* by the
analyses, i.e. only read-after-write dependencies matter.  A loop template
whose reads are satisfied by writes earlier in the same iteration yields
independent iterations (high ILP); a template that reads a register written
by the previous iteration (an accumulator) creates a loop-carried serial
chain.  Workloads use this to express their true dependence structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import TraceError
from .instructions import MEMORY_OPCODES, NO_REG, Opcode
from .trace import TRACE_COLUMNS, InstructionTrace


class TraceBuilder:
    """Accumulates instructions and freezes them into an InstructionTrace."""

    def __init__(self) -> None:
        self._chunks: list[dict[str, np.ndarray]] = []
        # Scalar staging buffers, flushed into a chunk when bulk data arrives
        # or at finish().
        self._scalar: dict[str, list[int]] = {name: [] for name in TRACE_COLUMNS}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------- scalar

    def emit(
        self,
        opcode: Opcode,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        addr: int = 0,
        size: int = 0,
        pc: int = 0,
        tid: int = 0,
    ) -> None:
        """Append a single instruction."""
        if opcode in MEMORY_OPCODES and size <= 0:
            raise TraceError(f"memory opcode {opcode.name} requires size > 0")
        s = self._scalar
        s["opcode"].append(int(opcode))
        s["dst"].append(dst)
        s["src1"].append(src1)
        s["src2"].append(src2)
        s["addr"].append(addr)
        s["size"].append(size)
        s["pc"].append(pc)
        s["tid"].append(tid)
        self._count += 1

    # Convenience wrappers ------------------------------------------------

    def load(self, dst: int, addr: int, size: int = 8, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.LOAD, dst=dst, addr=addr, size=size, pc=pc, tid=tid)

    def store(self, src: int, addr: int, size: int = 8, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.STORE, src1=src, addr=addr, size=size, pc=pc, tid=tid)

    def ialu(self, dst: int, src1: int = NO_REG, src2: int = NO_REG, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.IALU, dst=dst, src1=src1, src2=src2, pc=pc, tid=tid)

    def falu(self, dst: int, src1: int = NO_REG, src2: int = NO_REG, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.FALU, dst=dst, src1=src1, src2=src2, pc=pc, tid=tid)

    def fmul(self, dst: int, src1: int = NO_REG, src2: int = NO_REG, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.FMUL, dst=dst, src1=src1, src2=src2, pc=pc, tid=tid)

    def fdiv(self, dst: int, src1: int = NO_REG, src2: int = NO_REG, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.FDIV, dst=dst, src1=src1, src2=src2, pc=pc, tid=tid)

    def branch(self, src1: int = NO_REG, *, pc: int = 0, tid: int = 0) -> None:
        self.emit(Opcode.BRANCH, src1=src1, pc=pc, tid=tid)

    # --------------------------------------------------------------- bulk

    def bulk(self, **columns: np.ndarray) -> None:
        """Append pre-built column arrays (all of equal length).

        Missing columns default to zeros (``NO_REG`` for register columns).
        """
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise TraceError("bulk columns must have equal lengths")
        (n,) = lengths
        if n == 0:
            return
        self._flush_scalar()
        chunk: dict[str, np.ndarray] = {}
        for name, dtype in TRACE_COLUMNS.items():
            if name in columns:
                chunk[name] = np.ascontiguousarray(columns[name], dtype=dtype)
            elif name in ("dst", "src1", "src2"):
                chunk[name] = np.full(n, NO_REG, dtype=dtype)
            else:
                chunk[name] = np.zeros(n, dtype=dtype)
        unknown = set(columns) - set(TRACE_COLUMNS)
        if unknown:
            raise TraceError(f"unknown trace columns: {sorted(unknown)}")
        self._chunks.append(chunk)
        self._count += n

    def _flush_scalar(self) -> None:
        if not self._scalar["opcode"]:
            return
        chunk = {
            name: np.asarray(values, dtype=TRACE_COLUMNS[name])
            for name, values in self._scalar.items()
        }
        self._chunks.append(chunk)
        self._scalar = {name: [] for name in TRACE_COLUMNS}

    # ------------------------------------------------------------- freeze

    def finish(self) -> InstructionTrace:
        """Freeze the accumulated instructions into an immutable trace."""
        self._flush_scalar()
        if not self._chunks:
            return InstructionTrace.empty()
        cols = {
            name: np.concatenate([c[name] for c in self._chunks])
            for name in TRACE_COLUMNS
        }
        return InstructionTrace(**cols)


@dataclass(frozen=True)
class TemplateOp:
    """One IR statement of a :class:`LoopTemplate`.

    ``addr`` may be ``None`` (non-memory op), or the string key of the
    address array passed to :meth:`LoopTemplate.emit`.
    """

    opcode: Opcode
    dst: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    addr: str | None = None
    size: int = 8

    def __post_init__(self) -> None:
        if self.opcode in MEMORY_OPCODES and self.addr is None:
            raise TraceError(
                f"memory opcode {self.opcode.name} requires an address slot"
            )
        if self.addr is not None and self.opcode not in MEMORY_OPCODES:
            raise TraceError(
                f"non-memory opcode {self.opcode.name} must not take an address"
            )


class LoopTemplate:
    """A loop body emitted ``n`` times with per-iteration addresses.

    Each :class:`TemplateOp` in the body receives a distinct static program
    counter ``pc_base + position``, so instruction-reuse analysis sees the
    loop as a small hot code region, exactly as PISA would.
    """

    def __init__(self, ops: Sequence[TemplateOp]) -> None:
        if not ops:
            raise TraceError("a loop template needs at least one op")
        self.ops = tuple(ops)
        self._addr_slots = tuple(
            (j, op.addr, op.size) for j, op in enumerate(self.ops) if op.addr
        )

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def address_slots(self) -> tuple[str, ...]:
        """Names of the address arrays :meth:`emit` expects."""
        return tuple(sorted({key for _, key, _ in self._addr_slots}))

    def emit(
        self,
        builder: TraceBuilder,
        iterations: int,
        addresses: Mapping[str, np.ndarray] | None = None,
        *,
        tid: int = 0,
        pc_base: int = 0,
    ) -> None:
        """Materialise ``iterations`` copies of the body into ``builder``."""
        if iterations < 0:
            raise TraceError("iterations must be >= 0")
        if iterations == 0:
            return
        addresses = dict(addresses or {})
        k = len(self.ops)
        n = iterations * k

        opcode = np.tile(
            np.asarray([int(op.opcode) for op in self.ops], dtype=np.uint8),
            iterations,
        )
        dst = np.tile(
            np.asarray([op.dst for op in self.ops], dtype=np.int32), iterations
        )
        src1 = np.tile(
            np.asarray([op.src1 for op in self.ops], dtype=np.int32), iterations
        )
        src2 = np.tile(
            np.asarray([op.src2 for op in self.ops], dtype=np.int32), iterations
        )
        pc = np.tile(
            pc_base + np.arange(k, dtype=np.uint32), iterations
        )
        addr = np.zeros(n, dtype=np.uint64)
        size = np.zeros(n, dtype=np.uint16)
        for j, key, op_size in self._addr_slots:
            try:
                slot = addresses[key]
            except KeyError:
                raise TraceError(f"missing address array {key!r}") from None
            if len(slot) != iterations:
                raise TraceError(
                    f"address array {key!r} has length {len(slot)}, "
                    f"expected {iterations}"
                )
            addr[j::k] = np.asarray(slot, dtype=np.uint64)
            size[j::k] = op_size
        builder.bulk(
            opcode=opcode,
            dst=dst,
            src1=src1,
            src2=src2,
            addr=addr,
            size=size,
            pc=pc,
            tid=np.full(n, tid, dtype=np.uint16),
        )
