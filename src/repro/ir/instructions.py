"""Instruction taxonomy of the trace IR.

The opcode set is deliberately small: it is the classification PISA-style
microarchitecture-independent analysis needs (paper Table 1 — instruction
mix, register traffic) and the granularity at which the in-order PE model
assigns execution latencies.
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple

#: Sentinel register id meaning "no operand".
NO_REG: int = -1


class Opcode(IntEnum):
    """Dynamic instruction classes.

    The integer values are stable and compact so traces can store opcodes in
    a ``uint8`` numpy column.
    """

    IALU = 0     #: integer add/sub/logic/shift
    IMUL = 1     #: integer multiply
    IDIV = 2     #: integer divide / modulo
    FALU = 3     #: floating-point add/sub
    FMUL = 4     #: floating-point multiply
    FDIV = 5     #: floating-point divide / sqrt
    LOAD = 6     #: memory read
    STORE = 7    #: memory write
    BRANCH = 8   #: conditional/unconditional branch
    CMP = 9      #: integer/FP compare producing a flag/register
    MOVE = 10    #: register move / immediate load
    CALL = 11    #: function call
    RET = 12     #: function return
    ATOMIC = 13  #: atomic read-modify-write (synchronisation)
    FMA = 14     #: fused multiply-add
    NOP = 15     #: no-op / other

    @property
    def is_memory(self) -> bool:
        return self in MEMORY_OPCODES

    @property
    def is_read(self) -> bool:
        return self in (Opcode.LOAD, Opcode.ATOMIC)

    @property
    def is_write(self) -> bool:
        return self in (Opcode.STORE, Opcode.ATOMIC)

    @property
    def is_control(self) -> bool:
        return self in CONTROL_OPCODES

    @property
    def is_float(self) -> bool:
        return self in FP_OPCODES

    @property
    def is_int(self) -> bool:
        return self in INT_OPCODES


#: Opcodes that access memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.ATOMIC})

#: Opcodes that redirect control flow.
CONTROL_OPCODES = frozenset({Opcode.BRANCH, Opcode.CALL, Opcode.RET})

#: Floating-point compute opcodes.
FP_OPCODES = frozenset({Opcode.FALU, Opcode.FMUL, Opcode.FDIV, Opcode.FMA})

#: Integer compute opcodes.
INT_OPCODES = frozenset({Opcode.IALU, Opcode.IMUL, Opcode.IDIV, Opcode.CMP})

#: Default execution latency (cycles) of each opcode on the in-order PE.
#: Memory opcodes list only the *execute* stage; the cache/DRAM latency is
#: added by the memory subsystem model.
OPCODE_LATENCY: dict[Opcode, int] = {
    Opcode.IALU: 1,
    Opcode.IMUL: 3,
    Opcode.IDIV: 18,
    Opcode.FALU: 3,
    Opcode.FMUL: 4,
    Opcode.FDIV: 22,
    Opcode.LOAD: 1,
    Opcode.STORE: 1,
    Opcode.BRANCH: 1,
    Opcode.CMP: 1,
    Opcode.MOVE: 1,
    Opcode.CALL: 2,
    Opcode.RET: 2,
    Opcode.ATOMIC: 4,
    Opcode.FMA: 4,
    Opcode.NOP: 1,
}


class Instruction(NamedTuple):
    """A single decoded trace instruction.

    ``dst``/``src1``/``src2`` are virtual register ids (``NO_REG`` if
    absent).  ``addr``/``size`` are only meaningful for memory opcodes.
    ``pc`` is the static program counter of the emitting IR statement, used
    for instruction-reuse-distance analysis.  ``tid`` is the software thread
    that executed the instruction.
    """

    opcode: Opcode
    dst: int = NO_REG
    src1: int = NO_REG
    src2: int = NO_REG
    addr: int = 0
    size: int = 0
    pc: int = 0
    tid: int = 0

    @property
    def is_memory(self) -> bool:
        return self.opcode.is_memory

    def registers_read(self) -> tuple[int, ...]:
        """Virtual registers read by this instruction."""
        return tuple(r for r in (self.src1, self.src2) if r != NO_REG)

    def registers_written(self) -> tuple[int, ...]:
        """Virtual registers written by this instruction."""
        return (self.dst,) if self.dst != NO_REG else ()
