"""LRU stack-distance kernels over reference streams.

The *reuse distance* (LRU stack distance) of an access is the number of
distinct elements touched since the previous access to the same element.
It is the canonical hardware-independent description of temporal locality
(Mattson's stack algorithm): a fully-associative LRU cache of capacity
``C`` hits exactly the accesses with reuse distance < ``C``, and a
set-associative LRU cache of ``W`` ways hits exactly the accesses whose
*per-set* reuse distance is < ``W``.

This module holds the shared kernels: :func:`reuse_distances` (the classic
Fenwick-tree / move-to-front formulation, O(M log M) over M accesses) and
:func:`grouped_reuse_distances`, its per-set generalisation used by the
profiler's locality features and by the vectorized L1 classifier of the
fast simulation engine (:mod:`repro.nmcsim.classify`).
"""

from __future__ import annotations

import numpy as np

#: Distance value used for cold (first-touch) accesses.
COLD_DISTANCE = -1


def reuse_distances(keys: np.ndarray) -> np.ndarray:
    """Per-access LRU stack distances of a reference stream.

    Parameters
    ----------
    keys:
        Integer identifiers of the accessed elements (cache-line ids,
        program counters, ...), in access order.

    Returns
    -------
    ``int64`` array of the same length: number of distinct other elements
    accessed since the previous access to the same element, or
    :data:`COLD_DISTANCE` for first touches.
    """
    n = len(keys)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out

    # Fast path for small alphabets (instruction PC streams): an exact
    # move-to-front list — the stack distance of an access is simply the
    # key's position in the recency list.  O(n * |alphabet|) with small
    # constants beats the Fenwick tree up to a few hundred distinct keys.
    if len(np.unique(keys)) <= 512:
        recency: list[int] = []
        index = recency.index
        remove = recency.remove
        insert = recency.insert
        for t, key in enumerate(keys.tolist()):
            try:
                pos = index(key)
            except ValueError:
                out[t] = COLD_DISTANCE
            else:
                out[t] = pos
                remove(key)
            insert(0, key)
        return out

    # Fenwick tree over access-time slots; tree[t] counts elements whose
    # most recent access was at time t.
    tree = [0] * (n + 1)

    def update(pos: int, delta: int) -> None:
        pos += 1
        while pos <= n:
            tree[pos] += delta
            pos += pos & (-pos)

    def prefix(pos: int) -> int:
        # sum of slots [0, pos]
        pos += 1
        s = 0
        while pos > 0:
            s += tree[pos]
            pos -= pos & (-pos)
        return s

    last_seen: dict[int, int] = {}
    keys_list = keys.tolist()
    for t, key in enumerate(keys_list):
        prev = last_seen.get(key)
        if prev is None:
            out[t] = COLD_DISTANCE
        else:
            # Distinct elements accessed strictly between prev and t.
            out[t] = prefix(t - 1) - prefix(prev)
            update(prev, -1)
        update(t, +1)
        last_seen[key] = t
    return out


def lru_hit_mask(
    keys: np.ndarray, groups: np.ndarray, ways: int
) -> np.ndarray:
    """Hit mask of a ``ways``-way set-associative LRU cache.

    Mattson's inclusion property turned into a classifier: access ``t``
    hits if and only if its per-group (per-set) stack distance is a real
    reuse (not :data:`COLD_DISTANCE`) and smaller than the associativity.
    This is the exact hit/miss oracle for *any* ``ways`` — the fast
    simulation engine's phase-A classifier builds on it
    (:mod:`repro.nmcsim.classify`).
    """
    if ways < 1:
        raise ValueError("ways must be >= 1")
    dist = grouped_reuse_distances(keys, groups)
    return (dist != COLD_DISTANCE) & (dist < ways)


def grouped_reuse_distances(
    keys: np.ndarray, groups: np.ndarray
) -> np.ndarray:
    """Stack distances computed independently within each group.

    ``groups[t]`` assigns access ``t`` to a group (e.g. a cache set index);
    the distance of an access only counts distinct elements of the *same
    group* touched since the previous same-element access.  This is the
    per-set stream view of a set-associative cache: a ``W``-way LRU cache
    hits exactly the accesses with grouped distance < ``W``.

    Returns an ``int64`` array aligned with ``keys`` (order preserved).
    """
    keys = np.asarray(keys)
    groups = np.asarray(groups)
    if keys.shape != groups.shape:
        raise ValueError("keys and groups must have the same shape")
    out = np.empty(len(keys), dtype=np.int64)
    if len(keys) == 0:
        return out
    if (groups == groups[0]).all():
        out[:] = reuse_distances(keys)
        return out
    # Stable sort by group keeps the access order within every group, so
    # each contiguous block is one group's sub-stream.
    order = np.argsort(groups, kind="stable")
    grouped = groups[order]
    starts = np.flatnonzero(
        np.concatenate(([True], grouped[1:] != grouped[:-1]))
    )
    bounds = np.concatenate((starts, [len(keys)]))
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        out[order[lo:hi]] = reuse_distances(keys[order[lo:hi]])
    return out
