"""Structural validation of instruction traces.

Used in tests and by workload generators as a final sanity gate before a
trace is handed to the profiler or the simulators.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .instructions import NO_REG, Opcode
from .trace import InstructionTrace


def validate_trace(trace: InstructionTrace, *, max_register: int = 1 << 20) -> None:
    """Raise :class:`~repro.errors.TraceError` if ``trace`` is malformed.

    Checks performed:

    * every opcode is a known :class:`~repro.ir.Opcode`;
    * every memory instruction has a positive access size;
    * no non-memory instruction carries an address or size;
    * register operands are ``NO_REG`` or small non-negative ids;
    * memory accesses do not wrap around the 64-bit address space.
    """
    if len(trace) == 0:
        return

    max_opcode = max(int(op) for op in Opcode)
    if int(trace.opcode.max()) > max_opcode:
        bad = int(trace.opcode.max())
        raise TraceError(f"unknown opcode value {bad}")

    mem = trace.memory_mask
    if mem.any():
        sizes = trace.size[mem]
        if int(sizes.min()) <= 0:
            raise TraceError("memory instruction with non-positive size")
        addrs = trace.addr[mem].astype(np.uint64)
        ends = addrs + sizes.astype(np.uint64)
        if (ends < addrs).any():
            raise TraceError("memory access wraps the 64-bit address space")
    nonmem = ~mem
    if nonmem.any():
        if int(trace.size[nonmem].max(initial=0)) != 0:
            raise TraceError("non-memory instruction carries an access size")
        if int(trace.addr[nonmem].max(initial=0)) != 0:
            raise TraceError("non-memory instruction carries an address")

    for name in ("dst", "src1", "src2"):
        col = getattr(trace, name)
        if int(col.min(initial=NO_REG)) < NO_REG:
            raise TraceError(f"register column {name!r} below NO_REG")
        if int(col.max(initial=NO_REG)) > max_register:
            raise TraceError(
                f"register column {name!r} exceeds max_register={max_register}"
            )
