"""Dynamic-trace intermediate representation (IR).

This package is the reproduction's stand-in for the paper's LLVM-IR +
instrumentation layer: workload kernels are expressed as *dynamic instruction
traces* — sequences of typed instructions with virtual register operands,
memory addresses and static program counters — which carry exactly the
information the PISA-style analyzer (:mod:`repro.profiler`) and the
trace-driven simulators (:mod:`repro.nmcsim`, :mod:`repro.hostsim`) need.

Public API
----------
:class:`Opcode`            instruction taxonomy
:class:`Instruction`       a single decoded instruction (named tuple view)
:class:`InstructionTrace`  packed numpy trace container
:class:`TraceBuilder`      incremental trace construction
:class:`LoopTemplate`      vectorized emission of loop bodies
:func:`validate_trace`     structural validation
"""

from .instructions import (
    CONTROL_OPCODES,
    FP_OPCODES,
    INT_OPCODES,
    MEMORY_OPCODES,
    NO_REG,
    OPCODE_LATENCY,
    Instruction,
    Opcode,
)
from .trace import InstructionTrace, concat_traces
from .builder import LoopTemplate, TraceBuilder, TemplateOp
from .stackdist import (
    COLD_DISTANCE,
    grouped_reuse_distances,
    lru_hit_mask,
    reuse_distances,
)
from .validate import validate_trace

__all__ = [
    "Opcode",
    "Instruction",
    "InstructionTrace",
    "TraceBuilder",
    "LoopTemplate",
    "TemplateOp",
    "concat_traces",
    "validate_trace",
    "NO_REG",
    "OPCODE_LATENCY",
    "MEMORY_OPCODES",
    "CONTROL_OPCODES",
    "INT_OPCODES",
    "FP_OPCODES",
    "COLD_DISTANCE",
    "reuse_distances",
    "grouped_reuse_distances",
    "lru_hit_mask",
]
