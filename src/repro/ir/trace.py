"""Packed dynamic-instruction trace container.

Traces are stored column-wise in numpy arrays so that multi-hundred-thousand
instruction traces stay cheap to hold and analyze.  The container is
immutable once built (use :class:`repro.ir.builder.TraceBuilder` to build).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..errors import TraceError
from .instructions import MEMORY_OPCODES, NO_REG, Instruction, Opcode

#: numpy dtypes of the trace columns.
TRACE_COLUMNS: dict[str, np.dtype] = {
    "opcode": np.dtype(np.uint8),
    "dst": np.dtype(np.int32),
    "src1": np.dtype(np.int32),
    "src2": np.dtype(np.int32),
    "addr": np.dtype(np.uint64),
    "size": np.dtype(np.uint16),
    "pc": np.dtype(np.uint32),
    "tid": np.dtype(np.uint16),
}

_MEMORY_CODES = np.array(sorted(int(op) for op in MEMORY_OPCODES), dtype=np.uint8)


class InstructionTrace:
    """An immutable dynamic instruction trace.

    Columns (all numpy arrays of equal length):

    ``opcode``
        :class:`repro.ir.Opcode` values as ``uint8``.
    ``dst``, ``src1``, ``src2``
        virtual register operands, ``NO_REG`` (-1) when absent.
    ``addr``, ``size``
        byte address and access size for memory opcodes (0 otherwise).
    ``pc``
        static program counter of the emitting IR statement.
    ``tid``
        software thread id.
    """

    __slots__ = (
        "opcode", "dst", "src1", "src2", "addr", "size", "pc", "tid",
        "_memo", "__weakref__",
    )

    def __init__(self, **columns: np.ndarray) -> None:
        missing = set(TRACE_COLUMNS) - set(columns)
        extra = set(columns) - set(TRACE_COLUMNS)
        if missing or extra:
            raise TraceError(
                f"trace columns mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise TraceError(f"trace columns have unequal lengths: {lengths}")
        for name, dtype in TRACE_COLUMNS.items():
            arr = np.ascontiguousarray(columns[name], dtype=dtype)
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)
        # Memo for derived scalars (footprint, opcode histogram): the
        # columns are immutable, so once computed they never change.
        # Simulating the same trace repeatedly (both engines, or many
        # architecture points of a campaign) skips the re-scan.
        object.__setattr__(self, "_memo", {})

    # Frozen container: forbid rebinding of columns after __init__.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("InstructionTrace is immutable")

    # ------------------------------------------------------------ basics

    def __len__(self) -> int:
        return len(self.opcode)

    def __iter__(self) -> Iterator[Instruction]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int | slice) -> "Instruction | InstructionTrace":
        if isinstance(index, slice):
            return InstructionTrace(
                **{name: getattr(self, name)[index] for name in TRACE_COLUMNS}
            )
        i = int(index)
        return Instruction(
            opcode=Opcode(int(self.opcode[i])),
            dst=int(self.dst[i]),
            src1=int(self.src1[i]),
            src2=int(self.src2[i]),
            addr=int(self.addr[i]),
            size=int(self.size[i]),
            pc=int(self.pc[i]),
            tid=int(self.tid[i]),
        )

    def __repr__(self) -> str:
        return (
            f"InstructionTrace(n={len(self)}, threads={self.thread_count}, "
            f"memory_ops={self.memory_op_count})"
        )

    # -------------------------------------------------------- properties

    @property
    def memory_mask(self) -> np.ndarray:
        """Boolean mask selecting memory instructions."""
        return np.isin(self.opcode, _MEMORY_CODES)

    @property
    def memory_op_count(self) -> int:
        return int(self.memory_mask.sum())

    @property
    def thread_ids(self) -> np.ndarray:
        """Sorted unique software thread ids present in the trace."""
        return np.unique(self.tid)

    @property
    def thread_count(self) -> int:
        return len(self.thread_ids)

    def opcode_counts(self) -> dict[Opcode, int]:
        """Histogram of opcodes present in the trace (memoised)."""
        got = self._memo.get("opcode_counts")
        if got is None:
            values, counts = np.unique(self.opcode, return_counts=True)
            got = {Opcode(int(v)): int(c) for v, c in zip(values, counts)}
            self._memo["opcode_counts"] = got
        return dict(got)

    def footprint_lines(self, line_shift: int) -> int:
        """Distinct cache lines touched by memory accesses (memoised)."""
        key = ("footprint_lines", line_shift)
        got = self._memo.get(key)
        if got is None:
            addrs, _sizes, _is_write = self.memory_accesses()
            got = int(len(np.unique(addrs >> np.uint64(line_shift))))
            self._memo[key] = got
        return got

    def content_hash(self) -> str:
        """Stable hex digest of the full column contents (memoised).

        Keys cross-process caches (the persistent phase-A memo store):
        two traces hash equal iff every column is byte-identical, so a
        changed trace generator, seed or scale can never alias a stale
        cache entry.
        """
        got = self._memo.get("content_hash")
        if got is None:
            import hashlib

            h = hashlib.sha256()
            for name in TRACE_COLUMNS:
                col = getattr(self, name)
                h.update(name.encode())
                # Contiguous arrays expose the buffer protocol: hash the
                # column bytes in place instead of copying via tobytes().
                h.update(np.ascontiguousarray(col))
            got = h.hexdigest()
            self._memo["content_hash"] = got
        return got

    # ------------------------------------------------------------ views

    def for_thread(self, tid: int) -> "InstructionTrace":
        """The sub-trace executed by software thread ``tid`` (in order)."""
        mask = self.tid == tid
        return InstructionTrace(
            **{name: getattr(self, name)[mask] for name in TRACE_COLUMNS}
        )

    def memory_accesses(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(addresses, sizes, is_write) of memory instructions, in order."""
        mask = self.memory_mask
        is_write = self.opcode[mask] == int(Opcode.STORE)
        # ATOMIC counts as both read and write; report it as a write here.
        is_write |= self.opcode[mask] == int(Opcode.ATOMIC)
        return self.addr[mask], self.size[mask], is_write

    # ------------------------------------------------------ construction

    @classmethod
    def empty(cls) -> "InstructionTrace":
        return cls(
            **{
                name: np.empty(0, dtype=dtype)
                for name, dtype in TRACE_COLUMNS.items()
            }
        )

    @classmethod
    def from_instructions(cls, instructions: Sequence[Instruction]) -> "InstructionTrace":
        """Build a trace from explicit :class:`Instruction` tuples."""
        n = len(instructions)
        cols = {
            name: np.empty(n, dtype=dtype) for name, dtype in TRACE_COLUMNS.items()
        }
        for i, ins in enumerate(instructions):
            cols["opcode"][i] = int(ins.opcode)
            cols["dst"][i] = ins.dst
            cols["src1"][i] = ins.src1
            cols["src2"][i] = ins.src2
            cols["addr"][i] = ins.addr
            cols["size"][i] = ins.size
            cols["pc"][i] = ins.pc
            cols["tid"][i] = ins.tid
        return cls(**cols)


def concat_traces(traces: Sequence[InstructionTrace]) -> InstructionTrace:
    """Concatenate traces in program order.

    Thread ids are preserved, so concatenating per-phase traces of the same
    multithreaded kernel keeps the per-thread sub-traces in order.
    """
    if not traces:
        return InstructionTrace.empty()
    return InstructionTrace(
        **{
            name: np.concatenate([getattr(t, name) for t in traces])
            for name in TRACE_COLUMNS
        }
    )


# Re-export for convenience in type checking.
__all__ = ["InstructionTrace", "concat_traces", "TRACE_COLUMNS", "NO_REG"]
