"""Tests for the derived (prior) features and the feature-matrix layout."""

import math

import numpy as np
import pytest

from repro import default_nmc_config
from repro.core.dataset import DERIVED_FEATURE_NAMES, derived_features
from repro.core.predictor import NapelModel
from repro.profiler import analyze_trace
from repro.profiler.features import FEATURE_NAMES
from repro.schema import active_schema
from _helpers import build_random_trace, build_stream_trace

ALL_FEATURE_NAMES = active_schema().names


@pytest.fixture(scope="module")
def stream_profile():
    return analyze_trace(build_stream_trace(3000))


@pytest.fixture(scope="module")
def random_profile():
    return analyze_trace(build_random_trace(3000))


class TestFeatureLayout:
    def test_column_structure(self):
        n_profile = len(FEATURE_NAMES)
        assert ALL_FEATURE_NAMES[:n_profile] == FEATURE_NAMES
        assert ALL_FEATURE_NAMES[n_profile] == "app.threads"
        assert ALL_FEATURE_NAMES[-len(DERIVED_FEATURE_NAMES):] == (
            DERIVED_FEATURE_NAMES
        )

    def test_prior_columns_resolve(self):
        schema = active_schema()
        ipc_col = schema.index("prior.ipc_estimate")
        epi_col = schema.index("prior.log_epi_estimate")
        assert ALL_FEATURE_NAMES[ipc_col] == "prior.ipc_estimate"
        assert ALL_FEATURE_NAMES[epi_col] == "prior.log_epi_estimate"

    def test_features_method_matches_layout(self, stream_profile):
        row = NapelModel.features(stream_profile, default_nmc_config())
        assert row.shape == (len(ALL_FEATURE_NAMES),)
        values = derived_features(stream_profile, default_nmc_config())
        assert np.allclose(row[-len(values):], values)


class TestDerivedFeatures:
    def test_count_matches_names(self, stream_profile):
        values = derived_features(stream_profile, default_nmc_config())
        assert len(values) == len(DERIVED_FEATURE_NAMES)

    def test_irregular_misses_more(self, stream_profile, random_profile):
        arch = default_nmc_config()
        stream_vals = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(stream_profile, arch)
        ))
        random_vals = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(random_profile, arch)
        ))
        assert random_vals["prior.miss_per_instr"] > 0
        assert (
            random_vals["prior.ipc_estimate"]
            < stream_vals["prior.ipc_estimate"]
        )
        assert (
            random_vals["prior.log_epi_estimate"]
            > stream_vals["prior.log_epi_estimate"]
        )

    def test_row_hit_discount_for_streams(self, stream_profile):
        """Sequential streams see a lower estimated miss cost than the
        closed-row worst case."""
        arch = default_nmc_config()
        vals = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(stream_profile, arch)
        ))
        worst_cycles = (
            arch.timing.closed_row_access_ns() * arch.frequency_ghz
        )
        implied = vals["prior.stall_per_instr"] / max(
            vals["prior.miss_per_instr"], 1e-12
        )
        # The write-traffic factor can add up to 1.5x, but the row-hit
        # discount dominates for a unit-stride stream.
        assert implied < worst_cycles * 1.2

    def test_faster_arch_raises_ipc_estimate(self, random_profile):
        base = default_nmc_config()
        ooo = base.replace(pe_type="ooo", issue_width=2, mshr_entries=8)
        v_base = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(random_profile, base)
        ))
        v_ooo = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(random_profile, ooo)
        ))
        assert v_ooo["prior.ipc_estimate"] > v_base["prior.ipc_estimate"]

    def test_prior_offsets_roundtrip(self, stream_profile):
        arch = default_nmc_config()
        X = NapelModel.features(stream_profile, arch)[None, :]
        ipc_off, epi_off = NapelModel.prior_offsets(X)
        vals = dict(zip(
            DERIVED_FEATURE_NAMES, derived_features(stream_profile, arch)
        ))
        assert ipc_off[0] == pytest.approx(
            math.log(vals["prior.ipc_estimate"])
        )
        # epi offset converts the pJ-space log estimate to joules.
        assert epi_off[0] == pytest.approx(
            vals["prior.log_epi_estimate"] - math.log(1e12)
        )
