"""End-to-end integration tests: the full NAPEL pipeline on small inputs."""

import numpy as np
import pytest

from repro import (
    HostSimulator,
    NapelTrainer,
    SimulationCampaign,
    analyze_suitability,
    analyze_trace,
    default_nmc_config,
    get_workload,
    simulate,
)
from repro.core.dataset import TrainingSet
from repro.core.suitability import SuitabilityResult
from repro.doe import ParameterSpace, central_composite
from repro.errors import ReproError


@pytest.fixture(scope="module")
def mini_pipeline():
    """CCD campaign + trained model for two contrasting apps (scaled)."""
    campaign = SimulationCampaign(scale=3.0)
    apps = [get_workload(n) for n in ("gemv", "kme")]
    training = TrainingSet.concat(campaign.run(w) for w in apps)
    trained = NapelTrainer(n_estimators=30).train(training)
    return campaign, apps, training, trained


class TestFullPipeline:
    def test_campaign_covers_both_ccds(self, mini_pipeline):
        campaign, apps, training, _ = mini_pipeline
        expected = sum(
            len(central_composite(ParameterSpace.of_workload(w)))
            for w in apps
        )
        assert len(training) == expected

    def test_prediction_tracks_simulation(self, mini_pipeline):
        """Unseen central-ish config: prediction within 50% of simulation."""
        campaign, apps, _, trained = mini_pipeline
        gemv = apps[0]
        config = {"dimensions": 1000, "threads": 16, "iterations": 70}
        row = campaign.run_point(gemv, config)
        pred = trained.model.predict(row.profile, campaign.arch)
        assert abs(pred.ipc - row.result.ipc) / row.result.ipc < 0.5
        assert (
            abs(pred.energy_j - row.result.energy_j) / row.result.energy_j
            < 0.5
        )

    def test_time_formula_consistency(self, mini_pipeline):
        """T = I / (IPC * f) holds for both simulator and predictor."""
        campaign, apps, training, trained = mini_pipeline
        freq = campaign.arch.frequency_ghz * 1e9
        row = training.rows[0]
        assert row.result.time_s == pytest.approx(
            row.result.instructions / (row.result.ipc * freq), rel=0.01
        )
        pred = trained.model.predict(row.profile, campaign.arch)
        assert pred.time_s == pytest.approx(
            pred.instructions / (pred.ipc * freq)
        )

    def test_suitability_end_to_end(self, mini_pipeline):
        campaign, apps, training, _ = mini_pipeline
        results = analyze_suitability(
            apps, campaign, training_set=training,
            trainer_kwargs={"n_estimators": 20, "tune": False},
        )
        assert len(results) == 2
        # Cross-check host EDP against a direct host evaluation.
        host = HostSimulator()
        row = campaign.run_point(apps[0], apps[0].test_config())
        direct = host.evaluate(row.profile)
        by_name = {r.workload: r for r in results}
        assert by_name["gemv"].host_edp == pytest.approx(
            direct.energy_j * direct.time_s, rel=1e-6
        )

    def test_profile_is_architecture_independent(self):
        """Phase 1 never looks at the NMC configuration."""
        w = get_workload("mvt")
        trace = w.generate(w.central_config(), scale=3.0)
        p = analyze_trace(trace)
        r_small = simulate(trace, default_nmc_config())
        r_big = simulate(
            trace, default_nmc_config().replace(l1_lines=256, l1_ways=4)
        )
        # Same profile, different labels: the architecture only enters
        # through simulation.
        assert r_small.ipc != r_big.ipc
        assert np.array_equal(p.values, analyze_trace(trace).values)

    def test_suitability_folds_share_one_feature_matrix(
        self, mini_pipeline, monkeypatch
    ):
        """Each held-out fold must be a view, not a per-app matrix rebuild."""
        campaign, apps, training, _ = mini_pipeline
        built_roots = []
        orig = TrainingSet._matrix

        def spy(self):
            root = self._root if self._root is not None else self
            if root._X_cache is None:
                built_roots.append(id(root))
            return orig(self)

        monkeypatch.setattr(TrainingSet, "_matrix", spy)
        results = analyze_suitability(
            apps, campaign, training_set=training,
            trainer_kwargs={"n_estimators": 5, "tune": False},
        )
        assert len(results) == len(apps)
        # Only the combined (campaign + test rows) root is ever assembled;
        # every fold shares its matrix.
        assert len(set(built_roots)) <= 1

    def test_edp_shape_for_contrasting_apps(self, mini_pipeline):
        """kme (irregular+atomics) beats gemv (streaming) on EDP ratio."""
        campaign, apps, _, _ = mini_pipeline
        host = HostSimulator()
        ratios = {}
        for w in apps:
            row = campaign.run_point(w, w.test_config())
            h = host.evaluate(row.profile)
            ratios[w.name] = (h.energy_j * h.time_s) / row.result.edp
        assert ratios["kme"] > ratios["gemv"]


class TestSuitabilityFailLoud:
    """Zero/non-finite EDP components must raise a named error, not a
    bare ZeroDivisionError."""

    def make_result(self, **overrides):
        fields = dict(
            workload="gemv",
            host_time_s=1.0, host_energy_j=1.0,
            nmc_time_actual_s=1.0, nmc_energy_actual_j=1.0,
            nmc_time_pred_s=1.0, nmc_energy_pred_j=1.0,
        )
        fields.update(overrides)
        return SuitabilityResult(**fields)

    def test_zero_actual_time_names_workload_and_component(self):
        result = self.make_result(nmc_time_actual_s=0.0)
        with pytest.raises(ReproError, match="gemv.*nmc_time_actual_s"):
            result.edp_reduction_actual
        with pytest.raises(ReproError, match="gemv"):
            result.edp_mre

    def test_zero_predicted_energy(self):
        result = self.make_result(nmc_energy_pred_j=0.0)
        with pytest.raises(ReproError, match="gemv.*nmc_energy_pred_j"):
            result.edp_reduction_pred

    def test_nonfinite_component_rejected(self):
        result = self.make_result(nmc_time_pred_s=float("nan"))
        with pytest.raises(ReproError, match="nmc_time_pred_s"):
            result.edp_reduction_pred

    def test_negative_component_rejected(self):
        result = self.make_result(nmc_energy_actual_j=-1.0)
        with pytest.raises(ReproError, match="nmc_energy_actual_j"):
            result.edp_reduction_actual

    def test_healthy_result_unaffected(self):
        result = self.make_result()
        assert result.edp_reduction_actual == pytest.approx(1.0)
        assert result.edp_reduction_pred == pytest.approx(1.0)
        assert result.edp_mre == pytest.approx(0.0)
