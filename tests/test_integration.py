"""End-to-end integration tests: the full NAPEL pipeline on small inputs."""

import numpy as np
import pytest

from repro import (
    HostSimulator,
    NapelTrainer,
    SimulationCampaign,
    analyze_suitability,
    analyze_trace,
    default_nmc_config,
    get_workload,
    simulate,
)
from repro.core.dataset import TrainingSet
from repro.doe import ParameterSpace, central_composite


@pytest.fixture(scope="module")
def mini_pipeline():
    """CCD campaign + trained model for two contrasting apps (scaled)."""
    campaign = SimulationCampaign(scale=3.0)
    apps = [get_workload(n) for n in ("gemv", "kme")]
    training = TrainingSet.concat(campaign.run(w) for w in apps)
    trained = NapelTrainer(n_estimators=30).train(training)
    return campaign, apps, training, trained


class TestFullPipeline:
    def test_campaign_covers_both_ccds(self, mini_pipeline):
        campaign, apps, training, _ = mini_pipeline
        expected = sum(
            len(central_composite(ParameterSpace.of_workload(w)))
            for w in apps
        )
        assert len(training) == expected

    def test_prediction_tracks_simulation(self, mini_pipeline):
        """Unseen central-ish config: prediction within 50% of simulation."""
        campaign, apps, _, trained = mini_pipeline
        gemv = apps[0]
        config = {"dimensions": 1000, "threads": 16, "iterations": 70}
        row = campaign.run_point(gemv, config)
        pred = trained.model.predict(row.profile, campaign.arch)
        assert abs(pred.ipc - row.result.ipc) / row.result.ipc < 0.5
        assert (
            abs(pred.energy_j - row.result.energy_j) / row.result.energy_j
            < 0.5
        )

    def test_time_formula_consistency(self, mini_pipeline):
        """T = I / (IPC * f) holds for both simulator and predictor."""
        campaign, apps, training, trained = mini_pipeline
        freq = campaign.arch.frequency_ghz * 1e9
        row = training.rows[0]
        assert row.result.time_s == pytest.approx(
            row.result.instructions / (row.result.ipc * freq), rel=0.01
        )
        pred = trained.model.predict(row.profile, campaign.arch)
        assert pred.time_s == pytest.approx(
            pred.instructions / (pred.ipc * freq)
        )

    def test_suitability_end_to_end(self, mini_pipeline):
        campaign, apps, training, _ = mini_pipeline
        results = analyze_suitability(
            apps, campaign, training_set=training,
            trainer_kwargs={"n_estimators": 20, "tune": False},
        )
        assert len(results) == 2
        # Cross-check host EDP against a direct host evaluation.
        host = HostSimulator()
        row = campaign.run_point(apps[0], apps[0].test_config())
        direct = host.evaluate(row.profile)
        by_name = {r.workload: r for r in results}
        assert by_name["gemv"].host_edp == pytest.approx(
            direct.energy_j * direct.time_s, rel=1e-6
        )

    def test_profile_is_architecture_independent(self):
        """Phase 1 never looks at the NMC configuration."""
        w = get_workload("mvt")
        trace = w.generate(w.central_config(), scale=3.0)
        p = analyze_trace(trace)
        r_small = simulate(trace, default_nmc_config())
        r_big = simulate(
            trace, default_nmc_config().replace(l1_lines=256, l1_ways=4)
        )
        # Same profile, different labels: the architecture only enters
        # through simulation.
        assert r_small.ipc != r_big.ipc
        assert np.array_equal(p.values, analyze_trace(trace).values)

    def test_edp_shape_for_contrasting_apps(self, mini_pipeline):
        """kme (irregular+atomics) beats gemv (streaming) on EDP ratio."""
        campaign, apps, _, _ = mini_pipeline
        host = HostSimulator()
        ratios = {}
        for w in apps:
            row = campaign.run_point(w, w.test_config())
            h = host.evaluate(row.profile)
            ratios[w.name] = (h.energy_j * h.time_s) / row.result.edp
        assert ratios["kme"] > ratios["gemv"]
