"""Tests for the versioned feature schema (repro.schema)."""

import json

import numpy as np
import pytest

import repro.schema as schema_mod
from repro.config import NMCConfig, arch_feature_names
from repro.core.dataset import APP_FEATURE_NAMES, DERIVED_FEATURE_NAMES
from repro.core.predictor import NapelModel
from repro.errors import ConfigError, SchemaMismatchError
from repro.profiler.features import FEATURE_NAMES
from repro.schema import (
    BLOCK_ORDER,
    FeatureBlock,
    FeatureSchema,
    active_schema,
    register_block,
)


@pytest.fixture
def toy_schema():
    return FeatureSchema([
        FeatureBlock("profile", ("p.a", "p.b", "p.c")),
        FeatureBlock("arch", ("arch.x", "arch.y")),
    ])


class TestActiveSchema:
    def test_block_order_and_contents(self):
        schema = active_schema()
        assert tuple(b.name for b in schema.blocks) == BLOCK_ORDER
        assert schema.block("profile").features == FEATURE_NAMES
        assert schema.block("app").features == APP_FEATURE_NAMES
        assert schema.block("arch").features == arch_feature_names()
        assert schema.block("prior").features == DERIVED_FEATURE_NAMES

    def test_names_concatenate_blocks(self):
        schema = active_schema()
        assert len(schema) == sum(len(b) for b in schema.blocks)
        assert schema.names[: len(FEATURE_NAMES)] == FEATURE_NAMES
        assert schema.names[-len(DERIVED_FEATURE_NAMES):] == (
            DERIVED_FEATURE_NAMES
        )

    def test_cached_and_stable(self):
        assert active_schema() is active_schema()
        assert active_schema().content_hash == active_schema().content_hash

    def test_legacy_flat_name_list(self):
        # The one remaining home of the legacy name.
        assert schema_mod.ALL_FEATURE_NAMES == active_schema().names


class TestFeatureBlock:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError, match="no features"):
            FeatureBlock("empty", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FeatureBlock("b", ("x", "y", "x"))


class TestFeatureSchema:
    def test_index_and_contains(self, toy_schema):
        assert toy_schema.index("arch.x") == 3
        assert "p.b" in toy_schema
        assert "nope" not in toy_schema

    def test_index_unknown_raises_with_fields(self, toy_schema):
        with pytest.raises(SchemaMismatchError) as err:
            toy_schema.index("nope")
        assert err.value.missing == ("nope",)

    def test_select_block_and_names(self, toy_schema):
        assert list(toy_schema.select("arch")) == [3, 4]
        assert list(toy_schema.select(["p.c", "p.a"])) == [2, 0]

    def test_block_slice(self, toy_schema):
        assert toy_schema.block_slice("profile") == slice(0, 3)
        with pytest.raises(SchemaMismatchError, match="no block"):
            toy_schema.block_slice("bogus")

    def test_duplicate_across_blocks_rejected(self):
        with pytest.raises(ConfigError, match="more than one block"):
            FeatureSchema([
                FeatureBlock("a", ("x", "y")),
                FeatureBlock("b", ("y", "z")),
            ])

    def test_validate_matrix(self, toy_schema):
        toy_schema.validate_matrix(np.zeros((4, 5)))
        with pytest.raises(SchemaMismatchError, match="5 columns"):
            toy_schema.validate_matrix(np.zeros((4, 6)))


class TestContentHash:
    def test_identical_blocks_same_hash(self, toy_schema):
        twin = FeatureSchema([
            FeatureBlock("profile", ("p.a", "p.b", "p.c")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        assert twin.content_hash == toy_schema.content_hash

    def test_reorder_changes_hash(self, toy_schema):
        reordered = FeatureSchema([
            FeatureBlock("profile", ("p.b", "p.a", "p.c")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        assert reordered.content_hash != toy_schema.content_hash

    def test_rename_changes_hash(self, toy_schema):
        renamed = FeatureSchema([
            FeatureBlock("profile", ("p.a", "p.b", "p.zzz")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        assert renamed.content_hash != toy_schema.content_hash

    def test_version_not_in_hash(self, toy_schema):
        other = FeatureSchema(toy_schema.blocks, version=99)
        assert other.content_hash == toy_schema.content_hash
        assert other != toy_schema


class TestDiffAndProjection:
    def test_diff_identical_is_falsy(self, toy_schema):
        diff = toy_schema.diff(toy_schema)
        assert not diff
        assert diff.describe() == "schemas are identical"

    def test_diff_names_all_three_kinds(self, toy_schema):
        other = FeatureSchema([
            FeatureBlock("profile", ("p.b", "p.a", "p.new")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        diff = toy_schema.diff(other)
        assert diff.missing == ("p.c",)
        assert diff.extra == ("p.new",)
        assert set(diff.moved) == {"p.a", "p.b"}
        text = diff.describe()
        assert "p.c" in text and "p.new" in text

    def test_projection_reorders_columns(self, toy_schema):
        source = FeatureSchema([
            FeatureBlock("arch", ("arch.y", "arch.x")),
            FeatureBlock("profile", ("p.c", "p.b", "p.a")),
        ])
        X_src = np.arange(10.0).reshape(2, 5)
        proj = toy_schema.projection_from(source)
        X = X_src[:, proj]
        for j, name in enumerate(toy_schema.names):
            assert np.array_equal(X[:, j], X_src[:, source.index(name)])

    def test_projection_refuses_missing(self, toy_schema):
        source = FeatureSchema([FeatureBlock("profile", ("p.a", "p.b"))])
        with pytest.raises(SchemaMismatchError, match="lacks required"):
            toy_schema.projection_from(source)

    def test_subset_by_mask_drops_empty_blocks(self, toy_schema):
        mask = np.array([True, False, True, False, False])
        sub = toy_schema.subset(mask)
        assert sub.names == ("p.a", "p.c")
        assert [b.name for b in sub.blocks] == ["profile"]

    def test_subset_by_names(self, toy_schema):
        sub = toy_schema.subset(["arch.y", "p.b"])
        assert sub.names == ("p.b", "arch.y")  # schema order preserved
        with pytest.raises(SchemaMismatchError, match="unknown"):
            toy_schema.subset(["p.a", "ghost"])


class TestJsonRoundTrip:
    def test_roundtrip(self, toy_schema):
        data = json.loads(json.dumps(toy_schema.to_json_dict()))
        restored = FeatureSchema.from_json_dict(data)
        assert restored == toy_schema
        assert restored.content_hash == toy_schema.content_hash

    def test_tampered_hash_rejected(self, toy_schema):
        data = toy_schema.to_json_dict()
        data["content_hash"] = "0" * 64
        with pytest.raises(SchemaMismatchError, match="corrupt"):
            FeatureSchema.from_json_dict(data)


class TestRegistry:
    def test_identical_reregistration_is_noop(self):
        before = active_schema()
        register_block("arch", arch_feature_names)
        assert active_schema() is before

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ConfigError, match="replace=True"):
            register_block("arch", ("arch.bogus",))
        # The failed registration must not have clobbered the real block.
        assert (
            active_schema().block("arch").features
            == arch_feature_names()
        )


class _ColumnPicker:
    """Stand-in forest: predicts the value of one fixed column."""

    def __init__(self, column):
        self.column = column

    def predict(self, X):
        return np.asarray(X)[:, self.column]


class TestModelSchemaGuard:
    """A model trained before a feature reorder must refuse to predict."""

    def _model(self, schema):
        return NapelModel(
            _ColumnPicker(0),
            _ColumnPicker(1),
            schema=schema,
            log_space=False,
            residual_to_prior=False,
        )

    def test_reordered_input_refused_naming_moved_columns(self, toy_schema):
        model = self._model(toy_schema)
        reordered = FeatureSchema([
            FeatureBlock("profile", ("p.b", "p.a", "p.c")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        X = np.ones((2, 5))
        with pytest.raises(SchemaMismatchError) as err:
            model.predict_labels(X, schema=reordered)
        assert set(err.value.moved) == {"p.a", "p.b"}
        assert "p.a" in str(err.value)

    def test_align_projects_reordered_input(self, toy_schema):
        model = self._model(toy_schema)
        reordered = FeatureSchema([
            FeatureBlock("profile", ("p.b", "p.a", "p.c")),
            FeatureBlock("arch", ("arch.x", "arch.y")),
        ])
        X_src = np.arange(10.0).reshape(2, 5)
        ipc, epi = model.predict_labels(X_src, schema=reordered, align=True)
        # Model reads training columns 0 ("p.a") and 1 ("p.b"), which live
        # at source columns 1 and 0 respectively.
        assert np.array_equal(ipc, X_src[:, 1])
        assert np.array_equal(epi, X_src[:, 0])

    def test_align_cannot_invent_missing_columns(self, toy_schema):
        model = self._model(toy_schema)
        narrow = FeatureSchema([
            FeatureBlock("profile", ("p.a", "p.b", "p.c")),
            FeatureBlock("arch", ("arch.x", "arch.z")),
        ])
        with pytest.raises(SchemaMismatchError) as err:
            model.predict_labels(np.ones((1, 5)), schema=narrow, align=True)
        assert "arch.y" in err.value.missing

    def test_width_check_without_source_schema(self, toy_schema):
        model = self._model(toy_schema)
        with pytest.raises(SchemaMismatchError, match="5 columns"):
            model.predict_labels(np.ones((1, 4)))

    def test_matching_schema_passes(self, toy_schema):
        model = self._model(toy_schema)
        X = np.arange(10.0).reshape(2, 5)
        ipc, _ = model.predict_labels(X, schema=toy_schema)
        assert np.array_equal(ipc, X[:, 0])
