"""Tests for the ANN, model tree, ridge and preprocessing modules."""

import numpy as np
import pytest

from repro.errors import MLError, NotFittedError
from repro.ml import (
    MLPRegressor,
    ModelTree,
    RidgeRegression,
    StandardScaler,
    VarianceThreshold,
    r2_score,
)


def linear_data(n=200, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    y = 1.0 + 2 * X[:, 0] - 3 * X[:, 1] + noise * rng.normal(size=n)
    return X, y


class TestRidge:
    def test_recovers_linear_relation(self):
        X, y = linear_data()
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_regularisation_shrinks_coefficients(self):
        X, y = linear_data(noise=0.1)
        weak = RidgeRegression(alpha=1e-6).fit(X, y)
        strong = RidgeRegression(alpha=1e3).fit(X, y)
        assert np.abs(strong.coef_).sum() < np.abs(weak.coef_).sum()

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            RidgeRegression().predict(np.zeros((1, 2)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(MLError):
            RidgeRegression(alpha=-1)

    def test_constant_feature_tolerated(self):
        X, y = linear_data()
        X = np.hstack([X, np.ones((len(X), 1))])
        model = RidgeRegression().fit(X, y)
        assert np.isfinite(model.predict(X)).all()


class TestModelTree:
    def test_piecewise_linear_function(self):
        # Two linear regimes split on x0: ideal for a model tree.
        rng = np.random.default_rng(0)
        X = rng.random((300, 4))
        y = np.where(X[:, 0] > 0.5, 5 + 4 * X[:, 1], -5 - 2 * X[:, 1])
        model = ModelTree(max_depth=2, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.98

    def test_small_leaves_fall_back_to_mean(self):
        X = np.random.default_rng(0).random((6, 3))
        y = np.arange(6.0)
        model = ModelTree(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_clone(self):
        clone = ModelTree(max_depth=3).clone(max_depth=5)
        assert clone.max_depth == 5

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            ModelTree().predict(np.zeros((1, 2)))

    def test_invalid_depth(self):
        with pytest.raises(MLError):
            ModelTree(max_depth=0)


class TestMLP:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.random((400, 4))
        y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2
        model = MLPRegressor(
            hidden_layers=(32, 16), max_epochs=300, random_state=0
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_reproducible(self):
        X, y = linear_data()
        a = MLPRegressor(max_epochs=50, random_state=7).fit(X, y)
        b = MLPRegressor(max_epochs=50, random_state=7).fit(X, y)
        Xt = np.random.default_rng(0).random((10, 6))
        assert np.allclose(a.predict(Xt), b.predict(Xt))

    def test_early_stopping_records_epochs(self):
        X, y = linear_data()
        model = MLPRegressor(
            max_epochs=300, patience=5, random_state=0
        ).fit(X, y)
        assert model.n_epochs_ <= 300

    def test_invalid_layers(self):
        with pytest.raises(MLError):
            MLPRegressor(hidden_layers=())
        with pytest.raises(MLError):
            MLPRegressor(hidden_layers=(0,))

    def test_clone(self):
        clone = MLPRegressor(hidden_layers=(8,)).clone(learning_rate=0.5)
        assert clone.learning_rate == 0.5
        assert clone.hidden_layers == (8,)

    def test_needs_two_samples(self):
        with pytest.raises(MLError):
            MLPRegressor().fit(np.zeros((1, 2)), np.zeros(1))

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.zeros((1, 2)))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = np.random.default_rng(0).random((100, 4)) * 10 + 3
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-9)

    def test_constant_column_maps_to_zero(self):
        X = np.ones((10, 2))
        Xs = StandardScaler().fit_transform(X)
        assert (Xs == 0).all()

    def test_inverse_roundtrip(self):
        X = np.random.default_rng(1).random((50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_feature_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(MLError):
            scaler.transform(np.zeros((5, 4)))


class TestVarianceThreshold:
    def test_drops_constant_columns(self):
        X = np.hstack([
            np.random.default_rng(0).random((20, 2)),
            np.ones((20, 1)),
        ])
        vt = VarianceThreshold().fit(X)
        assert vt.n_selected == 2
        assert vt.transform(X).shape == (20, 2)

    def test_keeps_at_least_one(self):
        X = np.ones((10, 3))
        vt = VarianceThreshold().fit(X)
        assert vt.n_selected == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(MLError):
            VarianceThreshold(threshold=-1.0)
