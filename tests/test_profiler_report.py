"""Tests for profile comparison utilities (repro.profiler.report)."""

import pytest

from repro import analyze_trace, get_workload
from repro.errors import TraceError
from repro.profiler import (
    compare_profiles,
    format_comparison,
    nearest_profiles,
    profile_distance,
)
from _helpers import build_random_trace, build_stream_trace


@pytest.fixture(scope="module")
def stream_p():
    return analyze_trace(build_stream_trace(2500), workload="stream")


@pytest.fixture(scope="module")
def random_p():
    return analyze_trace(build_random_trace(2500), workload="random")


class TestCompareProfiles:
    def test_identical_profiles_rank_zero_deltas(self, stream_p):
        deltas = compare_profiles(stream_p, stream_p, top=5)
        assert all(d.delta == 0 for d in deltas)

    def test_stride_features_separate_stream_from_random(
        self, stream_p, random_p
    ):
        # Many features differ maximally between the two extremes; the
        # stride family must be among the fully-separating ones.
        deltas = compare_profiles(stream_p, random_p, top=395)
        by_name = {d.name: d for d in deltas}
        d = by_name["stride.regular_read"]
        assert abs(d.delta) > 0.9

    def test_top_validation(self, stream_p):
        with pytest.raises(TraceError):
            compare_profiles(stream_p, stream_p, top=0)

    def test_delta_direction(self, stream_p, random_p):
        deltas = {
            d.name: d for d in compare_profiles(stream_p, random_p, top=395)
        }
        d = deltas["stride.regular_read"]
        assert d.value_a > d.value_b  # stream more regular than random
        assert d.delta < 0


class TestProfileDistance:
    def test_zero_for_identical(self, stream_p):
        assert profile_distance(stream_p, stream_p) == 0.0

    def test_symmetric(self, stream_p, random_p):
        assert profile_distance(stream_p, random_p) == pytest.approx(
            profile_distance(random_p, stream_p)
        )

    def test_bounded_by_one(self, stream_p, random_p):
        assert 0 < profile_distance(stream_p, random_p) <= 1.0

    def test_similar_kernels_closer_than_dissimilar(self):
        gemv = get_workload("gemv")
        mvt = get_workload("mvt")
        bfs = get_workload("bfs")
        p_gemv = analyze_trace(gemv.generate(gemv.central_config(), scale=2.0))
        p_mvt = analyze_trace(mvt.generate(mvt.central_config(), scale=2.0))
        p_bfs = analyze_trace(bfs.generate(bfs.central_config(), scale=2.0))
        # Two matrix-vector kernels are closer to each other than to BFS.
        assert profile_distance(p_gemv, p_mvt) < profile_distance(p_gemv, p_bfs)


class TestNearestProfiles:
    def test_orders_by_distance(self, stream_p, random_p):
        other_stream = analyze_trace(
            build_stream_trace(2000), workload="stream2"
        )
        ranked = nearest_profiles(
            stream_p, {"stream2": other_stream, "random": random_p}
        )
        assert ranked[0][0] == "stream2"
        assert ranked[0][1] < ranked[1][1]

    def test_empty_candidates(self, stream_p):
        with pytest.raises(TraceError):
            nearest_profiles(stream_p, {})


class TestFormatComparison:
    def test_renders(self, stream_p, random_p):
        text = format_comparison(
            stream_p, random_p, label_a="stream", label_b="random", top=5
        )
        assert "stream vs random" in text
        assert "delta" in text
