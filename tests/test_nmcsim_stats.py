"""Tests for the simulation statistics report (repro.nmcsim.stats)."""

import pytest

from repro import default_nmc_config, simulate
from repro.errors import SimulationError
from repro.nmcsim import derive_stats, format_stats
from _helpers import build_random_trace, build_stream_trace


@pytest.fixture(scope="module")
def stream_result():
    return simulate(build_stream_trace(3000), workload="stream")


@pytest.fixture(scope="module")
def random_result():
    return simulate(build_random_trace(3000), workload="random")


class TestDeriveStats:
    def test_basic_consistency(self, stream_result):
        stats = derive_stats(stream_result)
        assert stats.ipc_per_pe == pytest.approx(
            stream_result.ipc / stream_result.n_pes_used
        )
        assert stats.l1_miss_ratio == stream_result.cache.miss_ratio
        assert stats.average_power_w == pytest.approx(stream_result.power_w)

    def test_bandwidth_positive_and_below_peak(self, stream_result):
        stats = derive_stats(stream_result)
        assert stats.dram_bandwidth_gbs > 0
        assert 0 < stats.bandwidth_utilisation <= 1.0

    def test_energy_shares_sum_to_one(self, random_result):
        stats = derive_stats(random_result)
        assert sum(stats.energy_shares.values()) == pytest.approx(1.0)
        assert set(stats.energy_shares) == {
            "core_dynamic_j", "cache_j", "dram_dynamic_j", "link_j",
            "static_j",
        }

    def test_random_spends_more_on_dram(self, stream_result, random_result):
        s_stream = derive_stats(stream_result)
        s_random = derive_stats(random_result)
        assert (
            s_random.energy_shares["dram_dynamic_j"]
            > s_stream.energy_shares["dram_dynamic_j"]
        )

    def test_mpki(self, random_result):
        stats = derive_stats(random_result)
        expected = 1000 * random_result.cache.misses / random_result.instructions
        assert stats.misses_per_kilo_instruction == pytest.approx(expected)

    def test_zero_time_rejected(self, stream_result):
        import dataclasses

        bad = dataclasses.replace(stream_result, time_s=0.0)
        with pytest.raises(SimulationError):
            derive_stats(bad)


class TestFormatStats:
    def test_report_renders(self, stream_result):
        text = format_stats(stream_result)
        assert "simulation report" in text
        assert "DRAM bandwidth" in text
        assert "energy share: dram_dynamic_j" in text
        assert "stream" in text

    def test_custom_config(self, stream_result):
        cfg = default_nmc_config().replace(n_vaults=16)
        a = derive_stats(stream_result)
        b = derive_stats(stream_result, cfg)
        # Half the vaults -> half the peak bandwidth -> double utilisation.
        assert b.bandwidth_utilisation == pytest.approx(
            2 * a.bandwidth_utilisation
        )
