"""Tests for the grouped-bar chart renderer."""

from repro.core.reporting import format_grouped_bars


class TestGroupedBars:
    def test_renders_all_series_and_categories(self):
        out = format_grouped_bars(
            "demo",
            {
                "Actual": {"atax": 1.3, "bfs": 11.0},
                "NAPEL": {"atax": 0.9, "bfs": 12.0},
            },
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        bar_lines = [ln for ln in lines if "|" in ln]
        assert sum("Actual" in line for line in bar_lines) == 2
        assert sum("NAPEL" in line for line in bar_lines) == 2
        assert "legend" in lines[-1]

    def test_bars_scale_to_peak(self):
        out = format_grouped_bars(
            "x", {"s": {"a": 10.0, "b": 5.0}}, width=20
        )
        lines = [ln for ln in out.splitlines() if "|" in ln]
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_marker_drawn(self):
        out = format_grouped_bars(
            "x", {"s": {"a": 2.0}}, width=20, marker_at=1.0
        )
        bar_line = [ln for ln in out.splitlines() if "|" in ln][0]
        assert "|" in bar_line  # delimiters
        # Marker at 1.0 of peak 2.0: midway through the bar body.
        body = bar_line[bar_line.index("|") + 1:bar_line.rindex("|")]
        assert body[10] == "|" or body[9] == "|"

    def test_empty(self):
        assert "(empty)" in format_grouped_bars("t", {})

    def test_missing_category_in_one_series(self):
        out = format_grouped_bars(
            "t", {"a": {"x": 1.0}, "b": {"y": 2.0}}
        )
        assert "x" in out and "y" in out
